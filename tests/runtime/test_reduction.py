"""Tests of reduction operators and ``declare reduction``."""

import math

import pytest

from repro.errors import OmpRuntimeError
from repro.runtime import reduction


class TestBuiltinOperators:
    @pytest.mark.parametrize("op,identity", [
        ("+", 0), ("-", 0), ("*", 1), ("&", -1), ("|", 0), ("^", 0),
        ("&&", True), ("||", False), ("and", True), ("or", False),
        ("min", math.inf), ("max", -math.inf),
    ])
    def test_identities(self, op, identity):
        assert reduction.reduction_init(op) == identity

    def test_add_combine(self):
        assert reduction.reduction_combine("+", 3, 4) == 7

    def test_minus_merges_with_addition(self):
        # Private copies accumulate their own subtractions from 0; the
        # partial sums then add (OpenMP's definition of the - reduction).
        partials = [-3, -5]
        total = 100
        out = total
        for partial in partials:
            out = reduction.reduction_combine("-", out, partial)
        assert out == 92

    def test_mult_combine(self):
        assert reduction.reduction_combine("*", 6, 7) == 42

    def test_bitwise(self):
        assert reduction.reduction_combine("&", 0b1100, 0b1010) == 0b1000
        assert reduction.reduction_combine("|", 0b1100, 0b1010) == 0b1110
        assert reduction.reduction_combine("^", 0b1100, 0b1010) == 0b0110

    def test_logical(self):
        assert reduction.reduction_combine("&&", True, False) is False
        assert reduction.reduction_combine("||", False, True) is True

    def test_min_max(self):
        assert reduction.reduction_combine("min", 3, -1) == -1
        assert reduction.reduction_combine("max", 3, -1) == 3

    def test_min_identity_folds_correctly(self):
        out = reduction.reduction_init("min")
        for value in [5, 2, 9]:
            out = reduction.reduction_combine("min", out, value)
        assert out == 2

    def test_min_max_preserve_int_type(self):
        # The sentinel identities vanish at the first real value, so an
        # all-integer reduction yields an int (math.inf identities used
        # to float the result).
        out = reduction.reduction_init("min")
        out = reduction.reduction_combine("min", out, 7)
        out = reduction.reduction_combine("min", out, 3)
        assert out == 3 and type(out) is int
        out = reduction.reduction_init("max")
        out = reduction.reduction_combine("max", out, -9)
        out = reduction.reduction_combine("max", out, -3)
        assert out == -3 and type(out) is int

    def test_extreme_identities_order_like_infinities(self):
        low = reduction.reduction_init("max")   # acts like -inf
        high = reduction.reduction_init("min")  # acts like +inf
        assert low < -10**18 < 10**18 < high
        assert low <= low and high >= high
        assert not low < low and not high > high
        assert low < high
        assert high == math.inf and low == -math.inf

    def test_empty_min_reduction_stays_identity(self):
        out = reduction.reduction_init("min")
        merged = reduction.reduction_combine("min", out,
                                             reduction.reduction_init("min"))
        assert merged == math.inf

    def test_unknown_operator(self):
        with pytest.raises(OmpRuntimeError, match="unknown reduction"):
            reduction.reduction_init("frob")


class TestDeclareReduction:
    def test_declare_and_use(self):
        reduction.declare_reduction(
            "strcat_test", lambda out, value: out + value, lambda: "")
        assert reduction.reduction_init("strcat_test") == ""
        assert reduction.reduction_combine("strcat_test", "a", "b") == "ab"

    def test_defaulted_initializer_skips_combiner(self):
        # A declared reduction without an initializer starts private
        # copies from the OMITTED sentinel; the combiner never sees it,
        # so a thread with zero iterations folds out harmlessly.
        def combiner(out, value):
            assert out is not reduction.OMITTED
            assert value is not reduction.OMITTED
            return out + value

        reduction.declare_reduction("noinit_test", combiner)
        identity = reduction.reduction_init("noinit_test")
        assert identity is reduction.OMITTED
        # Zero-iteration thread: identity merges into a real partial.
        assert reduction.reduction_combine("noinit_test", 5, identity) == 5
        # First real value replaces the sentinel outright.
        assert reduction.reduction_combine("noinit_test", identity, 7) == 7
        # Both empty: the reduction stays at the identity.
        assert reduction.reduction_combine(
            "noinit_test", identity, identity) is reduction.OMITTED

    def test_rejects_builtin_names(self):
        with pytest.raises(OmpRuntimeError, match="built-in"):
            reduction.declare_reduction("min", lambda a, b: a, lambda: 0)

    def test_rejects_invalid_identifier(self):
        with pytest.raises(OmpRuntimeError, match="invalid"):
            reduction.declare_reduction("not valid", lambda a, b: a,
                                        lambda: 0)

    def test_initializer_called_per_init(self):
        calls = []

        def initializer():
            calls.append(1)
            return []

        reduction.declare_reduction(
            "listcat_test", lambda out, value: out + value, initializer)
        first = reduction.reduction_init("listcat_test")
        second = reduction.reduction_init("listcat_test")
        assert first is not second
        assert len(calls) == 2
