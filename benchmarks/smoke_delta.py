"""Compact BENCH_smoke.json delta for the CI job summary.

``check_overhead.py`` *gates* (two same-runner runs, <2%);  this script
*informs*: it compares a fresh smoke run against the committed baseline
(``results/BENCH_smoke.json``) and prints a GitHub-flavoured markdown
table of per-kernel wall-time deltas, so a PR's perf drift is visible
in ``$GITHUB_STEP_SUMMARY`` instead of only failing silently on the
gate thresholds.  Always exits 0 — cross-machine wall times are noisy,
and the authoritative gates live elsewhere.

With ``--history`` it also renders the cross-run trend from the
``BENCH_history.jsonl`` ledger (see ``benchmarks/perf_history.py``),
so the summary shows both "vs the committed baseline" and "vs the
best/previous recorded runs".

Usage::

    python benchmarks/smoke_delta.py results/BENCH_smoke.json \
        results-smoke/BENCH_smoke.json \
        --history results-smoke/BENCH_history.jsonl \
        >> "$GITHUB_STEP_SUMMARY"
"""

from __future__ import annotations

import argparse
import json
import pathlib

#: Deltas smaller than this are noise on shared runners; mark ~.
NOISE_FLOOR = 0.10


def _load(path: pathlib.Path) -> dict | None:
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def _kernels(payload: dict) -> dict[str, float]:
    return {record["kernel"]: record["wall_s"]
            for record in payload.get("kernels", [])
            if record.get("wall_s") is not None}


def format_delta(baseline: dict | None, current: dict | None,
                 baseline_path: str, current_path: str) -> str:
    lines = ["### Bench smoke vs committed baseline", ""]
    if current is None:
        lines.append(f"_No current smoke results at `{current_path}` — "
                     f"the smoke run likely failed before writing "
                     f"them._")
        return "\n".join(lines) + "\n"
    if baseline is None:
        lines.append(f"_No committed baseline at `{baseline_path}`; "
                     f"nothing to compare against._")
        return "\n".join(lines) + "\n"
    base_backend = baseline.get("backend", "gil")
    cur_backend = current.get("backend", "gil")
    if base_backend != cur_backend:
        lines.append(
            f"_Backend mismatch (baseline `{base_backend}`, current "
            f"`{cur_backend}`): wall times are not comparable "
            f"(projection vs true parallelism); skipping the table._")
        return "\n".join(lines) + "\n"
    base = _kernels(baseline)
    cur = _kernels(current)
    lines += [
        f"Baseline: `{baseline.get('python', '?')}` on "
        f"`{baseline.get('platform', '?')}` — current: "
        f"`{current.get('python', '?')}` (backend `{cur_backend}`). "
        f"Cross-machine numbers; informational only.",
        "",
        "| kernel | baseline [s] | current [s] | delta |",
        "|---|---|---|---|",
    ]
    for kernel in sorted(set(base) | set(cur)):
        b, c = base.get(kernel), cur.get(kernel)
        if b is None:
            lines.append(f"| {kernel} | — | {c:.3f} | _new_ |")
        elif c is None:
            lines.append(f"| {kernel} | {b:.3f} | — | _gone_ |")
        else:
            ratio = (c - b) / b if b else 0.0
            flag = ("🔺" if ratio > NOISE_FLOOR
                    else "🟢" if ratio < -NOISE_FLOOR else "~")
            lines.append(f"| {kernel} | {b:.3f} | {c:.3f} | "
                         f"{ratio * 100:+.1f}% {flag} |")
    total_b = baseline.get("total_wall_s")
    total_c = current.get("total_wall_s")
    if total_b and total_c:
        ratio = (total_c - total_b) / total_b
        lines += ["", f"**Total**: {total_b:.3f}s → {total_c:.3f}s "
                      f"({ratio * 100:+.1f}%)"]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("baseline", help="committed BENCH_smoke.json")
    parser.add_argument("current", help="freshly produced BENCH_smoke.json")
    parser.add_argument("--history", default=None,
                        help="BENCH_history.jsonl ledger to trend "
                             "(appended below the baseline table)")
    args = parser.parse_args(argv)
    baseline_path = pathlib.Path(args.baseline)
    current_path = pathlib.Path(args.current)
    print(format_delta(_load(baseline_path), _load(current_path),
                       args.baseline, args.current))
    if args.history:
        import perf_history
        print(perf_history.format_trend(
            perf_history.load_history(args.history)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
