"""Tests of the OMPT-style tool interface and its runtime dispatch."""

import pytest

from repro.cruntime import cruntime
from repro.ompt.hooks import CALLBACK_NAMES, ToolDispatcher, ToolHooks
from repro.runtime import pure_runtime


@pytest.fixture(params=["pure", "cruntime"])
def rt(request):
    return pure_runtime if request.param == "pure" else cruntime


class RecordingTool(ToolHooks):
    """Collects every callback as (name, args) tuples."""

    def __init__(self):
        self.calls = []


def _recorder(name):
    def method(self, *args):
        self.calls.append((name, args))
    return method


for _name in CALLBACK_NAMES:
    setattr(RecordingTool, _name, _recorder(_name))


@pytest.fixture
def tool(rt):
    tool = RecordingTool()
    rt.attach_tool(tool)
    yield tool
    rt.detach_tool(tool)


def _names(tool):
    return [name for name, _args in tool.calls]


class TestAttachDetach:
    def test_no_tool_by_default(self):
        assert pure_runtime.tool is None

    def test_single_tool_bound_directly(self, rt):
        tool = RecordingTool()
        rt.attach_tool(tool)
        try:
            assert rt.tool is tool
        finally:
            rt.detach_tool(tool)
        assert rt.tool is None

    def test_attach_is_idempotent(self, rt):
        tool = RecordingTool()
        rt.attach_tool(tool)
        rt.attach_tool(tool)
        try:
            assert rt.tool is tool
        finally:
            rt.detach_tool(tool)
        assert rt.tool is None

    def test_two_tools_fan_out(self, rt):
        first, second = RecordingTool(), RecordingTool()
        rt.attach_tool(first)
        rt.attach_tool(second)
        try:
            assert isinstance(rt.tool, ToolDispatcher)
            rt.parallel_run(lambda: None, num_threads=2)
        finally:
            rt.detach_tool(first)
            rt.detach_tool(second)
        assert _names(first) == _names(second)
        assert "parallel_begin" in _names(first)

    def test_detach_unknown_tool_is_noop(self, rt):
        rt.detach_tool(RecordingTool())
        assert rt.tool is None


class TestDispatcher:
    def test_every_callback_fans_out(self):
        first, second = RecordingTool(), RecordingTool()
        dispatcher = ToolDispatcher([first, second])
        dispatcher.thread_begin("pool-worker", 1234)
        dispatcher.thread_end("pool-worker", 1234)
        dispatcher.thread_idle(1234, "begin")
        dispatcher.parallel_begin(0, 4)
        dispatcher.parallel_end(0, 4)
        dispatcher.implicit_task(1, "begin", 4)
        dispatcher.work(1, "loop", 0, 10)
        dispatcher.task_create(0, 7)
        dispatcher.task_schedule(1, 7)
        dispatcher.task_steal(1, 7, 0)
        dispatcher.task_complete(1, 7)
        dispatcher.sync_region(0, "barrier", "release", 0.5)
        dispatcher.mutex_acquire(0, "critical", "c")
        dispatcher.mutex_acquired(0, "critical", "c", 0.1)
        dispatcher.mutex_released(0, "critical", "c")
        dispatcher.plan(0, "execute", {"source": "m", "partitions": 4,
                                       "colors": 2, "conflict_edges": 3,
                                       "partition_size": 8,
                                       "threads": 2})
        assert _names(first) == list(CALLBACK_NAMES)
        assert first.calls == second.calls

    def test_base_tool_callbacks_are_noops(self):
        tool = ToolHooks()
        for name in CALLBACK_NAMES:
            assert callable(getattr(tool, name))
        tool.parallel_begin(0, 2)
        tool.sync_region(0, "barrier", "enter", None)


class TestParallelRegionCallbacks:
    def test_region_and_implicit_tasks(self, rt, tool):
        rt.parallel_run(lambda: None, num_threads=3)
        names = _names(tool)
        assert names.count("parallel_begin") == 1
        assert names.count("parallel_end") == 1
        begins = [args for name, args in tool.calls
                  if name == "implicit_task" and args[1] == "begin"]
        ends = [args for name, args in tool.calls
                if name == "implicit_task" and args[1] == "end"]
        assert len(begins) == 3
        assert len(ends) == 3
        assert {args[0] for args in begins} == {0, 1, 2}
        # parallel_begin fires before any implicit task, parallel_end
        # after every implicit task ended.
        assert names.index("parallel_begin") < names.index("implicit_task")
        assert names[-1] == "parallel_end"

    def test_work_callbacks_cover_loop(self, rt, tool):
        def region():
            bounds = rt.for_bounds([0, 40, 1])
            rt.for_init(bounds, kind="dynamic", chunk=4)
            while rt.for_next(bounds):
                pass
            rt.for_end(bounds)

        rt.parallel_run(region, num_threads=2)
        chunks = [args for name, args in tool.calls if name == "work"]
        assert len(chunks) == 10
        assert all(args[1] == "loop" for args in chunks)
        assert sum(args[3] - args[2] for args in chunks) == 40

    def test_work_callbacks_for_sections_and_single(self, rt, tool):
        def region():
            state = rt.sections_begin(3)
            while rt.sections_next(state) >= 0:
                pass
            rt.sections_end(state)
            single = rt.single_begin()
            rt.single_end(single)

        rt.parallel_run(region, num_threads=2)
        wstypes = [args[1] for name, args in tool.calls if name == "work"]
        assert wstypes.count("sections") == 3
        assert wstypes.count("single") == 1

    def test_task_lifecycle_callbacks(self, rt, tool):
        def region():
            state = rt.single_begin()
            if state.selected:
                for _ in range(5):
                    rt.task_submit(lambda: None)
            rt.single_end(state)
            rt.task_wait()

        rt.parallel_run(region, num_threads=2)
        names = _names(tool)
        assert names.count("task_create") == 5
        assert names.count("task_schedule") == 5
        assert names.count("task_complete") == 5

    def test_sync_region_barrier(self, rt, tool):
        rt.parallel_run(rt.barrier, num_threads=2)
        syncs = [args for name, args in tool.calls
                 if name == "sync_region" and args[1] == "barrier"]
        enters = [args for args in syncs if args[2] == "enter"]
        releases = [args for args in syncs if args[2] == "release"]
        assert len(enters) == 2
        assert len(releases) == 2
        assert all(args[3] is None for args in enters)
        assert all(args[3] >= 0.0 for args in releases)

    def test_sync_region_taskwait(self, rt, tool):
        def region():
            rt.task_submit(lambda: None)
            rt.task_wait()

        rt.parallel_run(region, num_threads=1)
        syncs = [args for name, args in tool.calls
                 if name == "sync_region" and args[1] == "taskwait"]
        assert [args[2] for args in syncs] == ["enter", "release"]


class TestMutexCallbacks:
    def test_uncontended_critical(self, rt, tool):
        def region():
            rt.critical_enter("zone")
            rt.critical_exit("zone")

        rt.parallel_run(region, num_threads=1)
        names = _names(tool)
        assert "mutex_acquire" not in names  # never blocked
        acquired = [args for name, args in tool.calls
                    if name == "mutex_acquired"]
        assert acquired == [(0, "critical", "zone", 0.0)]
        assert ("mutex_released", (0, "critical", "zone")) in tool.calls

    def test_contended_critical_reports_wait(self, rt, tool):
        import time as _time

        def region():
            rt.barrier()  # line the threads up at the critical section
            rt.critical_enter("hot")
            _time.sleep(0.02)
            rt.critical_exit("hot")

        rt.parallel_run(region, num_threads=2)
        acquired = [args for name, args in tool.calls
                    if name == "mutex_acquired"]
        assert len(acquired) == 2
        contended = [name for name, _args in tool.calls
                     if name == "mutex_acquire"]
        # Exactly one thread should have had to block.
        assert len(contended) == 1
        waits = sorted(args[3] for args in acquired)
        assert waits[0] == 0.0
        assert waits[1] > 0.0

    def test_atomic_mutex_callbacks(self, rt, tool):
        def region():
            rt.atomic_enter()
            rt.atomic_exit()

        rt.parallel_run(region, num_threads=1)
        assert ("mutex_acquired", (0, "atomic", "atomic", 0.0)) \
            in tool.calls
        assert ("mutex_released", (0, "atomic", "atomic")) in tool.calls

    def test_lock_api_callbacks(self, rt, tool):
        lock = rt.init_lock()
        rt.set_lock(lock)
        rt.unset_lock(lock)
        assert rt.test_lock(lock) is True
        rt.unset_lock(lock)
        kinds = [(name, args[1]) for name, args in tool.calls
                 if name.startswith("mutex_")]
        assert kinds == [("mutex_acquired", "lock"),
                         ("mutex_released", "lock"),
                         ("mutex_acquired", "lock"),
                         ("mutex_released", "lock")]

    def test_nest_lock_callbacks(self, rt, tool):
        lock = rt.init_nest_lock()
        rt.set_nest_lock(lock)
        rt.set_nest_lock(lock)  # owner re-acquire
        rt.unset_nest_lock(lock)
        rt.unset_nest_lock(lock)
        names = [name for name, _args in tool.calls
                 if name.startswith("mutex_")]
        # Two acquisitions but only one release (when the count hits 0).
        assert names.count("mutex_acquired") == 2
        assert names.count("mutex_released") == 1


class TestDisabledCost:
    def test_no_dispatch_without_tool(self, rt):
        """With no tool attached the instrumented sites must not fire
        (and must not fail) — the one-attribute-read discipline."""
        assert rt.tool is None
        rt.parallel_run(rt.barrier, num_threads=2)

        def region():
            rt.critical_enter()
            rt.critical_exit()
            rt.task_submit(lambda: None)
            rt.task_wait()

        rt.parallel_run(region, num_threads=2)
