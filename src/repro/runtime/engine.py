"""The OMP4Py runtime engine.

An :class:`OmpRuntime` instance is what the transformer binds to the
``__omp__`` handle inside generated code.  Two singletons exist — the
pure runtime (:data:`repro.runtime.pure_runtime`) and the native
simulation (:data:`repro.cruntime.cruntime`) — and, as the paper notes,
each maintains its own per-thread contexts; a thread known to one
runtime is an independent initial thread to the other.
"""

from __future__ import annotations

import itertools
import threading
import time

from repro import env
from repro.errors import OmpRuntimeError
from repro.runtime import reduction, worksharing
from repro.runtime.context import TaskFrame
from repro.runtime.locks import OmpLock, OmpNestLock
from repro.runtime.stats import StatsCollector
from repro.runtime.tasking import TaskNode
from repro.runtime.team import BACKOFF_MIN, Team, next_backoff
from repro.runtime.trace import Tracer, caller_site

#: Process-wide parallel-region ids: the key the explain DAG builder
#: uses to group fork/join, implicit-task, and barrier events of one
#: region instance (0 = the implicit serial region).
_REGION_IDS = itertools.count(1)


class _Undefined:
    """Value of a ``private`` copy before first assignment.

    OpenMP leaves such reads undefined; operating on this sentinel makes
    them fail loudly instead of silently reading the shared value.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<omp undefined>"

    def __bool__(self) -> bool:
        raise OmpRuntimeError("read of uninitialized private variable")


#: Sentinel injected by the transformer for ``private`` variables.
UNDEFINED = _Undefined()

_SCHEDULE_ENUM = {1: "static", 2: "dynamic", 3: "guided", 4: "auto"}
_SCHEDULE_NAMES = {v: k for k, v in _SCHEDULE_ENUM.items()}


class OmpRuntime:
    """One OMP4Py runtime: contexts, teams, worksharing, tasking, API."""

    def __init__(self, lowlevel):
        self.lowlevel = lowlevel
        self.name = lowlevel.name
        self._tls = threading.local()
        # Runtime-wide ICVs (per-task nthreads-var lives on frames).
        self._dyn = env.default_dynamic()
        self._nest = env.default_nested()
        self._run_sched = env.default_schedule()
        self._thread_limit = env.default_thread_limit()
        self._max_active_levels = env.default_max_active_levels()
        self._default_nthreads = env.default_num_threads()
        self._wait_policy = env.default_wait_policy()
        #: ``OMP4PY_HOT_TEAMS``: serve regions from the persistent
        #: worker pool (:mod:`repro.runtime.pool`); ``False`` restores
        #: the spawn-per-region fork/join path.  Public so tests and
        #: benchmarks can flip it per run.
        self.hot_teams = env.default_hot_teams()
        #: Execution backend (:mod:`repro.runtime.gilstate`): ``GIL``
        #: runtimes serialize Python threads and the analysis stack
        #: projects no-GIL wall time; ``NOGIL`` runtimes (free-threaded
        #: interpreter, or ``OMP4PY_BACKEND=nogil``) run this exact
        #: engine with true parallelism and report measured wall time.
        from repro.runtime.gilstate import current_backend
        self.backend = current_backend()
        from repro.affinity import binder_from_env
        self._binder = binder_from_env()
        #: Raw spec behind the current binder (``set_affinity`` uses it
        #: to skip rebuilds when a serving job repeats its partition).
        self._affinity_spec: tuple | None = None
        self._pool = None
        self._pool_lock = threading.Lock()
        self._criticals: dict[str, object] = {}
        self._criticals_lock = threading.Lock()
        self._atomic_mutex = lowlevel.make_mutex()
        self._tp_local = threading.local()
        #: Work-accounting collector (see :mod:`repro.runtime.stats`).
        self.stats = StatsCollector()
        #: Event tracer (off by default; see :mod:`repro.runtime.trace`).
        self.tracer = Tracer()
        #: OMPT-style tool dispatch target: ``None`` when no tool is
        #: attached, a single tool, or a
        #: :class:`~repro.ompt.hooks.ToolDispatcher`.  Instrumented
        #: sites read this one attribute and branch on ``None`` — the
        #: same disabled-cost discipline as the tracer.
        self.tool = None
        self._tools: list = []
        #: Hang-diagnosis state (:mod:`repro.diagnostics.state`):
        #: ``None`` when disarmed.  Every event-driven wait site reads
        #: this one attribute and, when armed, records what it is about
        #: to block on — the raw material of the watchdog's wait-for
        #: graph.
        self.diag = None
        #: Sampling profiler (:mod:`repro.sampling`): ``None`` when
        #: disarmed.  Directive boundaries read this one attribute and
        #: branch on ``None`` — same disabled-cost discipline again.
        self.sampler = None

    # ------------------------------------------------------------------
    # Tool interface (see :mod:`repro.ompt`)

    def attach_tool(self, tool) -> None:
        """Attach an OMPT-style tool (idempotent per instance).

        Attach/detach are not synchronization points: call them outside
        parallel regions, as OMPT requires of ``ompt_start_tool``.
        """
        if any(existing is tool for existing in self._tools):
            return
        self._tools.append(tool)
        self._rebind_tool()

    def detach_tool(self, tool) -> None:
        """Detach a previously attached tool (no-op when absent)."""
        self._tools = [t for t in self._tools if t is not tool]
        self._rebind_tool()

    def _rebind_tool(self) -> None:
        if not self._tools:
            self.tool = None
        elif len(self._tools) == 1:
            self.tool = self._tools[0]
        else:
            from repro.ompt.hooks import ToolDispatcher
            self.tool = ToolDispatcher(self._tools)

    # ------------------------------------------------------------------
    # Contexts

    def _stack(self) -> list[TaskFrame]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current_frame(self) -> TaskFrame:
        """The innermost task frame, creating the initial-thread context
        on first use (the paper's lazy initial-thread initialization)."""
        stack = self._stack()
        if not stack:
            team = Team(self, None, 1)
            stack.append(TaskFrame(team, 0, None, "implicit",
                                   self._default_nthreads))
        return stack[-1]

    # ------------------------------------------------------------------
    # Parallel regions

    def parallel_run(self, fn, num_threads=None, if_=True, copyin=()):
        """Fork a team, run ``fn`` in every member, join.

        ``copyin`` is a tuple of threadprivate keys whose master values
        are broadcast to the team (the ``copyin`` clause).
        """
        frame = self.current_frame()
        size = self._decide_team_size(frame, num_threads, if_)
        team = Team(self, frame, size)
        team.region_id = next(_REGION_IDS)
        if self.tracer.enabled:
            self.tracer.record("region_fork", frame.thread_num, size,
                               team.region_id, *caller_site())
        tool = self.tool
        if tool is not None:
            tool.parallel_begin(frame.thread_num, size)
        diag = self.diag
        if diag is not None:
            diag.team_begin(team)
        sampler = self.sampler
        region_site = caller_site() if sampler is not None else None
        copyin_values = [(key, self._tp_dict().get(key, _TP_MISSING))
                         for key in copyin]
        binder = self._binder

        def member(index: int) -> None:
            if binder.enabled:
                binder.bind_current(index, size)
            stack = self._stack()
            stack.append(TaskFrame(team, index, frame, "implicit",
                                   frame.nthreads_var))
            if self.tracer.enabled:
                self.tracer.record("itask_begin", index, team.region_id)
            if tool is not None:
                tool.implicit_task(index, "begin", size)
            if diag is not None:
                diag.thread_enter(team, index)
            mark = (sampler.region_enter("parallel", region_site)
                    if sampler is not None else 0)
            begin = time.thread_time()
            try:
                for key, value in copyin_values:
                    if value is not _TP_MISSING:
                        self._tp_dict()[key] = value
                fn()
            except BaseException as error:  # noqa: BLE001 - re-raised at join
                team.record_error(index, error)
            finally:
                if self.tracer.enabled:
                    # itask_end doubles as the join-barrier release, so
                    # the enter must be a separate event or the DAG
                    # would fold join wait into member compute.
                    self.tracer.record("join_enter", index,
                                       team.region_id)
                try:
                    team.barrier.wait(self._run_one_task, index)
                except BaseException as error:  # noqa: BLE001
                    team.record_error(index, error)
                if diag is not None:
                    # Past the join barrier: a member that left can
                    # never arrive at any further barrier of this team.
                    diag.thread_exit(team, index)
                team.cpu_times[index] = time.thread_time() - begin
                if sampler is not None:
                    # Truncate to the pre-region depth: also cleans up
                    # inner markers an exception skipped past.
                    sampler.region_exit(mark)
                if self.tracer.enabled:
                    self.tracer.record("itask_end", index, team.region_id)
                if tool is not None:
                    tool.implicit_task(index, "end", size)
                stack.pop()

        if size > 1 and self.hot_teams:
            ticket = self.pool().run_helpers(member, size - 1)
            member(0)
            self.pool().wait(ticket)
        else:
            workers = self._spawn_cold(member, size)
            member(0)
            for worker in workers:
                worker.join()
        if self.tracer.enabled:
            self.tracer.record("region_join", frame.thread_num, size,
                               team.region_id)
        if diag is not None:
            diag.team_end(team)
        if tool is not None:
            tool.parallel_end(frame.thread_num, size)
        if team.level == 1:
            self.stats.record(team.cpu_times)
        if team.errors:
            thread_num, error = team.errors[0]
            raise OmpRuntimeError(
                f"exception in parallel region (thread {thread_num})"
            ) from error

    def _decide_team_size(self, frame: TaskFrame, num_threads, if_) -> int:
        if not if_:
            return 1
        active = frame.team.active_level
        if active >= 1 and not self._nest:
            return 1
        if active >= self._max_active_levels:
            return 1
        requested = (int(num_threads) if num_threads is not None
                     else frame.nthreads_var)
        if requested < 1:
            raise OmpRuntimeError("num_threads must be positive")
        return min(requested, self._thread_limit)

    def pool(self):
        """This runtime's hot-team worker pool, created on first fork."""
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    from repro.runtime.pool import WorkerPool
                    pool = WorkerPool(self)
                    self._pool = pool
        return pool

    def _spawn_cold(self, member, size: int) -> list[threading.Thread]:
        """The ``OMP4PY_HOT_TEAMS=0`` path: one fresh thread per helper.

        Fires the same ``thread_begin``/``thread_end`` tool callbacks
        the pool does, so tools see every runtime-managed thread
        regardless of which fork/join path served the region.
        """

        def cold_member(index: int) -> None:
            tool = self.tool
            ident = threading.get_ident()
            if tool is not None:
                tool.thread_begin("region-worker", ident)
            try:
                member(index)
            finally:
                tool = self.tool
                if tool is not None:
                    tool.thread_end("region-worker", ident)

        workers = [threading.Thread(target=cold_member, args=(index,),
                                    name=f"omp-{self.name}-{index}")
                   for index in range(1, size)]
        for worker in workers:
            worker.start()
        return workers

    # ------------------------------------------------------------------
    # Worksharing: loops

    def for_bounds(self, triplet_values) -> list:
        return worksharing.make_bounds(triplet_values)

    def for_init(self, bounds, kind: str = "static", chunk=None,
                 ordered: bool = False, nowait: bool = False) -> None:
        chunk = int(chunk) if chunk is not None else None
        sampler = self.sampler
        if sampler is not None:
            sampler.loop_enter(caller_site())
        worksharing.init_loop(self, bounds, kind, chunk, ordered, nowait)

    def for_next(self, bounds) -> bool:
        more = worksharing.next_chunk(bounds)
        if more:
            if self.tracer.enabled:
                self.tracer.record("chunk", bounds[2].thread_num,
                                   bounds[0], bounds[1])
            tool = self.tool
            if tool is not None:
                tool.work(bounds[2].thread_num, "loop",
                          bounds[0], bounds[1])
        return more

    def for_last(self, bounds) -> bool:
        return worksharing.loop_is_last(bounds)

    def for_end(self, bounds) -> None:
        if not bounds[2].nowait:
            # Popped after the implicit barrier, so wait time at the
            # loop's end attributes to the loop directive, not the
            # enclosing region.
            self.barrier()
        sampler = self.sampler
        if sampler is not None:
            sampler.loop_exit()

    @staticmethod
    def trip_count(start: int, stop: int, step: int) -> int:
        """Iteration count of ``range(start, stop, step)`` (used by the
        generated taskloop chunking code)."""
        return worksharing.trip_count(start, stop, step)

    def taskloop_default_grain(self, total: int) -> int:
        """Implementation-defined taskloop grain: aim for ~8 tasks per
        team member, floored at 1."""
        team_size = max(1, self.current_frame().team.size)
        return max(1, total // (8 * team_size))

    @staticmethod
    def collapse_divisors(bounds) -> tuple:
        """Divisors for divmod index recovery in collapsed loops:
        entry ``k`` is the product of the trip counts of loops after
        level ``k``."""
        trips = bounds[2].trips
        divisors = []
        running = 1
        for count in reversed(trips[1:]):
            running *= count
            divisors.append(running)
        divisors.reverse()
        return tuple(divisors)

    def ordered_start(self, bounds, value) -> None:
        if not self.tracer.enabled:
            worksharing.ordered_start(
                bounds, worksharing.linear_index(bounds, value))
            return
        site = caller_site()
        begin = time.perf_counter()
        worksharing.ordered_start(
            bounds, worksharing.linear_index(bounds, value))
        self.tracer.record("ordered_wait", bounds[2].thread_num,
                           time.perf_counter() - begin, *site)

    def ordered_end(self, bounds, value) -> None:
        worksharing.ordered_end(
            bounds, worksharing.linear_index(bounds, value))

    # ------------------------------------------------------------------
    # Worksharing: sections / single

    def sections_begin(self, count: int):
        return worksharing.sections_begin(self, count)

    def sections_next(self, state) -> int:
        return worksharing.sections_next(state)

    def sections_last(self, state) -> bool:
        return state.executed_last

    def sections_end(self, state, nowait: bool = False) -> None:
        if not nowait:
            self.barrier()

    def single_begin(self):
        return worksharing.single_begin(self)

    def single_end(self, state, nowait: bool = False) -> None:
        if not nowait:
            self.barrier()

    def copyprivate_set(self, state, payload) -> None:
        worksharing.copyprivate_set(state, payload)

    def copyprivate_get(self, state):
        return worksharing.copyprivate_get(state)

    def master_begin(self) -> bool:
        return self.current_frame().thread_num == 0

    # ------------------------------------------------------------------
    # Synchronization

    def barrier(self) -> None:
        frame = self.current_frame()
        if frame.kind == "task":
            raise OmpRuntimeError("barrier inside an explicit task")
        tool = self.tool
        tracing = self.tracer.enabled
        region_id = frame.team.region_id
        if tracing:
            self.tracer.record("barrier_enter", frame.thread_num,
                               region_id, *caller_site())
        if tool is not None:
            tool.sync_region(frame.thread_num, "barrier", "enter", None)
        begin = time.perf_counter() if (tracing or tool is not None) \
            else 0.0
        frame.team.barrier.wait(self._run_one_task, frame.thread_num)
        # A released barrier implies every team task completed, so the
        # frame's dependence history and child list are all dead weight.
        self._prune_dependences(frame)
        frame.children.clear()
        if tracing or tool is not None:
            wait = time.perf_counter() - begin
            if tracing:
                self.tracer.record("barrier_release", frame.thread_num,
                                   wait, region_id)
            if tool is not None:
                tool.sync_region(frame.thread_num, "barrier", "release",
                                 wait)

    def critical_enter(self, name: str = "") -> None:
        lock = self._critical_lock(name)
        tool = self.tool
        diag = self.diag
        if diag is not None:
            self._acquire_diagnosed(lock, tool, diag, "critical", name,
                                    ("critical", name))
        elif tool is None and not self.tracer.enabled:
            lock.acquire()
        else:
            self._acquire_instrumented(lock, tool, "critical", name)

    def critical_exit(self, name: str = "") -> None:
        diag = self.diag
        if diag is not None:
            # Disowned before the unlock so a racing acquirer's
            # ownership write can never be clobbered by this release.
            diag.resource_released(("critical", name))
        self._critical_lock(name).release()
        if self.tracer.enabled:
            self.tracer.record("mutex_released", self.get_thread_num(),
                               "critical", name)
        tool = self.tool
        if tool is not None:
            tool.mutex_released(self.get_thread_num(), "critical", name)

    def _record_acquired(self, thread: int, kind: str, handle,
                         wait: float) -> None:
        """Trace a mutex acquisition (hold-interval open) with the
        measured wait and the acquiring call site."""
        self.tracer.record("mutex_acquired", thread, kind, handle, wait,
                           *caller_site())

    def _acquire_instrumented(self, lock, tool, kind: str,
                              handle) -> None:
        """Acquire ``lock`` dispatching mutex hooks and/or trace
        events; the contended path (``mutex_acquire`` + timed wait)
        only fires when a non-blocking attempt fails."""
        thread = self.get_thread_num()
        tracing = self.tracer.enabled
        if lock.acquire(blocking=False):
            if tool is not None:
                tool.mutex_acquired(thread, kind, handle, 0.0)
            if tracing:
                self._record_acquired(thread, kind, handle, 0.0)
            return
        if tool is not None:
            tool.mutex_acquire(thread, kind, handle)
        begin = time.perf_counter()
        lock.acquire()
        wait = time.perf_counter() - begin
        if tool is not None:
            tool.mutex_acquired(thread, kind, handle, wait)
        if tracing:
            self._record_acquired(thread, kind, handle, wait)

    def _acquire_diagnosed(self, lock, tool, diag, kind: str, handle,
                           key) -> None:
        """Acquire ``lock`` recording a block record while contended and
        ownership once held (the diagnostics twin of
        :meth:`_acquire_instrumented`; dispatches tool hooks and trace
        events too)."""
        thread = self.get_thread_num()
        tracing = self.tracer.enabled
        if lock.acquire(blocking=False):
            if tool is not None:
                tool.mutex_acquired(thread, kind, handle, 0.0)
            if tracing:
                self._record_acquired(thread, kind, handle, 0.0)
            diag.resource_acquired(key)
            return
        if tool is not None:
            tool.mutex_acquire(thread, kind, handle)
        begin = time.perf_counter()
        record = diag.block_enter(kind, key, thread_num=thread,
                                  detail=str(handle))
        record.sleeping = True
        try:
            lock.acquire()
        finally:
            diag.block_exit()
        diag.resource_acquired(key)
        wait = time.perf_counter() - begin
        if tool is not None:
            tool.mutex_acquired(thread, kind, handle, wait)
        if tracing:
            self._record_acquired(thread, kind, handle, wait)

    def _critical_lock(self, name: str):
        lock = self._criticals.get(name)
        if lock is None:
            with self._criticals_lock:
                lock = self._criticals.setdefault(
                    name, self.lowlevel.make_mutex())
        return lock

    def atomic_enter(self) -> None:
        tool = self.tool
        diag = self.diag
        if diag is not None:
            self._acquire_diagnosed(self._atomic_mutex, tool, diag,
                                    "atomic", "atomic",
                                    ("atomic", id(self)))
        elif tool is None and not self.tracer.enabled:
            self._atomic_mutex.acquire()
        else:
            self._acquire_instrumented(self._atomic_mutex, tool,
                                       "atomic", "atomic")

    def atomic_exit(self) -> None:
        diag = self.diag
        if diag is not None:
            diag.resource_released(("atomic", id(self)))
        self._atomic_mutex.release()
        if self.tracer.enabled:
            self.tracer.record("mutex_released", self.get_thread_num(),
                               "atomic", "atomic")
        tool = self.tool
        if tool is not None:
            tool.mutex_released(self.get_thread_num(), "atomic", "atomic")

    def mutex_lock(self) -> None:
        """Team mutex used by generated reduction epilogues."""
        self.current_frame().team.mutex.acquire()

    def mutex_unlock(self) -> None:
        self.current_frame().team.mutex.release()

    def flush(self, *_names) -> None:
        """No-op: CPython's memory model already sequences the accesses
        a flush would order; kept for tracing and API fidelity."""

    # ------------------------------------------------------------------
    # Tasking

    def task_submit(self, fn, if_=True, depends_in=(),
                    depends_out=()) -> None:
        """Submit an explicit task.

        ``depends_in``/``depends_out`` carry the *objects* named by
        ``depend(in:...)``/``depend(out:...)``/``depend(inout:...)``
        clauses; dependences are keyed by object identity, the paper's
        Section V sketch (with its documented caveat for equal-valued
        immutables — interning can alias such keys).
        """
        frame = self.current_frame()
        team = frame.team
        node = TaskNode(fn, team, self.lowlevel)
        if self.sampler is not None:
            node.site = caller_site()
        if self.tracer.enabled:
            self.tracer.record("task_submit", frame.thread_num, id(node),
                               frame.task_id, *caller_site())
        tool = self.tool
        if tool is not None:
            tool.task_create(frame.thread_num, id(node))
        predecessors = self._resolve_dependences(frame, node, depends_in,
                                                 depends_out)
        if not if_:
            # if(false): the task is undeferred — the encountering
            # thread executes it immediately (OpenMP 3.0 §2.7), but
            # only once its dependences are satisfied.  While a
            # predecessor runs elsewhere, this thread helps with other
            # team tasks instead of blocking — which also keeps a
            # single-thread team live when the predecessor is still
            # sitting unclaimed in a deque.
            diag = self.diag
            for predecessor in predecessors:
                backoff = BACKOFF_MIN
                record = None
                if diag is not None and not predecessor.done:
                    record = diag.block_enter(
                        "dependence", id(predecessor), team=team,
                        thread_num=frame.thread_num, detail=predecessor)
                try:
                    while not predecessor.done:
                        if team.broken:
                            return
                        if self._run_one_task(team, frame.thread_num):
                            backoff = BACKOFF_MIN
                            continue
                        # Backoff fallback: completion sets the event,
                        # so the timeout only bounds breakage detection.
                        if record is not None:
                            record.sleeping = True
                        predecessor.event.wait(timeout=backoff)
                        if record is not None:
                            record.sleeping = False
                        backoff = next_backoff(backoff)
                finally:
                    if record is not None:
                        diag.block_exit()
            team.pending.fetch_add(1)
            frame.children.append(node)
            node.claim()
            self._execute_task_node(node)
            return
        team.pending.fetch_add(1)
        frame.children.append(node)
        if predecessors:
            from repro.runtime.tasking import WAITING
            node.state.store(WAITING)
            diag = self.diag
            if diag is not None:
                # Registered before add_successor so a predecessor
                # finishing concurrently releases an already-known task.
                diag.task_deferred(node, predecessors)
            # +1 keeps the count from reaching zero before this thread
            # finishes registering with every predecessor.
            node.deps_remaining.store(len(predecessors) + 1)
            already_done = sum(
                1 for predecessor in predecessors
                if not predecessor.add_successor(node))
            remaining = node.deps_remaining.fetch_add(
                -(already_done + 1))
            if remaining - (already_done + 1) > 0:
                return  # a predecessor's completion will release it
        self._release_task(node, frame.thread_num)

    def _release_task(self, node: TaskNode, thread_num: int) -> None:
        """Make a (possibly formerly WAITING) task claimable by pushing
        it onto ``thread_num``'s deque, then signal any sleeping
        waiters (the push must be visible before the poke)."""
        from repro.runtime.tasking import FREE, WAITING
        node.state.compare_exchange(WAITING, FREE)
        diag = self.diag
        if diag is not None:
            diag.task_released(node)
        node.team.scheduler.push(thread_num, node)
        node.team.barrier.poke()

    def _resolve_dependences(self, frame: TaskFrame, node: TaskNode,
                             depends_in, depends_out) -> list[TaskNode]:
        if not depends_in and not depends_out:
            return []
        predecessors: dict[int, TaskNode] = {}
        out_ids = {id(obj) for obj in depends_out}
        for obj in depends_in:
            if id(obj) in out_ids:
                continue  # inout: the out rules below subsume it
            writer, readers = frame.depend_map.get(id(obj), (None, []))
            if writer is not None:
                predecessors[id(writer)] = writer
            frame.depend_map.setdefault(id(obj), (None, []))
            frame.depend_map[id(obj)][1].append(node)
            frame.depend_refs[id(obj)] = obj
        for obj in depends_out:
            writer, readers = frame.depend_map.get(id(obj), (None, []))
            if writer is not None:
                predecessors[id(writer)] = writer
            for reader in readers:
                predecessors[id(reader)] = reader
            frame.depend_map[id(obj)] = (node, [])
            frame.depend_refs[id(obj)] = obj
        predecessors.pop(id(node), None)
        return list(predecessors.values())

    def task_wait(self) -> None:
        """Complete all direct children of the current task."""
        frame = self.current_frame()
        team = frame.team
        tool = self.tool
        tracing = self.tracer.enabled
        if tracing:
            self.tracer.record("taskwait_enter", frame.thread_num,
                               frame.task_id)
        if tracing or tool is not None:
            begin = time.perf_counter()
        if tool is not None:
            tool.sync_region(frame.thread_num, "taskwait", "enter", None)
        diag = self.diag
        record = None
        backoff = BACKOFF_MIN
        try:
            while not team.broken:
                incomplete = [c for c in frame.children if not c.done]
                if not incomplete:
                    break
                progressed = False
                for child in incomplete:
                    if child.claim():
                        self._execute_task_node(child)
                        progressed = True
                if progressed:
                    backoff = BACKOFF_MIN
                    continue
                # Children are running elsewhere or waiting on
                # dependences: a taskwait is a scheduling point, so help
                # with any team task before sleeping on a child's
                # completion event.  The timeout is the bounded-backoff
                # safety net (breakage, or a child released onto another
                # thread's deque mid-sleep).
                if self._run_one_task(team, frame.thread_num):
                    backoff = BACKOFF_MIN
                    continue
                if diag is not None:
                    if record is None:
                        record = diag.block_enter(
                            "taskwait", id(frame), team=team,
                            thread_num=frame.thread_num)
                    record.detail = tuple(incomplete)
                    record.sleeping = True
                incomplete[0].event.wait(timeout=backoff)
                if record is not None:
                    record.sleeping = False
                backoff = next_backoff(backoff)
        finally:
            if record is not None:
                diag.block_exit()
        if tracing:
            self.tracer.record("taskwait_release", frame.thread_num,
                               time.perf_counter() - begin,
                               frame.task_id)
        if tool is not None:
            tool.sync_region(frame.thread_num, "taskwait", "release",
                             time.perf_counter() - begin)
        frame.children.clear()
        self._prune_dependences(frame)

    def _prune_dependences(self, frame: TaskFrame) -> None:
        """Drop dependence entries whose writer and readers have all
        completed (taskwait and region-end bookkeeping).

        Without this the per-frame history — and, through
        ``depend_refs``, every object ever named in a depend clause —
        grows for the life of the region, which for the never-popped
        implicit frame of an initial thread means the life of the
        program.
        """
        depend_map = frame.depend_map
        if not depend_map:
            return
        dead = [key for key, (writer, readers) in depend_map.items()
                if (writer is None or writer.done)
                and all(reader.done for reader in readers)]
        for key in dead:
            del depend_map[key]
            frame.depend_refs.pop(key, None)

    def _run_one_task(self, team, thread_num: int) -> bool:
        """Claim and execute one task from the team's scheduler.

        The callback behind every scheduling point (barrier drain,
        taskwait, undeferred-dependence waits).  Fires the steal
        instrumentation when the claimed task came from another
        thread's deque.
        """
        claimed = team.scheduler.claim(thread_num)
        if claimed is None:
            return False
        node, victim = claimed
        if victim != thread_num:
            if self.tracer.enabled:
                self.tracer.record("task_steal", thread_num, id(node),
                                   victim)
            tool = self.tool
            if tool is not None:
                tool.task_steal(thread_num, id(node), victim)
        self._execute_task_node(node)
        return True

    def _execute_task_node(self, node: TaskNode) -> None:
        frame = self.current_frame()
        stack = self._stack()
        child = TaskFrame(node.team, frame.thread_num, frame, "task",
                          frame.nthreads_var)
        child.task_id = id(node)
        stack.append(child)
        if self.tracer.enabled:
            self.tracer.record("task_start", frame.thread_num, id(node))
        tool = self.tool
        if tool is not None:
            tool.task_schedule(frame.thread_num, id(node))
        diag = self.diag
        if diag is not None:
            diag.task_started(node)
        sampler = self.sampler
        mark = (sampler.region_enter("task", node.site)
                if sampler is not None else 0)
        try:
            node.fn()
        except BaseException as error:  # noqa: BLE001 - raised at join
            node.team.record_error(frame.thread_num, error)
        finally:
            if sampler is not None:
                sampler.region_exit(mark)
            stack.pop()
            if self.tracer.enabled:
                self.tracer.record("task_finish", frame.thread_num,
                                   id(node))
            if diag is not None:
                diag.task_finished(node)
            ready = node.finish()
            node.team.pending.fetch_add(-1)
            for successor in ready:
                self._release_task(successor, frame.thread_num)
            node.team.barrier.poke()

    # ------------------------------------------------------------------
    # Reductions

    @staticmethod
    def reduction_init(op: str):
        return reduction.reduction_init(op)

    @staticmethod
    def reduction_combine(op: str, out, value):
        return reduction.reduction_combine(op, out, value)

    @staticmethod
    def declare_reduction(name: str, combiner, initializer) -> None:
        reduction.declare_reduction(name, combiner, initializer)

    # ------------------------------------------------------------------
    # Threadprivate

    def _tp_dict(self) -> dict:
        values = getattr(self._tp_local, "values", None)
        if values is None:
            values = {}
            self._tp_local.values = values
        return values

    def tp_load(self, key: str, name: str, globalns: dict):
        values = self._tp_dict()
        if key not in values:
            if name not in globalns:
                raise OmpRuntimeError(
                    f"threadprivate variable {name!r} has no initial value")
            values[key] = globalns[name]
        return values[key]

    def tp_store(self, key: str, value) -> None:
        self._tp_dict()[key] = value

    # ------------------------------------------------------------------
    # OpenMP runtime library API

    def set_num_threads(self, count: int) -> None:
        if count < 1:
            raise OmpRuntimeError("omp_set_num_threads requires >= 1")
        self.current_frame().nthreads_var = int(count)

    def get_num_threads(self) -> int:
        return self.current_frame().team.size

    def get_max_threads(self) -> int:
        return self.current_frame().nthreads_var

    def get_thread_num(self) -> int:
        return self.current_frame().thread_num

    @staticmethod
    def get_num_procs() -> int:
        """``omp_get_num_procs``: CPUs this *process* may use.

        Affinity/cgroup-aware (``os.process_cpu_count`` on 3.13+), so
        team sizing on a restricted runner — the free-threaded CI leg
        runs on shared machines — matches the cores actually grantable
        instead of the whole box.
        """
        return env.available_cpus()

    def in_parallel(self) -> bool:
        return self.current_frame().team.active_level > 0

    def get_num_places(self) -> int:
        """``omp_get_num_places``: places parsed from ``OMP_PLACES``."""
        return len(self._binder.places)

    def get_place_num(self) -> int:
        """``omp_get_place_num``: the calling thread's place, or -1
        when it is unbound (no places, bind disabled, or platform
        without ``sched_setaffinity``)."""
        return self._binder.place_num()

    def get_proc_bind(self) -> str:
        """Effective ``bind-var`` (normalized: ``false``/``primary``/
        ``close``/``spread``)."""
        return self._binder.proc_bind

    def set_affinity(self, places_spec: str | None,
                     proc_bind: str = "close") -> None:
        """Rebuild the affinity binder from an explicit places spec.

        The programmatic counterpart of ``OMP_PLACES``/
        ``OMP_PROC_BIND`` for callers that re-partition at run time —
        the serving layer binds each worker process to its tenant's
        CPU partition per job (:mod:`repro.serve`).  ``None`` restores
        the unbound default.  Idempotent per spec, so repeating a
        job's partition costs one tuple compare.
        """
        spec = (places_spec, proc_bind)
        if spec == self._affinity_spec:
            return
        from repro.affinity import Binder, parse_places
        places = parse_places(places_spec) if places_spec else ()
        self._binder = Binder(places, proc_bind if places else "false")
        self._affinity_spec = spec

    def get_wait_policy(self) -> str:
        """Effective ``wait-policy-var`` (``active`` or ``passive``)."""
        return self._wait_policy

    def set_dynamic(self, flag: bool) -> None:
        self._dyn = bool(flag)

    def get_dynamic(self) -> bool:
        return self._dyn

    def set_nested(self, flag: bool) -> None:
        self._nest = bool(flag)

    def get_nested(self) -> bool:
        return self._nest

    def set_schedule(self, kind, chunk=None) -> None:
        if isinstance(kind, int):
            if kind not in _SCHEDULE_ENUM:
                raise OmpRuntimeError(f"invalid schedule enum {kind}")
            kind = _SCHEDULE_ENUM[kind]
        kind = str(kind).lower()
        if kind not in _SCHEDULE_NAMES:
            raise OmpRuntimeError(f"invalid schedule kind {kind!r}")
        self._run_sched = (kind, int(chunk) if chunk else None)

    def get_schedule(self) -> tuple[str, int | None]:
        return self._run_sched

    def get_thread_limit(self) -> int:
        return self._thread_limit

    def set_max_active_levels(self, levels: int) -> None:
        self._max_active_levels = max(0, int(levels))

    def get_max_active_levels(self) -> int:
        return self._max_active_levels

    def get_level(self) -> int:
        return self.current_frame().team.level

    def get_active_level(self) -> int:
        return self.current_frame().team.active_level

    def get_ancestor_thread_num(self, level: int) -> int:
        frame = self.current_frame()
        if level < 0 or level > frame.team.level:
            return -1
        while frame.team.level > level:
            frame = frame.team.parent_frame
        return frame.thread_num

    def get_team_size(self, level: int) -> int:
        frame = self.current_frame()
        if level < 0 or level > frame.team.level:
            return -1
        while frame.team.level > level:
            frame = frame.team.parent_frame
        return frame.team.size

    def display_env(self, verbose: bool = False) -> None:
        """Print the ICVs in the OpenMP ``OMP_DISPLAY_ENV`` format.

        The snapshot comes from :mod:`repro.diagnostics.envreport`, the
        same source the watchdog reports and ``repro.doctor env`` use,
        so every diagnostic surface shows one consistent ICV view.
        """
        import sys as _sys
        from repro.diagnostics.envreport import (format_display_env,
                                                 icv_snapshot)
        snapshot = icv_snapshot(self, verbose=verbose)
        print(format_display_env(snapshot, runtime_name=self.name),
              file=_sys.stderr)

    @staticmethod
    def get_wtime() -> float:
        return time.perf_counter()

    @staticmethod
    def get_wtick() -> float:
        return time.get_clock_info("perf_counter").resolution

    # Lock API -----------------------------------------------------------

    def init_lock(self) -> OmpLock:
        return OmpLock(self.lowlevel, runtime=self)

    def init_nest_lock(self) -> OmpNestLock:
        return OmpNestLock(self.lowlevel, runtime=self)

    @staticmethod
    def destroy_lock(lock) -> None:
        lock.destroy()

    destroy_nest_lock = destroy_lock

    @staticmethod
    def set_lock(lock) -> None:
        lock.set()

    set_nest_lock = set_lock

    @staticmethod
    def unset_lock(lock) -> None:
        lock.unset()

    unset_nest_lock = unset_lock

    @staticmethod
    def test_lock(lock):
        return lock.test()

    test_nest_lock = test_lock

    # Misc ----------------------------------------------------------------

    #: Sentinel re-exported for generated ``private`` initialisation.
    UNDEFINED = UNDEFINED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<OmpRuntime {self.name}>"


class _TPMissingType:
    __slots__ = ()


_TP_MISSING = _TPMissingType()
