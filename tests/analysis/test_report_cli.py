"""Coverage of the remaining report CLI commands and chart rendering."""

import pytest

from repro.analysis.report import (build_parser, main,
                                   render_speedup_chart)
from repro.analysis.runner import SweepPoint
from repro.analysis.timing import Measurement


def _point(series, threads, projected):
    measurement = Measurement(wall=projected, projected=projected,
                              serialized_cpu=0, critical_cpu=0,
                              regions=1)
    return SweepPoint(app="x", series=series, threads=threads,
                      measurement=measurement, verified=True)


class TestChartRendering:
    def test_bars_scale_with_speedup(self):
        points = [_point("pure", 1, 1.0), _point("pure", 4, 0.25),
                  _point("hybrid", 1, 1.0), _point("hybrid", 4, 0.5)]
        chart = render_speedup_chart(points, [1, 4], ["pure", "hybrid"])
        lines = chart.splitlines()
        assert "4.00x" in lines[1]
        assert "2.00x" in lines[2]
        assert lines[1].count("#") > lines[2].count("#")

    def test_missing_series_skipped(self):
        points = [_point("pure", 1, 1.0), _point("pure", 4, 0.5)]
        chart = render_speedup_chart(points, [1, 4], ["pure", "pyomp"])
        assert "pyomp" not in chart


class TestCliCommands:
    def test_fig6_runs(self, capsys):
        main(["fig6", "--threads", "1,2", "--profile", "test"])
        out = capsys.readouterr().out
        assert "clustering" in out
        assert "wordcount" in out
        assert "PyOMPCompileError" in out

    def test_headline_runs(self, capsys):
        main(["headline", "--threads", "1,2", "--profile", "test",
              "--apps", "pi,lu"])
        out = capsys.readouterr().out
        assert "Pure max self-speedup" in out
        assert "CompiledDT vs Pure" in out
        assert "paper:" in out

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.profile == "default"
        assert args.threads == "1,2,4"
        assert args.chunk == 300
