"""Clause-driven data-sharing classification and privatization codegen.

Implements the variable rules of the paper's Section III-C: variables
defined before a block are shared by default (assigned ones become
``nonlocal``/``global`` in the generated inner function), variables first
assigned inside are thread-local, ``private`` copies start undefined,
``firstprivate`` copies capture the outer value (via an inner-function
default argument, evaluated at creation time), and ``reduction``
variables are replaced by renamed private accumulators merged under the
team mutex at the end of the region (Fig. 2).
"""

from __future__ import annotations

import ast
import dataclasses

from repro.directives.model import Directive
from repro.errors import OmpSyntaxError
from repro.transform import astutil, scope
from repro.transform.api_map import OMP_API_METHODS
from repro.transform.context import TransformContext

#: Directive machinery, not user variables: the ``omp`` marker (whose
#: calls the transformation removes) and the OpenMP API functions (which
#: are rebound to the runtime handle).
_EXEMPT_NAMES = frozenset({"omp"}) | frozenset(OMP_API_METHODS)


@dataclasses.dataclass
class DataSharing:
    """Resolved data-sharing of one parallel/task/worksharing block."""

    privates: list[str]
    firstprivates: list[str]
    lastprivates: list[str]
    #: (operator, shared variable name, accumulator name) triples.
    reductions: list[tuple[str, str, str]]
    shared: list[str]
    copyin: list[str]
    #: Names needing ``nonlocal`` in the generated inner function.
    nonlocal_names: list[str]
    #: Names needing ``global`` in the generated inner function.
    global_names: list[str]

    @property
    def rename_map(self) -> dict[str, str]:
        return {var: acc for _op, var, acc in self.reductions}


def classify(body: list[ast.stmt], directive: Directive,
             ctx: TransformContext, *,
             allow_lastprivate: bool = False) -> DataSharing:
    """Resolve every variable's sharing for a block-creating construct."""
    privates = list(directive.clause_vars("private"))
    firstprivates = list(directive.clause_vars("firstprivate"))
    lastprivates = (list(directive.clause_vars("lastprivate"))
                    if allow_lastprivate else [])
    shared = list(directive.clause_vars("shared"))
    copyin = list(directive.clause_vars("copyin"))
    reductions: list[tuple[str, str, str]] = []
    for clause in directive.all_clauses("reduction"):
        for var in clause.vars:
            reductions.append(
                (clause.op, var, ctx.symbols.fresh(var)))

    default_clause = directive.clause("default")
    policy = default_clause.op if default_clause is not None else "shared"

    explicit = set(privates) | set(firstprivates) | set(lastprivates) \
        | set(shared) | set(copyin) | {var for _o, var, _a in reductions}

    # Bindings inside this very block do not make a name "defined before
    # the block": they move into the generated inner function.  The
    # whole subtree is excluded by identity, so synthesized wrapper
    # nodes (combined directives) still shadow the shared originals.
    exclude_ids = frozenset(
        id(child) for stmt in body for child in ast.walk(stmt))

    _check_outer_bindings(directive, ctx, exclude_ids, firstprivates,
                          shared, [var for _o, var, _a in reductions],
                          copyin)

    assigned = scope.assigned_names(body)
    used = scope.read_names(body) | assigned

    if policy in ("private", "firstprivate"):
        # Unlisted variables bound in an enclosing function scope become
        # private/firstprivate (restricted to function-scope names; see
        # DESIGN.md on module-level callables).
        for name in sorted(used):
            if name in explicit or name in ctx.threadprivate \
                    or name in _EXEMPT_NAMES:
                continue
            if ctx.bound_in_enclosing_function(name, exclude_ids):
                if policy == "private":
                    privates.append(name)
                else:
                    firstprivates.append(name)
                explicit.add(name)
    elif policy == "none":
        missing = sorted(
            name for name in used
            if name not in explicit and name not in ctx.threadprivate
            and name not in _EXEMPT_NAMES
            and ctx.bound_in_enclosing_function(name, exclude_ids))
        if missing:
            raise OmpSyntaxError(
                f"default(none) requires explicit sharing for: "
                f"{', '.join(missing)}", directive=directive.source)

    # Shared variables that the block assigns need a nonlocal/global
    # declaration so rebinding reaches the enclosing scope.
    nonlocal_names: list[str] = []
    global_names: list[str] = []
    reduction_vars = {var for _o, var, _a in reductions}
    for name in sorted(assigned | reduction_vars):
        if name in privates or name in firstprivates \
                or name in lastprivates or name in ctx.threadprivate:
            continue
        if ctx.bound_in_enclosing_function(name, exclude_ids):
            nonlocal_names.append(name)
        elif name in ctx.module_globals or name in scope.declared_globals(
                body):
            global_names.append(name)
        # Otherwise the name is new inside the block: a plain local of
        # the generated function, thread-local by construction.

    return DataSharing(privates=privates, firstprivates=firstprivates,
                       lastprivates=lastprivates, reductions=reductions,
                       shared=shared, copyin=copyin,
                       nonlocal_names=nonlocal_names,
                       global_names=global_names)


def _check_outer_bindings(directive: Directive, ctx: TransformContext,
                          exclude_ids: frozenset[int],
                          *name_lists: list[str]) -> None:
    for names in name_lists:
        for name in names:
            if not ctx.bound_in_enclosing_function(name, exclude_ids) \
                    and name not in ctx.module_globals \
                    and name not in ctx.threadprivate:
                raise OmpSyntaxError(
                    f"variable {name!r} is not defined in an enclosing "
                    f"scope", directive=directive.source)


def sentinel_inits(ds: DataSharing, ctx: TransformContext) -> list[ast.stmt]:
    """``x = __omp__.UNDEFINED`` for every private variable."""
    return [astutil.assign(name,
                           astutil.rt_attr(ctx.rt_name, "UNDEFINED"))
            for name in ds.privates]


def reduction_inits(ds: DataSharing, ctx: TransformContext) -> list[ast.stmt]:
    """``__omp_x = __omp__.reduction_init('+')`` accumulators."""
    return [astutil.assign(
        acc, astutil.rt_call(ctx.rt_name, "reduction_init",
                             [astutil.constant(op)]))
        for op, _var, acc in ds.reductions]


def reduction_merges(ds: DataSharing, ctx: TransformContext) -> list[ast.stmt]:
    """The Fig. 2 epilogue: merge each accumulator under the team mutex.

    Generates, per reduction variable::

        __omp__.mutex_lock()
        try:
            x = __omp__.reduction_combine('+', x, __omp_x)
        finally:
            __omp__.mutex_unlock()
    """
    stmts: list[ast.stmt] = []
    for op, var, acc in ds.reductions:
        merge = astutil.assign(
            var, astutil.rt_call(ctx.rt_name, "reduction_combine",
                                 [astutil.constant(op),
                                  astutil.name_load(var),
                                  astutil.name_load(acc)]))
        stmts.append(astutil.rt_call_stmt(ctx.rt_name, "mutex_lock"))
        stmts.append(astutil.try_finally(
            [merge], [astutil.rt_call_stmt(ctx.rt_name, "mutex_unlock")]))
    return stmts


def firstprivate_params(ds: DataSharing) -> ast.arguments:
    """Inner-function parameters with defaults capturing outer values."""
    args = [ast.arg(arg=name) for name in ds.firstprivates]
    defaults = [astutil.name_load(name) for name in ds.firstprivates]
    return ast.arguments(posonlyargs=[], args=args, vararg=None,
                         kwonlyargs=[], kw_defaults=[], kwarg=None,
                         defaults=defaults)


def sharing_declarations(ds: DataSharing) -> list[ast.stmt]:
    decls: list[ast.stmt] = []
    if ds.nonlocal_names:
        decls.append(ast.Nonlocal(names=list(ds.nonlocal_names)))
    if ds.global_names:
        decls.append(ast.Global(names=list(ds.global_names)))
    return decls
