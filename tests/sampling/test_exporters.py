"""Tests of the sample exporters and the rank-aware trace plumbing."""

import json

from repro.ompt.auto import _rank_path
from repro.ompt.exporters import (merge_chrome_traces,
                                  validate_chrome_trace)
from repro.sampling.exporters import (chrome_trace_samples,
                                      collapsed_text,
                                      speedscope_profile,
                                      validate_collapsed,
                                      validate_speedscope,
                                      write_collapsed,
                                      write_speedscope)
from repro.sampling.sampler import FoldedStore


def make_store() -> FoldedStore:
    store = FoldedStore()
    hot = ("main (app.py:3)", "<omp for @ app.py:9>",
           "kernel (app.py:10)")
    for _ in range(3):
        store.add(("<omp for @ app.py:9>",), hot, "cpu", 0.001, 11)
    store.add(("<omp for @ app.py:9>",), hot[:2], "wait", 0.004, 12)
    return store


class TestCollapsed:
    def test_round_trips_counts_and_wait_marker(self):
        text = collapsed_text(make_store())
        lines = text.splitlines()
        assert lines[0].endswith(" 3")  # most frequent first
        assert any(line.rpartition(" ")[0].endswith("[wait]")
                   for line in lines)
        assert validate_collapsed(text) == []

    def test_semicolons_in_frames_are_escaped(self):
        store = FoldedStore()
        store.add((), ("weird;frame ()",), "cpu", 0.0, 1)
        text = collapsed_text(store)
        assert validate_collapsed(text) == []
        assert "weird,frame" in text

    def test_validator_flags_malformed_lines(self):
        assert validate_collapsed("stack;frame notanumber")
        assert validate_collapsed("stack;frame 0")
        assert validate_collapsed("a;;b 3")
        assert validate_collapsed("") == []

    def test_write_collapsed(self, tmp_path):
        path = tmp_path / "samples.collapsed"
        write_collapsed(path, make_store())
        assert validate_collapsed(path.read_text()) == []


class TestSpeedscope:
    def test_profile_per_state_with_second_weights(self):
        payload = speedscope_profile(make_store(), interval=0.005,
                                     name="unit")
        assert validate_speedscope(payload) == []
        by_name = {profile["name"]: profile
                   for profile in payload["profiles"]}
        assert set(by_name) == {"unit [cpu]", "unit [wait]"}
        cpu = by_name["unit [cpu]"]
        assert cpu["weights"] == [3 * 0.005]
        assert cpu["endValue"] == sum(cpu["weights"])
        frames = payload["shared"]["frames"]
        names = [frame["name"] for frame in frames]
        assert "<omp for @ app.py:9>" in names

    def test_validator_flags_schema_problems(self):
        assert validate_speedscope([]) == ["top level must be an object"]
        assert validate_speedscope({"$schema": "nope"})
        good = speedscope_profile(make_store(), interval=0.005)
        bad = json.loads(json.dumps(good))
        bad["profiles"][0]["samples"][0] = [999]
        assert any("out of range" in problem
                   for problem in validate_speedscope(bad))
        bad = json.loads(json.dumps(good))
        bad["profiles"][0]["weights"].append(1.0)
        assert any("samples vs" in problem
                   for problem in validate_speedscope(bad))

    def test_write_speedscope(self, tmp_path):
        path = tmp_path / "samples.speedscope.json"
        write_speedscope(path, make_store(), interval=0.005)
        payload = json.loads(path.read_text())
        assert validate_speedscope(payload) == []


class TestChromeSamples:
    def test_instants_validate_against_trace_schema(self):
        payload = chrome_trace_samples(
            make_store(), interval=0.005,
            anchor=(1_000_000.0, 10.0), metadata={"rank": 2})
        assert validate_chrome_trace(payload) == []
        other = payload["otherData"]
        assert other["producer"] == "repro.sampling"
        assert other["epoch_start_unix_s"] == 1_000_000.0
        assert other["rank"] == 2
        instants = [row for row in payload["traceEvents"]
                    if row["ph"] == "i"]
        assert len(instants) == 4
        assert {row["cat"] for row in instants} \
            == {"sample.cpu", "sample.wait"}
        # One named metadata row per observed thread.
        meta = [row for row in payload["traceEvents"]
                if row["ph"] == "M"]
        assert len(meta) == 2


class TestMerge:
    @staticmethod
    def trace(rank, epoch, ts=100.0):
        return {
            "traceEvents": [
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
                 "ts": 0, "args": {"name": "main"}},
                {"name": "work", "ph": "i", "s": "t", "ts": ts,
                 "pid": 1, "tid": 0, "args": {}},
            ],
            "displayTimeUnit": "ms",
            "otherData": {"rank": rank, "backend": "gil",
                          "epoch_start_unix_s": epoch,
                          "dropped_events": 1},
        }

    def test_ranks_become_processes_on_a_common_base(self):
        merged = merge_chrome_traces(
            [self.trace(0, 100.0), self.trace(1, 100.5)])
        assert validate_chrome_trace(merged) == []
        other = merged["otherData"]
        assert other["ranks"] == 2
        assert other["epoch_start_unix_s"] == 100.0
        assert other["backend"] == "gil"
        assert other["dropped_events"] == 2
        assert other["unaligned_ranks"] == []
        instants = [row for row in merged["traceEvents"]
                    if row["ph"] == "i"]
        by_pid = {row["pid"]: row for row in instants}
        assert set(by_pid) == {0, 1}
        # Rank 1 started 0.5 s later: its events shift by 0.5e6 µs.
        assert by_pid[0]["ts"] == 100.0
        assert by_pid[1]["ts"] == 100.0 + 0.5e6
        process_rows = [row for row in merged["traceEvents"]
                        if row["name"] == "process_name"]
        assert [row["pid"] for row in process_rows] == [0, 1]

    def test_anchorless_payload_merges_unshifted(self):
        second = self.trace(1, 100.5)
        del second["otherData"]["epoch_start_unix_s"]
        merged = merge_chrome_traces(
            [self.trace(0, 100.0), second])
        assert merged["otherData"]["unaligned_ranks"] == [1]
        instants = [row for row in merged["traceEvents"]
                    if row["ph"] == "i"]
        by_pid = {row["pid"]: row for row in instants}
        assert by_pid[1]["ts"] == 100.0  # unshifted

    def test_missing_rank_falls_back_to_position(self):
        first = self.trace(0, 100.0)
        del first["otherData"]["rank"]
        merged = merge_chrome_traces([first])
        assert {row["pid"] for row in merged["traceEvents"]} == {0}


class TestRankNaming:
    def test_rank_path_preserves_suffix(self):
        assert _rank_path("out/trace.json", 3) == "out/trace.rank3.json"
        assert _rank_path("samples.collapsed", 0) \
            == "samples.rank0.collapsed"

    def test_env_rank_reads_launcher_variables(self, monkeypatch):
        from repro.mpi.launcher import env_rank
        for variable in ("OMPI_COMM_WORLD_RANK", "PMI_RANK",
                         "PMIX_RANK", "SLURM_PROCID"):
            monkeypatch.delenv(variable, raising=False)
        assert env_rank() is None
        monkeypatch.setenv("PMI_RANK", "3")
        assert env_rank() == 3
        # First parseable variable wins; junk is skipped.
        monkeypatch.setenv("OMPI_COMM_WORLD_RANK", "not-a-rank")
        assert env_rank() == 3
        monkeypatch.setenv("OMPI_COMM_WORLD_RANK", "1")
        assert env_rank() == 1
