"""Seeded fault: classic AB-BA lock inversion between two threads.

Thread 0 takes lock A then wants B; thread 1 takes B then wants A.
Run it under the doctor and the watchdog names both threads, both
locks, and the user source lines of the two blocked ``omp_set_lock``
calls::

    python -m repro.doctor run examples/faults/lock_inversion.py \
        --watchdog 0.5

Expected doctor verdict: **deadlock** (wait-for cycle
thread 0 -> lock B -> thread 1 -> lock A -> thread 0), exit code 86.
"""

import time

from repro import (omp, omp_get_thread_num, omp_init_lock, omp_set_lock,
                   omp_unset_lock)


@omp
def inversion():
    lock_a = omp_init_lock()
    lock_b = omp_init_lock()
    with omp("parallel num_threads(2)"):
        if omp_get_thread_num() == 0:
            omp_set_lock(lock_a)
            time.sleep(0.2)  # let the peer take the other lock first
            omp_set_lock(lock_b)  # deadlocks here
            omp_unset_lock(lock_b)
            omp_unset_lock(lock_a)
        else:
            omp_set_lock(lock_b)
            time.sleep(0.2)
            omp_set_lock(lock_a)  # deadlocks here
            omp_unset_lock(lock_a)
            omp_unset_lock(lock_b)


if __name__ == "__main__":
    print("acquiring locks in opposite order on two threads...",
          flush=True)
    inversion()
    print("unreachable: the region above deadlocks")
