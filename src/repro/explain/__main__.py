"""Entry point for ``python -m repro.explain``."""

import sys

from repro.explain.cli import main

if __name__ == "__main__":
    sys.exit(main())
