"""Tests of the paper-shape checker.

The envelope claims are static and asserted to pass outright; one
timing claim runs end-to-end at the default profile (the documented
measurement floor for the shape bands); the rest of the timing claims
are exercised at the test profile only for plumbing (their verdicts are
profile-dependent by design and archived in results/shapecheck.txt).
"""

import pytest

from repro.analysis import shapecheck


class TestEnvelopeClaims:
    def test_all_envelope_claims_pass(self):
        results = shapecheck.check_envelope_shapes()
        assert len(results) == 4
        for result in results:
            assert result.passed, result.detail

    def test_claim_lines_render(self):
        result = shapecheck.ClaimResult("demo", True, "details here")
        assert result.line().startswith("[PASS] demo")
        failed = shapecheck.ClaimResult("demo", False, "nope")
        assert failed.line().startswith("[FAIL]")


class TestTimingClaimPlumbing:
    def test_numerical_checks_produce_all_claims(self):
        results = shapecheck.check_numerical_shapes(
            "test", threads=(1, 2), repeats=1, apps=("pi",))
        claims = [result.claim for result in results]
        assert any("CompiledDT clearly outruns" in c for c in claims)
        assert any("Hybrid in the interpreted tier" in c for c in claims)
        assert any("scales with threads" in c for c in claims)
        assert any("PyOMP in CompiledDT's tier" in c for c in claims)

    def test_pi_shape_holds_at_default_profile(self):
        # Timing claims under a loaded suite can need a second attempt;
        # a persistent failure still fails the test.
        for attempt in range(2):
            results = shapecheck.check_numerical_shapes(
                "default", threads=(1, 4), repeats=2, apps=("pi",))
            if all(result.passed for result in results):
                return
        for result in results:
            assert result.passed, result.line()

    def test_nonnumerical_check_returns_one_claim(self):
        results = shapecheck.check_nonnumerical_shape("test", repeats=1)
        assert len(results) == 1
        assert "wordcount" in results[0].claim


class TestCliIntegration:
    def test_check_command_exits_nonzero_on_failure(self, monkeypatch,
                                                    capsys):
        from repro.analysis import report

        def fake_run_all(profile, repeats):
            return [shapecheck.ClaimResult("a", True, "ok"),
                    shapecheck.ClaimResult("b", False, "bad")]

        monkeypatch.setattr(shapecheck, "run_all", fake_run_all)
        with pytest.raises(SystemExit):
            report.main(["check", "--profile", "test"])
        out = capsys.readouterr().out
        assert "1/2 shape claims hold" in out

    def test_check_command_passes(self, monkeypatch, capsys):
        from repro.analysis import report

        monkeypatch.setattr(
            shapecheck, "run_all",
            lambda profile, repeats: [
                shapecheck.ClaimResult("a", True, "ok")])
        report.main(["check"])
        assert "1/1 shape claims hold" in capsys.readouterr().out
