"""The native runtime simulation (the paper's Cython ``cruntime``).

Per the paper's architecture, the cruntime re-implements only the
low-level modules — counters, events, task-queue linking, shared-slot
creation — on top of atomic operations, and reuses every logic module
from the pure runtime unchanged.  Here that reuse is literal: the same
:class:`repro.runtime.OmpRuntime` engine runs with the atomics-based
primitives from :mod:`repro.cruntime.lowlevel`.

The two runtimes keep fully separate per-thread contexts; code bound to
one must not synchronize with code bound to the other (Section III-B).
"""

from repro.cruntime.lowlevel import NativeLowLevel
from repro.runtime.engine import OmpRuntime

#: Singleton native-simulation runtime, bound as ``__omp__`` in
#: *Hybrid*, *Compiled*, and *CompiledDT* modes.
cruntime = OmpRuntime(NativeLowLevel())

__all__ = ["NativeLowLevel", "cruntime"]
