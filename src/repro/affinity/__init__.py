"""Thread-affinity subsystem: ``OMP_PLACES`` parsing and proc binding.

Split in two: :mod:`repro.affinity.places` turns an ``OMP_PLACES``
string into an ordered tuple of CPU sets, and
:mod:`repro.affinity.binder` applies ``OMP_PROC_BIND`` policies over
that list to the calling thread.  ``binder_from_env`` is the one entry
point the runtime engine uses at construction.
"""

from __future__ import annotations

from repro import env
from repro.affinity.binder import (HAVE_SCHED_AFFINITY, Binder,
                                   place_for_member)
from repro.affinity.places import (available_cpus, format_places,
                                   parse_places)

__all__ = ["HAVE_SCHED_AFFINITY", "Binder", "available_cpus",
           "binder_from_env", "format_places", "parse_places",
           "place_for_member"]


def binder_from_env() -> Binder:
    """Build the runtime's binder from ``OMP_PLACES``/``OMP_PROC_BIND``."""
    spec = env.places_spec()
    places = parse_places(spec) if spec is not None else ()
    return Binder(places, env.default_proc_bind())
