"""Tests of the diagnostics subsystem: blocking records, the wait-for
graph, the flight recorder, the stall watchdog, and the env knobs.

The watchdog classes run with deliberately aggressive intervals: the
false-positive suite asserts that slow-but-live workloads never earn a
*deadlock* verdict (a *stall* note is acceptable), and the detection
test asserts a seeded AB-BA inversion is diagnosed within twice the
configured interval with the right cycle participants.
"""

import io
import threading
import time

import pytest

from repro import env
from repro.cruntime import cruntime
from repro.diagnostics.envreport import format_display_env, icv_snapshot
from repro.diagnostics.flight import FlightRecorder
from repro.diagnostics.origin import format_location, register_origin, resolve
from repro.diagnostics.state import BlockRecord, DiagnosticsState, TeamInfo
from repro.diagnostics.waitgraph import build_wait_graph
from repro.diagnostics.watchdog import (DEADLOCK_EXIT_CODE, Watchdog,
                                        build_report, format_report)
from repro.errors import OmpError
from repro.runtime import pure_runtime


@pytest.fixture(params=["pure", "cruntime"])
def rt(request):
    return pure_runtime if request.param == "pure" else cruntime


@pytest.fixture
def diag(rt):
    """Arm diagnostics state on the (singleton) runtime, disarm after."""
    prior = rt.diag
    rt.diag = DiagnosticsState()
    yield rt.diag
    rt.diag = prior


def _wait_until(predicate, timeout=8.0, step=0.02):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return predicate()


# -- blocking records -------------------------------------------------------


class TestBlockingRecords:
    def test_tables_empty_after_clean_region(self, rt, diag):
        total = []

        def region():
            rt.critical_enter("zone")
            total.append(rt.get_thread_num())
            rt.critical_exit("zone")
            rt.barrier()

        rt.parallel_run(region, num_threads=3)
        assert sorted(total) == [0, 1, 2]
        assert not any(diag.blocked.values())
        assert not diag.owners
        assert not diag.teams
        assert not diag.task_running
        assert not diag.task_waiting
        assert diag.progress > 0

    def test_contended_lock_records_wait_and_ownership(self, rt, diag):
        lock = rt.init_lock()
        rt.set_lock(lock)
        holder = threading.get_ident()
        assert diag.owners[id(lock)] == holder

        entered = threading.Event()
        waiter_ident = []

        def blocked_acquire():
            waiter_ident.append(threading.get_ident())
            entered.set()
            rt.set_lock(lock)
            rt.unset_lock(lock)

        waiter = threading.Thread(target=blocked_acquire, daemon=True)
        waiter.start()
        entered.wait(5.0)
        assert _wait_until(
            lambda: any(r.kind == "lock" and r.sleeping
                        for r in diag.blocked.get(waiter_ident[0], [])))
        record = diag.blocked[waiter_ident[0]][-1]
        assert record.resource == id(lock)

        rt.unset_lock(lock)
        waiter.join(5.0)
        assert not waiter.is_alive()
        assert not any(diag.blocked.values())
        assert id(lock) not in diag.owners
        rt.destroy_lock(lock)

    def test_progress_counter_moves_with_work(self, rt, diag):
        before = diag.progress
        rt.parallel_run(lambda: rt.barrier(), num_threads=2)
        assert diag.progress > before


# -- wait-for graph (synthetic snapshots) -----------------------------------


def _sleeping(ident, kind, resource, thread_num=0, team_id=None):
    record = BlockRecord(ident, kind, resource, team_id, thread_num,
                         None, None)
    record.sleeping = True
    return record


class TestWaitGraph:
    def test_abba_cycle_is_deadlock(self):
        state = DiagnosticsState()
        state.blocked[1] = [_sleeping(1, "lock", 100, thread_num=0)]
        state.blocked[2] = [_sleeping(2, "lock", 200, thread_num=1)]
        state.owners[100] = 2
        state.owners[200] = 1
        state.thread_names = {1: "t1", 2: "t2"}
        graph = build_wait_graph(state.snapshot())
        assert graph.verdict() == "deadlock"
        (cycle,) = graph.find_cycles()
        assert ("thread", 1) in cycle and ("thread", 2) in cycle

    def test_non_sleeping_record_draws_no_edge(self):
        state = DiagnosticsState()
        record = _sleeping(1, "lock", 100)
        record.sleeping = False  # busy draining tasks, not parked
        state.blocked[1] = [record]
        state.blocked[2] = [_sleeping(2, "lock", 200, thread_num=1)]
        state.owners[100] = 2
        state.owners[200] = 1
        graph = build_wait_graph(state.snapshot())
        assert graph.verdict() == "stall"

    def test_free_lock_is_not_a_cycle(self):
        state = DiagnosticsState()
        state.blocked[1] = [_sleeping(1, "lock", 100)]
        graph = build_wait_graph(state.snapshot())  # no owner recorded
        assert graph.verdict() == "stall"

    def test_departed_member_makes_barrier_unsatisfiable(self):
        state = DiagnosticsState()
        info = TeamInfo(42, 2)
        info.members = {0: 1, 1: 2}
        info.departed = {1}
        state.teams[42] = info
        state.blocked[1] = [_sleeping(1, "barrier", 999, thread_num=0,
                                      team_id=42)]
        graph = build_wait_graph(state.snapshot())
        assert graph.unsatisfiable
        assert graph.verdict() == "deadlock"

    def test_live_straggler_is_only_a_stall(self):
        state = DiagnosticsState()
        info = TeamInfo(42, 2)
        info.members = {0: 1, 1: 2}
        state.teams[42] = info
        state.blocked[1] = [_sleeping(1, "barrier", 999, thread_num=0,
                                      team_id=42)]
        graph = build_wait_graph(state.snapshot())  # member 1 still alive
        assert not graph.unsatisfiable
        assert graph.verdict() == "stall"

    def test_describe_node_handles_tuple_keys(self):
        state = DiagnosticsState()
        state.blocked[1] = [_sleeping(1, "critical", ("critical", "zone"))]
        state.owners[("critical", "zone")] = 2
        graph = build_wait_graph(state.snapshot())
        text = " ".join(graph.describe_node(node) for node in graph.edges)
        assert "zone" in text


# -- watchdog: false positives ---------------------------------------------


class TestWatchdogFalsePositives:
    def _deadlock_verdicts(self, reports):
        return [r for r in reports if r["verdict"] == "deadlock"]

    def _run_region(self, rt, region, num_threads, interval):
        reports = []
        watchdog = Watchdog(rt, interval, on_report=reports.append,
                            stream=io.StringIO())
        watchdog.start()
        try:
            rt.parallel_run(region, num_threads=num_threads)
        finally:
            watchdog.stop()
        return reports

    def test_serial_chunk_behind_a_barrier(self, rt, diag):
        """One thread computes for many intervals while its peer sleeps
        at the barrier: a stall at worst, never a deadlock."""

        def region():
            if rt.get_thread_num() == 0:
                time.sleep(1.0)  # "compute": no progress, no block
            rt.barrier()

        reports = self._run_region(rt, region, 2, interval=0.2)
        assert self._deadlock_verdicts(reports) == []

    def test_long_running_tasks_under_taskwait(self, rt, diag):
        def region():
            if rt.get_thread_num() == 0:
                for _ in range(2):
                    rt.task_submit(lambda: time.sleep(0.5))
                rt.task_wait()
            rt.barrier()

        reports = self._run_region(rt, region, 2, interval=0.15)
        assert self._deadlock_verdicts(reports) == []

    def test_single_thread_team(self, rt, diag):
        reports = self._run_region(rt, lambda: time.sleep(0.5), 1,
                                   interval=0.1)
        assert self._deadlock_verdicts(reports) == []

    def test_slow_ordered_pipeline(self, rt, diag):
        done = []

        def region():
            rt.barrier()
            time.sleep(0.05 * rt.get_thread_num())
            done.append(rt.get_thread_num())
            rt.barrier()

        reports = self._run_region(rt, region, 3, interval=0.1)
        assert sorted(done) == [0, 1, 2]
        assert self._deadlock_verdicts(reports) == []

    def test_parked_pool_workers_are_invisible_between_regions(
            self, rt, diag):
        """A parked hot-team worker holds no blocking record: after a
        region joins, the wait-for graph over live diagnostics state
        must be empty even though the pool threads still exist."""
        rt.parallel_run(lambda: None, num_threads=3)
        assert rt.pool().idle_count() >= 2  # workers parked, not gone
        assert not any(diag.blocked.values())
        graph = build_wait_graph(diag.snapshot())
        assert graph.edges == {}
        assert graph.find_cycles() == []
        assert graph.unsatisfiable == []

    def test_parked_workers_do_not_trigger_stall_reports(self, rt, diag):
        """Many intervals of main-thread-only work with workers parked
        in the pool: the watchdog must stay silent — parked workers are
        idle, not stalled."""
        rt.parallel_run(lambda: None, num_threads=3)
        reports = []
        watchdog = Watchdog(rt, 0.1, on_report=reports.append,
                            stream=io.StringIO())
        watchdog.start()
        try:
            time.sleep(0.6)  # several poll intervals, pool parked
        finally:
            watchdog.stop()
        assert reports == []

    def test_pool_reuse_between_watched_regions(self, rt, diag):
        """Back-to-back regions served by reused pool workers under an
        aggressive watchdog: no deadlock verdicts, and the reports (if
        any stall fired) never name a parked worker."""
        def region():
            rt.barrier()

        reports = []
        watchdog = Watchdog(rt, 0.1, on_report=reports.append,
                            stream=io.StringIO())
        watchdog.start()
        try:
            for _ in range(10):
                rt.parallel_run(region, num_threads=3)
                time.sleep(0.05)
        finally:
            watchdog.stop()
        assert self._deadlock_verdicts(reports) == []


# -- watchdog: seeded deadlock ---------------------------------------------


class TestWatchdogDetection:
    def test_abba_diagnosed_within_two_intervals(self, rt, diag):
        interval = 0.5
        reports = []
        lock_a = rt.init_lock()
        lock_b = rt.init_lock()
        both_holding = threading.Barrier(3)

        def invert(first, second):
            rt.set_lock(first)
            both_holding.wait()
            rt.set_lock(second)  # never returns: daemon thread

        for args in ((lock_a, lock_b), (lock_b, lock_a)):
            threading.Thread(target=invert, args=args, daemon=True).start()

        watchdog = Watchdog(rt, interval, on_report=reports.append,
                            stream=io.StringIO())
        both_holding.wait()
        begin = time.perf_counter()
        watchdog.start()
        try:
            assert _wait_until(lambda: any(
                r["verdict"] == "deadlock" for r in reports),
                timeout=4 * interval)
        finally:
            watchdog.stop()
        elapsed = time.perf_counter() - begin
        assert elapsed <= 2 * interval, \
            f"watchdog took {elapsed:.3f}s (> 2x {interval}s interval)"

        report = next(r for r in reports if r["verdict"] == "deadlock")
        (cycle,) = report["cycles"]
        kinds = {step["node"] for step in cycle}
        assert kinds == {"thread", "lock"}
        thread_ids = {step["id"] for step in cycle
                      if step["node"] == "thread"}
        assert len(thread_ids) == 2
        lock_ids = {step["id"] for step in cycle if step["node"] == "lock"}
        assert lock_ids == {id(lock_a), id(lock_b)}
        # The report doubles as the stderr rendering's source of truth.
        text = format_report(report)
        assert "DEADLOCK" in text and "lock" in text
        assert isinstance(DEADLOCK_EXIT_CODE, int)

    def test_deadlock_reported_once(self, rt, diag):
        interval = 0.2
        reports = []
        lock = rt.init_lock()
        rt.set_lock(lock)
        entered = threading.Event()

        def self_deadlock():
            entered.set()
            rt.set_lock(lock)  # held by the main thread forever

        threading.Thread(target=self_deadlock, daemon=True).start()
        entered.wait(5.0)
        # A single thread re-waiting on a lock we hold has no cycle
        # (the owner is live and unblocked), so force one: the holder
        # also "blocks" on a resource the waiter owns.
        watchdog = Watchdog(rt, interval, on_report=reports.append,
                            stream=io.StringIO())
        watchdog.start()
        try:
            time.sleep(interval * 6)
        finally:
            watchdog.stop()
        deadlocks = [r for r in reports if r["verdict"] == "deadlock"]
        stalls = [r for r in reports if r["verdict"] == "stall"]
        assert len(deadlocks) == 0  # live holder: stall territory
        assert len(stalls) <= 1  # one report per stall episode
        rt.unset_lock(lock)


# -- flight recorder --------------------------------------------------------


class TestFlightRecorder:
    def test_ring_wraps_to_capacity(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.task_create(0, index)
        events = recorder.dump()[threading.get_ident()]["events"]
        assert len(events) == 4
        assert [event["detail"][1] for event in events] == [6, 7, 8, 9]

    def test_dump_tail_and_clear(self):
        recorder = FlightRecorder(capacity=8)
        for index in range(6):
            recorder.task_create(0, index)
        events = recorder.dump(tail=2)[threading.get_ident()]["events"]
        assert [event["detail"][1] for event in events] == [4, 5]
        assert "task_create" in recorder.format_text()
        recorder.clear()
        assert recorder.dump() == {}

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_records_region_events_from_runtime(self, rt):
        recorder = FlightRecorder(capacity=32)
        rt.attach_tool(recorder)
        try:
            rt.parallel_run(lambda: rt.barrier(), num_threads=2)
        finally:
            rt.detach_tool(recorder)
        kinds = {event["kind"] for ring in recorder.dump().values()
                 for event in ring["events"]}
        assert "parallel_begin" in kinds
        assert "parallel_end" in kinds


# -- env knobs --------------------------------------------------------------


class TestEnvKnobs:
    def test_flight_default_off(self, monkeypatch):
        monkeypatch.delenv("OMP4PY_FLIGHT", raising=False)
        assert env.flight_spec() is None

    def test_flight_forms(self, monkeypatch):
        monkeypatch.setenv("OMP4PY_FLIGHT", "true")
        assert env.flight_spec().capacity == 256
        monkeypatch.setenv("OMP4PY_FLIGHT", "512")
        assert env.flight_spec().capacity == 512
        monkeypatch.setenv("OMP4PY_FLIGHT", "64:/tmp/flight.json")
        spec = env.flight_spec()
        assert (spec.capacity, spec.path) == (64, "/tmp/flight.json")
        monkeypatch.setenv("OMP4PY_FLIGHT", "flight.json")
        assert env.flight_spec().path == "flight.json"
        monkeypatch.setenv("OMP4PY_FLIGHT", "off")
        assert env.flight_spec() is None
        monkeypatch.setenv("OMP4PY_FLIGHT", "-3")
        with pytest.raises(OmpError):
            env.flight_spec()

    def test_watchdog_forms(self, monkeypatch):
        monkeypatch.delenv("OMP4PY_WATCHDOG", raising=False)
        monkeypatch.delenv("OMP4PY_WATCHDOG_EXIT", raising=False)
        assert env.watchdog_spec() is None
        monkeypatch.setenv("OMP4PY_WATCHDOG", "true")
        assert env.watchdog_spec().interval == 5.0
        monkeypatch.setenv("OMP4PY_WATCHDOG", "0.5:hang.json")
        spec = env.watchdog_spec()
        assert (spec.interval, spec.path) == (0.5, "hang.json")
        assert spec.exit_on_deadlock is False
        monkeypatch.setenv("OMP4PY_WATCHDOG_EXIT", "1")
        assert env.watchdog_spec().exit_on_deadlock is True
        monkeypatch.setenv("OMP4PY_WATCHDOG", "-1")
        with pytest.raises(OmpError):
            env.watchdog_spec()
        monkeypatch.setenv("OMP4PY_WATCHDOG", "soon")
        with pytest.raises(OmpError):
            env.watchdog_spec()


# -- display-env routing ----------------------------------------------------


class TestDisplayEnvRouting:
    def test_display_env_uses_diagnostics_snapshot(self, rt, capsys):
        rt.display_env(verbose=True)
        err = capsys.readouterr().err
        snapshot = icv_snapshot(rt, verbose=True)
        for name, value in snapshot.items():
            if name.startswith("_"):
                continue
            assert f"{name} = '{value}'" in err
        assert format_display_env(snapshot, runtime_name=rt.name) \
            .splitlines()[0] in err

    def test_report_embeds_same_snapshot(self, rt, diag):
        graph = build_wait_graph(diag.snapshot())
        report = build_report(rt, diag.snapshot(), graph, interval=1.0)
        expected = icv_snapshot(rt, verbose=True)
        # Thread-count ICVs can shift between the two snapshots only if
        # another test leaked state; the stable subset must match.
        for key in ("_OPENMP", "OMP_SCHEDULE", "OMP_DYNAMIC"):
            assert report["icvs"][key] == expected[key]
        assert report["schema"] == "omp4py-doctor-report/1"


# -- origin mapping ---------------------------------------------------------


class TestOriginMapping:
    def test_resolve_maps_generated_to_source(self):
        register_origin("<omp4py:test-origin>", "/src/app.py", 10)
        # Generated line 5 is the 5th line of source starting at 10.
        assert resolve("<omp4py:test-origin>", 5) == ("/src/app.py", 14)
        assert resolve("plain.py", 7) == ("plain.py", 7)

    def test_format_location_is_compact(self):
        assert format_location("/src/app.py", 12).endswith("app.py:12")

    def test_decorated_function_records_origin(self, omp_compile):
        source = """
def tagged(n):
    total = 0
    with omp("parallel num_threads(1)"):
        total = n
    return total
"""
        fn = omp_compile(source, "tagged")
        assert fn(3) == 3
        origin = getattr(fn, "__omp_origin__", None)
        assert origin is not None
        assert origin[0].endswith(".py")
