"""``python -m repro.doctor`` — hang diagnosis from the command line.

Three subcommands (see docs/observability.md, "Diagnosing hangs"):

* ``run SCRIPT [ARGS...]`` — execute a user script with the flight
  recorder and stall watchdog armed on both runtimes.  A *deadlock*
  verdict prints the wait-for-graph report and terminates the process
  with exit code :data:`~repro.diagnostics.watchdog.DEADLOCK_EXIT_CODE`
  (86), so CI can wrap hanging reproducers in a plain timeout; pass
  ``--no-exit`` to keep the process alive instead.  A SIGUSR1 handler
  is installed, so ``doctor dump PID`` works on the live process.
* ``env`` — print the runtime ICVs (the same snapshot
  ``omp_display_env`` and the watchdog reports use), optionally as
  JSON.
* ``dump PID`` — ask an armed process to print its flight-recorder
  tails and current wait-for diagnosis to stderr (sends SIGUSR1).
* ``serve [URL]`` — fetch a serving layer's ``/state`` endpoint
  (:mod:`repro.serve`) and pretty-print the fleet: per-worker backend
  and hot-team pool, queue depth, tenant budgets, and — because every
  worker runs with the watchdog armed — the structured doctor report
  of any worker that was killed over a hung kernel.
"""

from __future__ import annotations

import argparse
import json
import os
import runpy
import signal
import sys

from repro.diagnostics.watchdog import DEADLOCK_EXIT_CODE, DEFAULT_INTERVAL


def _runtimes(choice: str) -> list:
    runtimes = []
    if choice in ("pure", "both"):
        from repro.runtime import pure_runtime
        runtimes.append(pure_runtime)
    if choice in ("cruntime", "both"):
        from repro.cruntime import cruntime
        runtimes.append(cruntime)
    return runtimes


def _cmd_run(args) -> int:
    from repro.diagnostics.auto import arm, install_signal_dump
    watchdogs = []
    for runtime in _runtimes(args.runtime):
        _recorder, watchdog = arm(
            runtime,
            flight_capacity=args.flight,
            watchdog_interval=args.watchdog,
            report_path=args.report,
            exit_on_deadlock=not args.no_exit,
            flight=args.flight != 0)
        watchdogs.append(watchdog)
    install_signal_dump()
    # The script sees itself as __main__ with its own argv, like
    # ``python SCRIPT ARGS...``.
    sys.argv = [args.script] + args.script_args
    script_dir = os.path.dirname(os.path.abspath(args.script))
    if script_dir not in sys.path:
        sys.path.insert(0, script_dir)
    try:
        runpy.run_path(args.script, run_name="__main__")
    finally:
        for watchdog in watchdogs:
            if watchdog is not None:
                watchdog.stop()
    deadlocked = any(
        watchdog is not None and any(
            report["verdict"] == "deadlock" for report in watchdog.reports)
        for watchdog in watchdogs)
    return DEADLOCK_EXIT_CODE if deadlocked else 0


def _cmd_env(args) -> int:
    from repro.diagnostics.envreport import format_display_env, icv_snapshot
    for runtime in _runtimes(args.runtime):
        snapshot = icv_snapshot(runtime, verbose=args.verbose)
        if args.json:
            print(json.dumps({"runtime": runtime.name, "icvs": snapshot},
                             indent=2))
        else:
            print(format_display_env(snapshot, runtime_name=runtime.name))
    return 0


def _cmd_dump(args) -> int:
    if not hasattr(signal, "SIGUSR1"):  # pragma: no cover - windows
        print("doctor dump needs SIGUSR1 (POSIX only)", file=sys.stderr)
        return 2
    try:
        os.kill(args.pid, signal.SIGUSR1)
    except (ProcessLookupError, PermissionError) as error:
        print(f"cannot signal pid {args.pid}: {error}", file=sys.stderr)
        return 1
    print(f"sent SIGUSR1 to {args.pid}; the dump appears on *its* stderr")
    return 0


def _format_serve_state(state: dict) -> str:
    lines = []
    queue = state.get("queue", {})
    stats = state.get("stats", {})
    lines.append(f"serving state ({state.get('schema')})")
    lines.append(
        f"  queue: {queue.get('depth')}/{queue.get('capacity')} waiting, "
        f"mean service {queue.get('mean_service_s')}s")
    lines.append(
        f"  stats: accepted={stats.get('accepted')} "
        f"completed={stats.get('completed')} failed={stats.get('failed')} "
        f"shed={stats.get('shed')} retries={stats.get('retries')} "
        f"p99={stats.get('p99_s')}s")
    shm = state.get("shm", {})
    lines.append(f"  shm: {shm.get('segments')} segments, "
                 f"{shm.get('bytes')} bytes")
    lines.append("  tenants:")
    for tenant in state.get("tenants", []):
        lines.append(
            f"    {tenant['name']}: budget={tenant['max_threads']} "
            f"inflight={tenant['inflight_threads']} "
            f"throttles={tenant['throttles']} "
            f"places={tenant['places'] or '(unbound)'}")
    lines.append(f"  workers (restarts_total="
                 f"{state.get('restarts_total')}):")
    for worker in state.get("workers", []):
        pool = worker.get("pool") or {}
        job = worker.get("job")
        busy = (f" running {job['app']} x{job['batch']} "
                f"for {job['running_s']}s" if job else "")
        lines.append(
            f"    #{worker['id']} pid={worker['pid']} "
            f"{worker['state']}{busy} backend={worker.get('backend')} "
            f"pool[workers={pool.get('workers')} "
            f"idle={pool.get('idle')} reused={pool.get('reused')}] "
            f"restarts={worker['restarts']} "
            f"last_app={worker.get('last_app')}")
        report = worker.get("last_report")
        if report:
            lines.append(
                f"      last doctor report: verdict="
                f"{report.get('verdict')} "
                f"({len(report.get('blocked', []))} blocked threads)")
            for cycle in report.get("cycles", [])[:1]:
                for step in cycle:
                    describe = step.get("describe", "")
                    lines.append(f"        {describe}")
    return "\n".join(lines)


def _cmd_serve(args) -> int:
    import urllib.error
    import urllib.request
    url = args.url.rstrip("/")
    if "://" not in url:
        url = "http://" + url
    try:
        with urllib.request.urlopen(url + "/state",
                                    timeout=args.timeout) as handle:
            state = json.loads(handle.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as error:
        print(f"cannot fetch {url}/state: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(state, indent=2))
    else:
        print(_format_serve_state(state))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.doctor",
        description="Diagnose hangs in omp4py programs: flight recorder, "
                    "stall watchdog, wait-for-graph deadlock detection.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a script under the watchdog")
    run.add_argument("script", help="path to the Python script to run")
    run.add_argument("script_args", nargs=argparse.REMAINDER,
                     help="arguments passed to the script")
    run.add_argument("--watchdog", type=float, default=DEFAULT_INTERVAL,
                     metavar="SECONDS",
                     help="stall interval before a diagnosis fires "
                          f"(default {DEFAULT_INTERVAL})")
    run.add_argument("--flight", type=int, default=None, metavar="N",
                     help="flight recorder ring capacity per thread "
                          "(0 disables the recorder)")
    run.add_argument("--report", default=None, metavar="PATH",
                     help="write the JSON diagnosis report here")
    run.add_argument("--no-exit", action="store_true",
                     help="report deadlocks but do not terminate "
                          f"(default: exit {DEADLOCK_EXIT_CODE})")
    run.add_argument("--runtime", choices=("pure", "cruntime", "both"),
                     default="both", help="which runtime(s) to arm")
    run.set_defaults(func=_cmd_run)

    env_cmd = sub.add_parser("env", help="print the runtime ICVs")
    env_cmd.add_argument("--verbose", action="store_true",
                         help="include OMP4PY_* metadata")
    env_cmd.add_argument("--json", action="store_true",
                         help="emit JSON instead of the display-env block")
    env_cmd.add_argument("--runtime",
                         choices=("pure", "cruntime", "both"),
                         default="cruntime",
                         help="which runtime(s) to report")
    env_cmd.set_defaults(func=_cmd_env)

    dump = sub.add_parser("dump",
                          help="SIGUSR1 an armed process to make it dump")
    dump.add_argument("pid", type=int, help="target process id")
    dump.set_defaults(func=_cmd_dump)

    serve = sub.add_parser(
        "serve", help="inspect a running repro.serve fleet")
    serve.add_argument("url", nargs="?",
                       default="http://127.0.0.1:8571",
                       help="server base URL (default "
                            "http://127.0.0.1:8571)")
    serve.add_argument("--json", action="store_true",
                       help="dump the raw /state payload")
    serve.add_argument("--timeout", type=float, default=5.0,
                       help="HTTP timeout in seconds")
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
