"""Tests specific to the native-runtime simulation's primitives."""

import threading

import pytest

from repro.cruntime.lowlevel import CEvent, NativeLowLevel
from repro.runtime.lowlevel import PureLowLevel


class TestCEvent:
    def test_initially_clear(self):
        assert not CEvent().is_set()

    def test_set_and_wait(self):
        event = CEvent()
        event.set()
        assert event.is_set()
        assert event.wait(timeout=0.01)

    def test_clear(self):
        event = CEvent()
        event.set()
        event.clear()
        assert not event.is_set()
        assert not event.wait(timeout=0.01)

    def test_wait_wakes_on_set(self):
        event = CEvent()
        results = []

        def waiter():
            results.append(event.wait(timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        event.set()
        thread.join(timeout=5.0)
        assert results == [True]

    def test_double_set_is_idempotent(self):
        event = CEvent()
        event.set()
        event.set()
        assert event.is_set()


class TestDequeImplementations:
    """The mutex deque and the Chase-Lev protocol share a contract:
    owner LIFO pop, thief FIFO steal, and no pushed entry is lost."""

    @pytest.mark.parametrize("lowlevel", [PureLowLevel(),
                                          NativeLowLevel()],
                             ids=["mutex", "cas"])
    def test_owner_pop_is_lifo(self, lowlevel):
        deque_ = lowlevel.make_deque()
        for value in range(10):
            deque_.push(value)
        assert [deque_.pop() for _ in range(10)] == list(range(9, -1, -1))
        assert deque_.pop() is None
        assert not deque_

    @pytest.mark.parametrize("lowlevel", [PureLowLevel(),
                                          NativeLowLevel()],
                             ids=["mutex", "cas"])
    def test_steal_is_fifo(self, lowlevel):
        deque_ = lowlevel.make_deque()
        for value in range(10):
            deque_.push(value)
        assert [deque_.steal() for _ in range(10)] == list(range(10))
        assert deque_.steal() is None

    @pytest.mark.parametrize("lowlevel", [PureLowLevel(),
                                          NativeLowLevel()],
                             ids=["mutex", "cas"])
    def test_interleaved_push_pop_steal(self, lowlevel):
        deque_ = lowlevel.make_deque()
        deque_.push("a")
        deque_.push("b")
        assert deque_.steal() == "a"
        deque_.push("c")
        assert deque_.pop() == "c"
        assert deque_.pop() == "b"
        assert deque_.pop() is None
        deque_.push("d")  # reusable after emptiness
        assert deque_.steal() == "d"

    @pytest.mark.parametrize("lowlevel", [PureLowLevel(),
                                          NativeLowLevel()],
                             ids=["mutex", "cas"])
    def test_concurrent_owner_and_thieves_lose_nothing(self, lowlevel):
        """One owner pushing and popping, several thieves stealing: every
        value comes out somewhere.  The Chase-Lev protocol may hand the
        same value to the owner and a thief near the top==bottom
        boundary (the task claim() CAS gates execution), so the hard
        contract is no *loss*; the mutex deque is exactly-once."""
        deque_ = lowlevel.make_deque()
        total = 3000
        taken = []
        taken_lock = threading.Lock()
        stop = threading.Event()

        def owner():
            got = []
            for value in range(total):
                deque_.push(value)
                if value % 3 == 0:
                    popped = deque_.pop()
                    if popped is not None:
                        got.append(popped)
            while True:
                popped = deque_.pop()
                if popped is None:
                    break
                got.append(popped)
            with taken_lock:
                taken.extend(got)
            stop.set()

        def thief():
            got = []
            while not stop.is_set():
                stolen = deque_.steal()
                if stolen is not None:
                    got.append(stolen)
            while True:  # drain whatever the owner left behind
                stolen = deque_.steal()
                if stolen is None:
                    break
                got.append(stolen)
            with taken_lock:
                taken.extend(got)

        workers = [threading.Thread(target=owner)]
        workers += [threading.Thread(target=thief) for _ in range(3)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert set(taken) == set(range(total))
        if isinstance(lowlevel, PureLowLevel):
            assert len(taken) == total


class TestSlotCreation:
    @pytest.mark.parametrize("lowlevel", [PureLowLevel(),
                                          NativeLowLevel()],
                             ids=["mutex", "swap"])
    def test_single_winner_under_contention(self, lowlevel):
        table: dict = {}
        lock = lowlevel.make_mutex()
        created = []
        results = []
        results_lock = threading.Lock()

        def factory():
            slot = object()
            created.append(slot)
            return slot

        def contender():
            slot = lowlevel.slot_get_or_create(table, lock, "key",
                                               factory)
            with results_lock:
                results.append(slot)

        workers = [threading.Thread(target=contender) for _ in range(12)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(slot is results[0] for slot in results)
        assert table["key"] is results[0]
