"""In-place LU decomposition without pivoting (the paper's *lu*).

Paper configuration: 2000×2000 matrix; constructs: ``parallel``,
multiple ``for`` loops, ``single`` (Table I).  Diagonal dominance makes
the no-pivoting factorization stable; verification reconstructs
L·U ≈ A.
"""

from __future__ import annotations

import random

import numpy as np

from repro.apps.base import AppSpec
from repro.api import omp


def make_matrix(n: int, seed: int = 4321):
    rng = random.Random(seed)
    a = [[rng.uniform(-1.0, 1.0) for _ in range(n)] for _ in range(n)]
    for i in range(n):
        a[i][i] = sum(abs(v) for v in a[i]) + 1.0
    return a


def make_input(n: int, seed: int = 4321) -> dict:
    return {"a": make_matrix(n, seed), "n": n}


def make_input_dt(n: int, seed: int = 4321) -> dict:
    return {"a": np.array(make_matrix(n, seed)), "n": n}


def sequential(a, n):
    for k in range(n - 1):
        pivot = a[k][k]
        for i in range(k + 1, n):
            a[i][k] = a[i][k] / pivot
        for i in range(k + 1, n):
            factor = a[i][k]
            row_i = a[i]
            row_k = a[k]
            for j in range(k + 1, n):
                row_i[j] -= factor * row_k[j]
    return a


def kernel(a, n, threads):
    inv_pivot = 0.0
    with omp("parallel num_threads(threads)"):
        for k in range(n - 1):
            with omp("single"):
                inv_pivot = 1.0 / a[k][k]
            with omp("for"):
                for i in range(k + 1, n):
                    a[i][k] = a[i][k] * inv_pivot
            with omp("for"):
                for i in range(k + 1, n):
                    factor = a[i][k]
                    for j in range(k + 1, n):
                        a[i][j] -= factor * a[k][j]
    return a


def kernel_dt(a, n, threads):
    inv_pivot: float = 0.0
    with omp("parallel num_threads(threads)"):
        for k in range(n - 1):
            with omp("single"):
                inv_pivot = 1.0 / a[k][k]
            with omp("for"):
                for i in range(k + 1, n):
                    # 2-D indexing so the multiplier column vectorizes.
                    a[i, k] = a[i, k] * inv_pivot
            with omp("for"):
                for i in range(k + 1, n):
                    factor: float = a[i][k]
                    for j in range(k + 1, n):
                        a[i][j] -= factor * a[k][j]
    return a


def pyomp_kernel(a, n, threads):
    inv_pivot: float = 0.0
    with openmp("parallel num_threads(threads)"):  # noqa: F821
        for k in range(n - 1):
            with openmp("single"):  # noqa: F821
                inv_pivot = 1.0 / a[k][k]
            with openmp("for"):  # noqa: F821
                for i in range(k + 1, n):
                    a[i][k] = a[i][k] * inv_pivot
            with openmp("for"):  # noqa: F821
                for i in range(k + 1, n):
                    factor: float = a[i][k]
                    for j in range(k + 1, n):
                        a[i][j] -= factor * a[k][j]
    return a


def verify(result, reference) -> bool:
    factored = np.array(result, dtype=float)
    expected = np.array(reference, dtype=float)
    if not np.allclose(factored, expected, atol=1e-8):
        return False
    # Independent check: the factors reconstruct the original matrix.
    n = factored.shape[0]
    lower = np.tril(factored, -1) + np.eye(n)
    upper = np.triu(factored)
    original = np.array(make_matrix(n), dtype=float)
    return bool(np.allclose(lower @ upper, original, atol=1e-6))


SPEC = AppSpec(
    name="lu",
    title="LU decomposition",
    make_input=make_input,
    make_input_dt=make_input_dt,
    sequential=sequential,
    kernel=kernel,
    kernel_dt=kernel_dt,
    pyomp=pyomp_kernel,
    verify=verify,
    sizes={
        "test": {"n": 32},
        "default": {"n": 256},
        "paper": {"n": 2000},
    },
    table1=("parallel, multiple for loops, single", "Implicit barriers"),
)
