"""Environment-driven arming of the sampling profiler
(``OMP4PY_PROFILE`` / ``OMP4PY_PROFILE_HZ``).

Like :mod:`repro.ompt.auto` and :mod:`repro.diagnostics.auto`, invoked
by the ``@omp`` decorator when it binds a runtime; an unset knob costs
one environment read.  ``OMP4PY_PROFILE`` accepts a true/false string
(collect in memory, readable via ``runtime.sampler`` and the live
``/profile`` route) or an output path: at interpreter exit the folded
stacks are written there (speedscope JSON when the path ends in
``.json``, collapsed text otherwise).  ``OMP4PY_PROFILE_HZ`` sets the
sampling rate (default 200 Hz, i.e. one sample per 5 ms).

When ``OMP4PY_METRICS``/``OMP4PY_METRICS_PORT`` armed a metrics
registry for the same runtime, the sampler feeds it the
``omp_sample_*`` series.
"""

from __future__ import annotations

import atexit
import sys

from repro import env

#: id(runtime) -> (runtime, Sampler) for every runtime this module
#: armed (identity-keyed like the other auto modules).
_active: dict[int, tuple] = {}


def auto_sample(runtime) -> None:
    """Honour ``OMP4PY_PROFILE`` for ``runtime`` (no-op when off)."""
    spec = env.profile_spec()
    if spec is None:
        return
    if id(runtime) in _active:
        return
    registry = None
    from repro.ompt.auto import active_tool
    tool = active_tool(runtime)
    if tool is not None:
        registry = tool.registry
    from repro.sampling.sampler import Sampler
    sampler = Sampler(runtime, interval=1.0 / env.profile_hz(),
                      registry=registry)
    sampler.start()
    if spec != "1":
        atexit.register(_write_samples, sampler, spec)
    _active[id(runtime)] = (runtime, sampler)


def active_sampler(runtime):
    """The auto-armed Sampler for ``runtime``, if any."""
    entry = _active.get(id(runtime))
    return entry[1] if entry else None


def deactivate(runtime) -> None:
    """Undo :func:`auto_sample` for one runtime."""
    entry = _active.pop(id(runtime), None)
    if entry is None:
        return
    _runtime, sampler = entry
    sampler.stop()


def _write_samples(sampler, path: str) -> None:
    sampler.stop()
    from repro.sampling.exporters import (write_collapsed,
                                          write_speedscope)
    try:
        if path.endswith(".json"):
            write_speedscope(path, sampler.store,
                             interval=sampler.interval,
                             name=sampler.runtime.name)
        else:
            write_collapsed(path, sampler.store)
    except OSError as error:  # pragma: no cover - exit-time best effort
        print(f"omp4py: cannot write samples to {path}: {error}",
              file=sys.stderr)
