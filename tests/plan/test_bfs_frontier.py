"""Regression tests for the level-synchronous BFS baseline.

The guarded invariant: the visited check, the claim, and the
next-frontier append happen under ONE critical section.  Splitting
them (check under one critical, append under another) is a
check-then-act race — on a diamond graph two parents of the same
vertex both pass the visited check and enqueue it twice, inflating the
count and re-expanding the vertex.
"""

import inspect

import pytest

from repro import transform
from repro.apps import bfs
from repro.modes import Mode


def _open_grid(n):
    """No walls: a grid full of diamonds (two parents per inner cell),
    the adversarial input for the check-then-act race."""
    return [[0] * n for _ in range(n)]


@pytest.fixture(scope="module")
def frontier_kernel():
    return transform(bfs.kernel_frontier, Mode.PURE)


class TestFrontierKernel:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_matches_sequential_on_maze(self, frontier_kernel, threads):
        grid = bfs.make_maze(31)
        expected = bfs.sequential(grid, 31)
        assert frontier_kernel(grid=grid, n=31,
                               threads=threads) == expected

    def test_diamond_graph_has_no_duplicates(self, frontier_kernel):
        """Every inner cell of an open grid is reachable through two
        parents in the same level; a duplicate enqueue double-counts
        it.  Repeat to give the race a chance to fire."""
        n = 13
        grid = _open_grid(n)
        expected = bfs.sequential(grid, n)
        assert expected[1] == n * n
        for _ in range(5):
            reached, count = frontier_kernel(grid=grid, n=n, threads=4)
            assert reached
            assert count == n * n, \
                f"duplicate frontier entries: counted {count}"

    def test_single_cell_grid(self, frontier_kernel):
        assert frontier_kernel(grid=[[0]], n=1, threads=2) == (True, 1)

    def test_claim_and_append_share_one_critical(self):
        """Source-shape regression guard: the claim and the append
        must sit under a single critical — two separate criticals
        reintroduce the check-then-act race this file documents."""
        source = inspect.getsource(bfs.kernel_frontier)
        assert source.count('omp("critical') == 1


class TestPlannedKernelAgainstBaseline:
    @pytest.mark.parametrize("threads", [1, 3, 4])
    def test_planned_matches_sequential(self, threads):
        grid = bfs.make_maze(31)
        expected = bfs.sequential(grid, 31)
        assert bfs.kernel_planned(grid, 31, threads) == expected

    def test_planned_diamond_graph_no_duplicates(self):
        n = 13
        grid = _open_grid(n)
        for _ in range(5):
            reached, count = bfs.kernel_planned(grid, n, 4)
            assert reached
            assert count == n * n

    def test_planned_unreachable_exit(self):
        # A wall seals the exit: reached must be False and the count
        # must cover only the open component.
        n = 9
        grid = _open_grid(n)
        for col in range(n):
            grid[n - 2][col] = 1
        grid[n - 1][0] = 1  # no way around the wall row
        expected = bfs.sequential(grid, n)
        assert expected[0] is False
        assert bfs.kernel_planned(grid, n, 3) == expected
