"""Name-binding analysis over statement lists.

The transformer needs to know, for the body of a structured block, which
names are *assigned* (they become ``nonlocal``/``global`` when shared, or
plain locals when they are new) and which are merely *read*.  The
analysis follows Python scoping: nested ``def``/``class``/``lambda``
bodies are separate scopes and do not contribute bindings, but the
nested function's *name* is itself a binding, and comprehensions own
their targets.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _target_names(target: ast.expr) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    # Attribute / Subscript targets do not bind names.


class _AssignedVisitor(ast.NodeVisitor):
    """Collects names bound in the current scope (no descent into
    nested scopes).

    ``exclude_ids`` skips specific statement subtrees — used to ask
    "which names does this scope bind *outside* a directive block",
    since the block's bindings move into the generated inner function.
    """

    def __init__(self, exclude_ids: frozenset[int] = frozenset()):
        self.names: set[str] = set()
        self.globals: set[str] = set()
        self.nonlocals: set[str] = set()
        self.exclude_ids = exclude_ids

    def visit(self, node: ast.AST):
        if id(node) in self.exclude_ids:
            return None
        return super().visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self.names.update(_target_names(target))
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.names.update(_target_names(node.target))
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.names.update(_target_names(node.target))
        if node.value is not None:
            self.visit(node.value)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self.names.update(_target_names(node.target))
        self.visit(node.value)

    def visit_For(self, node: ast.For) -> None:
        self.names.update(_target_names(node.target))
        self.visit(node.iter)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.names.update(_target_names(item.optional_vars))
        # The bodies of region-creating directives (parallel/task) move
        # into generated inner functions, so their bindings are never
        # bindings of *this* scope.  Worksharing blocks (for/sections/
        # single/...) stay in this scope and are visited normally.
        if _moves_to_inner_function(node):
            return
        for stmt in node.body:
            self.visit(stmt)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name is not None:
            self.names.add(node.name)
        for stmt in node.body:
            self.visit(stmt)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.names.add(alias.asname or alias.name.split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.names.add(alias.asname or alias.name)

    def visit_Global(self, node: ast.Global) -> None:
        self.globals.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.nonlocals.update(node.names)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.names.add(node.name)  # binding; body is a nested scope

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.names.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # nested scope

    def visit_ListComp(self, node) -> None:
        # Comprehension targets live in their own scope; only the first
        # iterable is evaluated in the enclosing scope.
        if node.generators:
            self.visit(node.generators[0].iter)

    visit_SetComp = visit_ListComp
    visit_DictComp = visit_ListComp
    visit_GeneratorExp = visit_ListComp


def assigned_names(stmts: Iterable[ast.stmt],
                   exclude_ids: frozenset[int] = frozenset()) -> set[str]:
    """Names bound by the statements in their own scope."""
    visitor = _AssignedVisitor(exclude_ids)
    for stmt in stmts:
        visitor.visit(stmt)
    return visitor.names - visitor.globals


def declared_globals(stmts: Iterable[ast.stmt]) -> set[str]:
    visitor = _AssignedVisitor()
    for stmt in stmts:
        visitor.visit(stmt)
    return visitor.globals


def _moves_to_inner_function(node: ast.With) -> bool:
    """Is this a ``with omp("parallel ...")`` / ``with omp("task ...")``
    block, whose body the transformer relocates into an inner function?
    """
    if len(node.items) != 1 or node.items[0].optional_vars is not None:
        return False
    call = node.items[0].context_expr
    if not (isinstance(call, ast.Call) and len(call.args) == 1
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)):
        return False
    func = call.func
    name_ok = (isinstance(func, ast.Name)
               and func.id in ("omp", "openmp")) or (
        isinstance(func, ast.Attribute) and func.attr in ("omp", "openmp"))
    if not name_ok:
        return False
    words = call.args[0].value.strip().lower().replace("_", " ").split()
    return bool(words) and words[0] in ("parallel", "task", "taskloop")


class _ReadVisitor(ast.NodeVisitor):
    """Collects every Name read, including inside nested scopes (a
    closure read of an outer variable still 'uses' it)."""

    def __init__(self):
        self.names: set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.names.add(node.id)


def read_names(stmts: Iterable[ast.stmt]) -> set[str]:
    visitor = _ReadVisitor()
    for stmt in stmts:
        visitor.visit(stmt)
    return visitor.names


def function_params(node: ast.FunctionDef) -> set[str]:
    params = {arg.arg for arg in (
        node.args.posonlyargs + node.args.args + node.args.kwonlyargs)}
    if node.args.vararg is not None:
        params.add(node.args.vararg.arg)
    if node.args.kwarg is not None:
        params.add(node.args.kwarg.arg)
    return params


def function_bound_names(node: ast.FunctionDef) -> set[str]:
    """Parameters plus names assigned anywhere in the function body."""
    return function_params(node) | assigned_names(node.body)
