"""Fig. 8 — hybrid MPI/OpenMP Jacobi over increasing node counts.

Wall time on a single machine cannot shrink with more in-process ranks;
the figure's scaling lives in the projected times printed by
``python -m repro.analysis.report fig8``.  This benchmark pins the
per-node cost shape: total work is constant, so wall time should stay
roughly flat as ranks increase while each rank's slice shrinks.
"""

import pytest

from repro.apps import jacobi_mpi
from repro.modes import Mode


@pytest.mark.parametrize("nodes", (1, 2, 4))
@pytest.mark.parametrize("mode", (Mode.HYBRID, Mode.COMPILED_DT),
                         ids=lambda m: m.value)
def test_fig8_nodes(benchmark, nodes, mode):
    benchmark.group = f"fig8:{mode.value}"
    sizes = jacobi_mpi.SIZES["test"]

    def run():
        return jacobi_mpi.solve(nodes=nodes, threads=2, mode=mode,
                                **sizes)

    result = benchmark.pedantic(run, rounds=2)
    assert jacobi_mpi.verify(result, sizes["n"])
