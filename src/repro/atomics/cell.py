"""Lock-striped emulation of C ``stdatomic`` cells.

``AtomicLong`` mirrors ``atomic_long``; ``AtomicRef`` mirrors
``_Atomic(void *)``.  Both hash onto one of ``_NUM_STRIPES`` pre-created
locks, so cells are independent (operations on different cells contend
only on hash collisions) and allocation-free after import.
"""

from __future__ import annotations

import threading
from array import array

_NUM_STRIPES = 64
_STRIPES = tuple(threading.Lock() for _ in range(_NUM_STRIPES))
_COUNTER = iter(range(10**18))
_COUNTER_LOCK = threading.Lock()


def _next_stripe() -> threading.Lock:
    with _COUNTER_LOCK:
        index = next(_COUNTER)
    return _STRIPES[index % _NUM_STRIPES]


class AtomicLong:
    """An integer cell with the C ``stdatomic`` operation set."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0):
        self._value = value
        self._lock = _next_stripe()

    def load(self) -> int:
        return self._value

    def store(self, value: int) -> None:
        with self._lock:
            self._value = value

    def swap(self, value: int) -> int:
        with self._lock:
            old = self._value
            self._value = value
            return old

    def fetch_add(self, delta: int = 1) -> int:
        """Atomically add ``delta``; return the *previous* value."""
        with self._lock:
            old = self._value
            self._value = old + delta
            return old

    def compare_exchange(self, expected: int, desired: int) -> bool:
        """CAS: install ``desired`` iff the cell holds ``expected``."""
        with self._lock:
            if self._value == expected:
                self._value = desired
                return True
            return False


class AtomicRef:
    """An object-reference cell with ``swap``/``compare_exchange``.

    Comparison is by identity (``is``), matching pointer CAS semantics.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value=None):
        self._value = value
        self._lock = _next_stripe()

    def load(self):
        return self._value

    def store(self, value) -> None:
        with self._lock:
            self._value = value

    def swap(self, value):
        with self._lock:
            old = self._value
            self._value = value
            return old

    def compare_exchange(self, expected, desired) -> bool:
        with self._lock:
            if self._value is expected:
                self._value = desired
                return True
            return False


#: Assumed cache-line size for accumulator padding.
CACHE_LINE_BYTES = 64


class PaddedAccumulator:
    """Per-thread accumulation slots padded to cache-line stride.

    One contiguous ``array('d')`` buffer holds ``width`` float slots
    per thread, with each thread's row rounded up to a whole number of
    cache lines — the PyOP2 padding trick: on a free-threaded build two
    threads' accumulations never share a line, so the plan executor's
    lock-free partial sums don't false-share; under the GIL it is
    simply an allocation-free per-thread scratch row.  ``add``/``get``
    on distinct threads' rows need no synchronization; ``reduce`` is
    for the serial epilogue after the team joined.
    """

    __slots__ = ("nthreads", "width", "_stride", "_data")

    def __init__(self, nthreads: int, width: int = 1):
        if nthreads < 1 or width < 1:
            raise ValueError("PaddedAccumulator needs nthreads >= 1 "
                             "and width >= 1")
        self.nthreads = nthreads
        self.width = width
        itemsize = array("d").itemsize
        per_line = max(1, CACHE_LINE_BYTES // itemsize)
        self._stride = ((width + per_line - 1) // per_line) * per_line
        self._data = array("d", bytes(8 * self._stride * nthreads))

    def add(self, thread: int, value: float, index: int = 0) -> None:
        """Accumulate into ``thread``'s slot ``index`` (unsynchronized:
        only ``thread`` itself may call this during a region)."""
        self._data[thread * self._stride + index] += value

    def set(self, thread: int, value: float, index: int = 0) -> None:
        self._data[thread * self._stride + index] = value

    def get(self, thread: int, index: int = 0) -> float:
        return self._data[thread * self._stride + index]

    def total(self, index: int = 0) -> float:
        """Sum of slot ``index`` across every thread (serial epilogue)."""
        data, stride = self._data, self._stride
        return sum(data[thread * stride + index]
                   for thread in range(self.nthreads))

    def reduce(self) -> list[float]:
        """Across-thread sums of all ``width`` slots (serial epilogue)."""
        return [self.total(index) for index in range(self.width)]

    def reset(self) -> None:
        """Zero every slot (serial; between plan executions)."""
        for position in range(len(self._data)):
            self._data[position] = 0.0


def cas_attr(obj, name: str, expected, desired) -> bool:
    """Compare-exchange on an object attribute (identity comparison).

    Emulates a pointer CAS on a struct field — the operation the paper's
    cruntime uses to link task nodes without locking.  The stripe lock is
    selected by the object's identity, so unrelated CAS sites do not
    contend.
    """
    lock = _STRIPES[id(obj) % _NUM_STRIPES]
    with lock:
        if getattr(obj, name) is expected:
            setattr(obj, name, desired)
            return True
        return False


def atomic_setdefault(table: dict, key, value):
    """Atomic-swap-style slot creation in a shared table.

    ``dict.setdefault`` is a single C-level operation under the GIL: the
    first caller installs its value, every later caller gets the winner
    and discards its own — exactly the paper's "counter creation is done
    with an atomic swap" protocol.
    """
    return table.setdefault(key, value)
