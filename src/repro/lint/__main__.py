"""Entry point: ``python -m repro.lint <files-or-dirs>``."""

import os
import sys

from repro.lint.cli import main

try:
    code = main()
    sys.stdout.flush()
except BrokenPipeError:
    # The reader went away (e.g. ``... | head``); exit quietly the
    # way POSIX tools do instead of dumping a traceback.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 1
sys.exit(code)
