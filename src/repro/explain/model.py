"""Speedup-model fits: Amdahl's law and the Universal Scalability Law.

Both fit ``(threads, seconds)`` points from multi-thread runs (the
``projected`` field of :class:`~repro.analysis.timing.Measurement`,
which is modelled on the gil backend and measured on nogil — see
docs/projection.md) and predict per-app speedup ceilings:

* **Amdahl** — ``T(n) = T1·(s + (1−s)/n)``: a single serial fraction
  ``s``; closed-form least squares; ceiling ``1/s``.
* **USL** (Gunther) — ``S(n) = n / (1 + σ(n−1) + κ·n(n−1))``: adds a
  coherency term ``κ`` that makes throughput *retrograde* past
  ``n* = √((1−σ)/κ)`` — the shape the paper's flatlining apps show.

Grid-search with deterministic refinement keeps the fits dependency
free (no scipy at runtime).
"""

from __future__ import annotations


def _t1_of(points: list[tuple[int, float]]) -> float:
    """Baseline single-thread time: the measured n=1 point, or the
    smallest-n point scaled back through ideal speedup (a deliberately
    optimistic fallback)."""
    by_n = dict(points)
    if 1 in by_n:
        return by_n[1]
    n, t = min(points)
    return t * n


def amdahl_fit(points) -> dict | None:
    """Least-squares Amdahl fit over ``[(threads, seconds), ...]``.

    With ``y(n) = T(n)/T1`` the model is ``y = s·(1 − 1/n) + 1/n``,
    linear in ``s`` — so the least-squares serial fraction is closed
    form.  Returns ``None`` when fewer than two distinct thread counts
    are available.
    """
    points = sorted({(int(n), float(t)) for n, t in points})
    if len({n for n, _t in points}) < 2:
        return None
    t1 = _t1_of(points)
    if t1 <= 0:
        return None
    numerator = 0.0
    denominator = 0.0
    for n, t in points:
        x = 1.0 - 1.0 / n
        if x == 0.0:
            continue
        numerator += (t / t1 - 1.0 / n) * x
        denominator += x * x
    s = min(1.0, max(0.0, numerator / denominator)) if denominator \
        else 0.0
    ceiling = (1.0 / s) if s > 0 else float("inf")
    return {
        "serial_fraction": s,
        "t1_s": t1,
        "speedup_ceiling": ceiling,
        "predicted_speedup": {
            str(n): 1.0 / (s + (1.0 - s) / n) for n, _t in points},
        "points": [{"threads": n, "seconds": t, "speedup": t1 / t}
                   for n, t in points],
    }


def _usl_speedup(n: int, sigma: float, kappa: float) -> float:
    return n / (1.0 + sigma * (n - 1) + kappa * n * (n - 1))


def usl_fit(points, *, refinements: int = 3) -> dict | None:
    """Universal Scalability Law fit via refined grid search.

    Returns ``sigma`` (contention), ``kappa`` (coherency), the peak
    concurrency ``n*`` and peak speedup, or ``None`` with fewer than
    two distinct thread counts.
    """
    points = sorted({(int(n), float(t)) for n, t in points})
    if len({n for n, _t in points}) < 2:
        return None
    t1 = _t1_of(points)
    if t1 <= 0:
        return None
    speedups = [(n, t1 / t) for n, t in points if t > 0]

    def error(sigma: float, kappa: float) -> float:
        return sum((_usl_speedup(n, sigma, kappa) - s) ** 2
                   for n, s in speedups)

    lo_s, hi_s = 0.0, 1.0
    lo_k, hi_k = 0.0, 0.2
    best = (0.0, 0.0)
    steps = 20
    for _round in range(refinements):
        best_err = None
        for i in range(steps + 1):
            sigma = lo_s + (hi_s - lo_s) * i / steps
            for j in range(steps + 1):
                kappa = lo_k + (hi_k - lo_k) * j / steps
                err = error(sigma, kappa)
                if best_err is None or err < best_err:
                    best_err = err
                    best = (sigma, kappa)
        span_s = (hi_s - lo_s) / steps * 2
        span_k = (hi_k - lo_k) / steps * 2
        lo_s = max(0.0, best[0] - span_s)
        hi_s = min(1.0, best[0] + span_s)
        lo_k = max(0.0, best[1] - span_k)
        hi_k = best[1] + span_k
    sigma, kappa = best
    if kappa > 0:
        peak_n = max(1.0, ((1.0 - sigma) / kappa) ** 0.5)
    else:
        peak_n = float("inf")
    peak = _usl_speedup(max(1, round(peak_n)), sigma, kappa) \
        if peak_n != float("inf") else None
    return {
        "sigma": sigma,
        "kappa": kappa,
        "peak_threads": peak_n,
        "peak_speedup": peak,
        "predicted_speedup": {
            str(n): _usl_speedup(n, sigma, kappa)
            for n, _t in points},
        "points": [{"threads": n, "seconds": t, "speedup": t1 / t}
                   for n, t in points],
    }


def fit_models(points) -> dict | None:
    """Both fits over one point set, plus the headline prediction."""
    amdahl = amdahl_fit(points)
    usl = usl_fit(points)
    if amdahl is None and usl is None:
        return None
    result: dict = {"amdahl": amdahl, "usl": usl}
    if amdahl is not None:
        result["speedup_ceiling"] = amdahl["speedup_ceiling"]
    if usl is not None and usl["peak_speedup"] is not None:
        ceiling = result.get("speedup_ceiling")
        result["speedup_ceiling"] = usl["peak_speedup"] if ceiling is \
            None else min(ceiling, usl["peak_speedup"])
    return result
