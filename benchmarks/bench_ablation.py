"""Ablations of the design choices DESIGN.md calls out.

1. Dynamic-schedule shared counter: mutex (runtime) vs atomic
   ``fetch_add`` (cruntime) — the paper's stated reason Hybrid beats
   Pure on jacobi/qsort/bfs.
2. Task-deque push/steal: mutex-serialised deque vs the Chase-Lev
   owner/thief protocol.
3. Task throughput through the barrier drain (pure vs native runtimes
   end-to-end).
4. Chunked NumPy kernels vs one whole-loop kernel (CompiledDT cache
   behaviour).
5. ``range`` preserved in generated code vs a generator-based driver
   (the paper's Fig. 3 rationale).
"""

import pytest

from repro.cruntime import cruntime
from repro.decorator import transform
from repro.modes import Mode
from repro.runtime import pure_runtime
from repro.runtime.tasking import TaskNode, WorkStealingScheduler

RUNTIMES = {"mutex(runtime)": pure_runtime,
            "atomic(cruntime)": cruntime}


# -- 1. shared-counter increments --------------------------------------

@pytest.mark.parametrize("label", RUNTIMES)
def test_ablation_counter_increment(benchmark, label):
    benchmark.group = "ablation:counter"
    counter = RUNTIMES[label].lowlevel.make_counter(0)

    def bump():
        for _ in range(10000):
            counter.fetch_add(1)

    benchmark(bump)


@pytest.mark.parametrize("label", RUNTIMES)
def test_ablation_dynamic_schedule_end_to_end(benchmark, label):
    """A dynamic-schedule loop dominated by chunk handout."""
    rt = RUNTIMES[label]
    benchmark.group = "ablation:dynamic-loop"

    def run():
        def region():
            bounds = rt.for_bounds([0, 20000, 1])
            rt.for_init(bounds, kind="dynamic", chunk=4)
            while rt.for_next(bounds):
                pass
            rt.for_end(bounds)

        rt.parallel_run(region, num_threads=4)

    benchmark.pedantic(run, rounds=3)


# -- 2. task deque push/claim ---------------------------------------------

@pytest.mark.parametrize("label", RUNTIMES)
def test_ablation_task_enqueue(benchmark, label):
    benchmark.group = "ablation:enqueue"
    lowlevel = RUNTIMES[label].lowlevel

    def enqueue():
        scheduler = WorkStealingScheduler(lowlevel, 4)
        for _ in range(2000):
            scheduler.push(0, TaskNode(None, None, lowlevel))

    benchmark(enqueue)


@pytest.mark.parametrize("label", RUNTIMES)
def test_ablation_task_steal(benchmark, label):
    """Cross-thread claim cost: every claim misses the local deque and
    steals from the victim (mutex deque vs Chase-Lev CAS)."""
    benchmark.group = "ablation:steal"
    lowlevel = RUNTIMES[label].lowlevel

    def steal_all():
        scheduler = WorkStealingScheduler(lowlevel, 4)
        for _ in range(2000):
            scheduler.push(0, TaskNode(None, None, lowlevel))
        while scheduler.claim(1) is not None:
            pass

    benchmark(steal_all)


# -- 3. tasking end-to-end -------------------------------------------------

@pytest.mark.parametrize("label", RUNTIMES)
def test_ablation_task_throughput(benchmark, label):
    """Submit a burst of empty tasks; waiters at the barrier drain it."""
    rt = RUNTIMES[label]
    benchmark.group = "ablation:tasking"

    def run():
        def region():
            state = rt.single_begin()
            if state.selected:
                for _ in range(400):
                    rt.task_submit(lambda: None)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=4)

    benchmark.pedantic(run, rounds=3)


@pytest.mark.parametrize("label", RUNTIMES)
def test_ablation_taskwait_drain(benchmark, label):
    """The alternative to barrier draining: the producer joins its own
    children with taskwait before reaching the barrier.  Comparing
    against ``test_ablation_task_throughput`` shows how much the
    paper's reawaken-waiters-at-the-barrier design contributes."""
    rt = RUNTIMES[label]
    benchmark.group = "ablation:tasking"

    def run():
        def region():
            state = rt.single_begin()
            if state.selected:
                for _ in range(400):
                    rt.task_submit(lambda: None)
                rt.task_wait()
            rt.single_end(state)

        rt.parallel_run(region, num_threads=4)

    benchmark.pedantic(run, rounds=3)


# -- 4. chunked vs whole-loop kernels ---------------------------------------


def _pi_chunked(n, threads):
    w: float = 1.0 / n
    total: float = 0.0
    with omp("parallel for reduction(+:total) num_threads(threads) "  # noqa: F821
             "schedule(static, 65536)"):
        for i in range(n):
            x = (i + 0.5) * w
            total += 4.0 / (1.0 + x * x)
    return total * w


def _pi_whole(n, threads):
    w: float = 1.0 / n
    total: float = 0.0
    with omp("parallel for reduction(+:total) num_threads(threads)"):  # noqa: F821,E501
        for i in range(n):
            x = (i + 0.5) * w
            total += 4.0 / (1.0 + x * x)
    return total * w


@pytest.mark.parametrize("label,source", [
    ("chunked-64k", _pi_chunked),
    ("whole-loop", _pi_whole),
])
def test_ablation_kernel_chunking(benchmark, label, source):
    benchmark.group = "ablation:kernel-chunking"
    variant = transform(source, Mode.COMPILED_DT)
    benchmark.pedantic(variant, args=(4_000_000, 2), rounds=3)


# -- 5b. taskloop vs worksharing for (extension overhead) --------------------


@pytest.mark.parametrize("label", ["taskloop-grain500", "for-dynamic500"])
def test_ablation_taskloop_vs_for(benchmark, label):
    """Cost of task-based loop distribution (taskloop) vs the shared
    chunk counter (dynamic for): per-grain task objects and queue
    traffic vs a single fetch_add per chunk."""
    benchmark.group = "ablation:taskloop-vs-for"
    fn = transform(_taskloop_simple if label.startswith("taskloop")
                   else _ws_simple, Mode.HYBRID)
    benchmark.pedantic(fn, args=(20000, 4), rounds=3)


def _taskloop_simple(n, threads):
    hits = 0
    with omp("parallel num_threads(threads)"):  # noqa: F821
        with omp("single"):  # noqa: F821
            with omp("taskloop grainsize(500)"):  # noqa: F821
                for i in range(n):
                    hits = i
    return hits


def _ws_simple(n, threads):
    hits = 0
    with omp("parallel for schedule(dynamic, 500) "  # noqa: F821
             "num_threads(threads)"):
        for i in range(n):
            hits = i
    return hits


# -- 5c. dependence-graph overhead (Section V prototype) ---------------------


@pytest.mark.parametrize("label", ["independent", "chained"])
def test_ablation_dependence_overhead(benchmark, label):
    """Cost of the id-keyed dependence graph: a fully serial inout
    chain (every submit registers with its predecessor, tasks release
    one another) vs the same tasks with no depend clauses."""
    rt = cruntime
    benchmark.group = "ablation:dependences"
    chain = label == "chained"
    handle = object()

    def run():
        def region():
            state = rt.single_begin()
            if state.selected:
                for _ in range(300):
                    if chain:
                        rt.task_submit(lambda: None,
                                       depends_in=(handle,),
                                       depends_out=(handle,))
                    else:
                        rt.task_submit(lambda: None)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=4)

    benchmark.pedantic(run, rounds=3)


# -- 5. range vs generator loop driver ---------------------------------------


def test_ablation_range_driver(benchmark):
    benchmark.group = "ablation:loop-driver"

    def drive():
        total = 0
        for i in range(200000):
            total += i
        return total

    benchmark(drive)


def test_ablation_generator_driver(benchmark):
    benchmark.group = "ablation:loop-driver"

    def chunks(n, size):
        low = 0
        while low < n:
            yield low, min(low + size, n)
            low += size

    def drive():
        total = 0
        for low, high in chunks(200000, 1):
            for i in range(low, high):
                total += i
        return total

    benchmark(drive)
