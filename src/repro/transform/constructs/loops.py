"""Lowering of the ``for`` worksharing directive and ``ordered`` regions.

Follows the paper's Fig. 3: the range triplets feed ``for_bounds``,
``for_init`` binds the schedule, and a ``while __omp__.for_next(b):``
driver wraps the original ``for`` loop, now iterating ``range(b[0],
b[1])`` — preserving the built-in ``range`` for its C-level speed, as
the paper emphasises.  ``collapse`` concatenates the triplets of
perfectly nested loops and recovers the indices with ``divmod``.
"""

from __future__ import annotations

import ast

from repro.directives.model import Directive
from repro.errors import OmpSyntaxError
from repro.transform import astutil, scope
from repro.transform.context import LoopFrame, TransformContext
from repro.transform.datasharing import DataSharing, classify


def handle_for(node: ast.With, directive: Directive,
               ctx: TransformContext) -> list[ast.stmt]:
    collapse = _collapse_count(directive)
    loops = _collect_nest(node.body, collapse, directive)
    user_body = loops[-1].body
    astutil.check_loop_body(user_body, directive.source)

    ds = classify(user_body, directive, ctx, allow_lastprivate=True)
    rename_map, pre, post = _loop_privatization(ds, ctx, directive)

    # The loop variables are always privatized by renaming: OpenMP makes
    # the worksharing loop variable private regardless of its sharing in
    # the enclosing region.
    loop_vars = []
    for loop in loops:
        if not isinstance(loop.target, ast.Name):
            raise OmpSyntaxError(
                "worksharing loop variable must be a simple name",
                directive=directive.source)
        fresh = ctx.symbols.fresh(loop.target.id)
        rename_map[loop.target.id] = fresh
        loop_vars.append(fresh)

    triplets = [_range_triplet(loop, directive) for loop in loops]
    hoist, triplet_names = _hoist_triplets(triplets, ctx)

    bounds_name = ctx.symbols.fresh("bounds")
    ordered = directive.has_clause("ordered")
    nowait = directive.has_clause("nowait")
    kind, chunk_expr = _schedule_of(directive)

    linear_name = (ctx.symbols.fresh("lin") if collapse > 1
                   else loop_vars[0])
    # No scope push: the worksharing loop body stays in the enclosing
    # function; privatization here is by renaming, not by a new scope.
    ctx.loop_stack.append(LoopFrame(
        bounds_name=bounds_name, index_name=linear_name,
        has_ordered=ordered, collapsed=collapse > 1))
    try:
        with ctx.enter_construct("for"):
            new_body = transform_statements(user_body, ctx)
    finally:
        ctx.loop_stack.pop()
    new_body = astutil.rename_in(new_body, rename_map)

    stmts: list[ast.stmt] = list(hoist)
    flat: list[ast.expr] = []
    for start, stop, step in triplet_names:
        flat.extend((start, stop, step))
    stmts.append(astutil.assign(bounds_name, astutil.rt_call(
        ctx.rt_name, "for_bounds",
        [ast.List(elts=flat, ctx=ast.Load())])))
    init_keywords: list[tuple[str, ast.expr]] = [
        ("kind", astutil.constant(kind))]
    if chunk_expr is not None:
        init_keywords.append(("chunk", chunk_expr))
    if ordered:
        init_keywords.append(("ordered", astutil.constant(True)))
    if nowait:
        init_keywords.append(("nowait", astutil.constant(True)))
    stmts.append(astutil.rt_call_stmt(
        ctx.rt_name, "for_init", [astutil.name_load(bounds_name)],
        init_keywords))
    stmts.extend(pre)

    divisors_name = None
    if collapse > 1:
        divisors_name = ctx.symbols.fresh("divs")
        stmts.append(astutil.assign(divisors_name, astutil.rt_call(
            ctx.rt_name, "collapse_divisors",
            [astutil.name_load(bounds_name)])))
    inner_for = _build_driver_loop(
        ctx, bounds_name, loop_vars, linear_name, triplet_names,
        collapse, new_body, divisors_name)
    condition = astutil.rt_call(ctx.rt_name, "for_next",
                                [astutil.name_load(bounds_name)])
    stmts.append(ast.While(test=condition, body=[inner_for], orelse=[]))

    last_writeback = [s for s in post if getattr(s, "_omp_last", False)]
    other_post = [s for s in post if not getattr(s, "_omp_last", False)]
    if last_writeback:
        stmts.append(ast.If(
            test=astutil.rt_call(ctx.rt_name, "for_last",
                                 [astutil.name_load(bounds_name)]),
            body=last_writeback, orelse=[]))
    stmts.extend(other_post)
    stmts.append(astutil.rt_call_stmt(
        ctx.rt_name, "for_end", [astutil.name_load(bounds_name)]))
    for stmt in stmts:
        astutil.fix_locations(stmt, node)
    return stmts


def _collapse_count(directive: Directive) -> int:
    clause = directive.clause("collapse")
    if clause is None:
        return 1
    expr = astutil.parse_expression(clause.expr, directive.source)
    if not isinstance(expr, ast.Constant) or not isinstance(
            expr.value, int) or expr.value < 1:
        raise OmpSyntaxError(
            "collapse requires a positive integer literal",
            directive=directive.source)
    return expr.value


def _collect_nest(body: list[ast.stmt], collapse: int,
                  directive: Directive) -> list[ast.For]:
    loops: list[ast.For] = []
    current = body
    for level in range(collapse):
        if len(current) != 1 or not isinstance(current[0], ast.For):
            what = ("a single for loop" if level == 0
                    else f"{collapse} perfectly nested for loops")
            raise OmpSyntaxError(f"the for directive requires {what}",
                                 directive=directive.source)
        loop = current[0]
        if loop.orelse:
            raise OmpSyntaxError(
                "worksharing loops may not have an else clause",
                directive=directive.source)
        loops.append(loop)
        current = loop.body
    if collapse > 1:
        _check_rectangular(loops, directive)
    return loops


def _check_rectangular(loops: list[ast.For], directive: Directive) -> None:
    outer_vars: set[str] = set()
    for loop in loops:
        if isinstance(loop.target, ast.Name):
            iter_reads = scope.read_names([ast.Expr(value=loop.iter)])
            overlap = iter_reads & outer_vars
            if overlap:
                raise OmpSyntaxError(
                    f"collapse requires a rectangular iteration space; "
                    f"inner bounds depend on {sorted(overlap)}",
                    directive=directive.source)
            outer_vars.add(loop.target.id)


def _range_triplet(loop: ast.For,
                   directive: Directive) -> tuple[ast.expr, ...]:
    call = loop.iter
    if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)
            and call.func.id == "range" and not call.keywords):
        raise OmpSyntaxError(
            "worksharing loops must iterate over range(...)",
            directive=directive.source)
    args = call.args
    if len(args) == 1:
        return astutil.constant(0), args[0], astutil.constant(1)
    if len(args) == 2:
        return args[0], args[1], astutil.constant(1)
    if len(args) == 3:
        return tuple(args)
    raise OmpSyntaxError("range() takes 1 to 3 arguments",
                         directive=directive.source)


def _hoist_triplets(triplets, ctx: TransformContext):
    """Evaluate non-literal triplet parts once, into temporaries.

    The start/step values are needed twice (``for_bounds`` and the index
    arithmetic), so they must not be re-evaluated.
    """
    hoist: list[ast.stmt] = []
    names = []
    for start, stop, step in triplets:
        named = []
        for part in (start, stop, step):
            if isinstance(part, ast.Constant):
                named.append(part)
            else:
                temp = ctx.symbols.fresh("tri")
                hoist.append(astutil.assign(temp, part))
                named.append(astutil.name_load(temp))
        names.append(tuple(named))
    return hoist, names


def _schedule_of(directive: Directive):
    clause = directive.clause("schedule")
    if clause is None:
        return "static", None
    chunk = (astutil.parse_expression(clause.expr, directive.source)
             if clause.expr else None)
    return clause.op, chunk


def _loop_privatization(ds: DataSharing, ctx: TransformContext,
                        directive: Directive):
    """Privatize by renaming (the loop body stays in the same function).

    Returns ``(rename_map, pre_statements, post_statements)``; post
    statements carrying ``_omp_last`` are lastprivate write-backs that
    the caller guards with ``for_last``.
    """
    rename_map: dict[str, str] = {}
    pre: list[ast.stmt] = []
    post: list[ast.stmt] = []
    for name in ds.privates:
        fresh = ctx.symbols.fresh(name)
        rename_map[name] = fresh
        pre.append(astutil.assign(
            fresh, astutil.rt_attr(ctx.rt_name, "UNDEFINED")))
    for name in ds.firstprivates:
        fresh = ctx.symbols.fresh(name)
        rename_map[name] = fresh
        pre.append(astutil.assign(fresh, astutil.name_load(name)))
    for name in ds.lastprivates:
        fresh = rename_map.get(name)
        if fresh is None:
            fresh = ctx.symbols.fresh(name)
            rename_map[name] = fresh
            pre.append(astutil.assign(
                fresh, astutil.rt_attr(ctx.rt_name, "UNDEFINED")))
        writeback = astutil.assign(name, astutil.name_load(fresh))
        writeback._omp_last = True
        post.append(writeback)
    for op, var, acc in ds.reductions:
        rename_map[var] = acc
        pre.append(astutil.assign(acc, astutil.rt_call(
            ctx.rt_name, "reduction_init", [astutil.constant(op)])))
        merge = astutil.assign(var, astutil.rt_call(
            ctx.rt_name, "reduction_combine",
            [astutil.constant(op), astutil.name_load(var),
             astutil.name_load(acc)]))
        post.append(astutil.rt_call_stmt(ctx.rt_name, "mutex_lock"))
        post.append(astutil.try_finally(
            [merge], [astutil.rt_call_stmt(ctx.rt_name, "mutex_unlock")]))
    return rename_map, pre, post


def _build_driver_loop(ctx: TransformContext, bounds_name: str,
                       loop_vars: list[str], linear_name: str,
                       triplet_names, collapse: int,
                       new_body: list[ast.stmt],
                       divisors_name: str | None = None) -> ast.For:
    bounds = astutil.name_load(bounds_name)
    chunk_lo = ast.Subscript(value=bounds, slice=astutil.constant(0),
                             ctx=ast.Load())
    chunk_hi = ast.Subscript(value=astutil.name_load(bounds_name),
                             slice=astutil.constant(1), ctx=ast.Load())
    if collapse == 1:
        start, _stop, step = triplet_names[0]
        range_args = [chunk_lo, chunk_hi]
        if not (isinstance(step, ast.Constant) and step.value == 1):
            range_args.append(step)
        return ast.For(
            target=astutil.name_store(loop_vars[0]),
            iter=ast.Call(func=astutil.name_load("range"),
                          args=range_args, keywords=[]),
            body=new_body, orelse=[])

    # Collapsed: iterate the linearized space and recover the indices.
    remainder = ctx.symbols.fresh("rem")
    recovery: list[ast.stmt] = [astutil.assign(
        remainder, astutil.name_load(linear_name))]
    for level in range(collapse):
        start, _stop, step = triplet_names[level]
        if level < collapse - 1:
            quotient = ctx.symbols.fresh("q")
            divmod_call = ast.Call(
                func=astutil.name_load("divmod"),
                args=[astutil.name_load(remainder),
                      ast.Subscript(
                          value=astutil.name_load(divisors_name),
                          slice=astutil.constant(level), ctx=ast.Load())],
                keywords=[])
            recovery.append(ast.Assign(
                targets=[ast.Tuple(
                    elts=[astutil.name_store(quotient),
                          astutil.name_store(remainder)],
                    ctx=ast.Store())],
                value=divmod_call))
            index_source = quotient
        else:
            index_source = remainder
        scaled = ast.BinOp(left=astutil.name_load(index_source),
                           op=ast.Mult(), right=step)
        recovery.append(astutil.assign(
            loop_vars[level],
            ast.BinOp(left=start, op=ast.Add(), right=scaled)))
    return ast.For(
        target=astutil.name_store(linear_name),
        iter=ast.Call(func=astutil.name_load("range"),
                      args=[chunk_lo, chunk_hi], keywords=[]),
        body=recovery + new_body, orelse=[])


def handle_ordered(node: ast.With, directive: Directive,
                   ctx: TransformContext) -> list[ast.stmt]:
    if not ctx.loop_stack or not ctx.loop_stack[-1].has_ordered:
        raise OmpSyntaxError(
            "ordered region requires an enclosing for directive with "
            "the ordered clause", directive=directive.source)
    frame = ctx.loop_stack[-1]
    with ctx.enter_construct("ordered"):
        body = transform_statements(node.body, ctx)
    index = astutil.name_load(frame.index_name)
    start = astutil.rt_call_stmt(ctx.rt_name, "ordered_start",
                                 [astutil.name_load(frame.bounds_name),
                                  index])
    end = astutil.rt_call_stmt(ctx.rt_name, "ordered_end",
                               [astutil.name_load(frame.bounds_name),
                                astutil.name_load(frame.index_name)])
    result = [start, astutil.try_finally(body, [end])]
    for stmt in result:
        astutil.fix_locations(stmt, node)
    return result


def transform_statements(stmts, ctx):
    from repro.transform.rewriter import transform_statements as _impl
    return _impl(stmts, ctx)
