"""Recursive-descent parser for OpenMP directive strings.

Grammar (clause separators — whitespace, commas, or the OpenMP 6.0
semicolon syntax the paper supports — are interchangeable)::

    directive  := name-words [ "(" ident-list ")" ] clause*
    clause     := ident [ "(" clause-argument ")" ]

Combined directive names accept spaces or underscores between words
("parallel for" == "parallel_for"), again per the paper's OpenMP 6.0
syntax support.
"""

from __future__ import annotations

from repro.directives.lexer import TokenKind, TokenStream
from repro.directives.model import Clause, Directive
from repro.directives.spec import (ArgShape, CLAUSES, DIRECTIVES,
                                   REDUCTION_OPERATORS, match_directive)
from repro.env import SCHEDULE_KINDS
from repro.errors import OmpSyntaxError


def parse_directive(text: str) -> Directive:
    """Parse and validate one directive string."""
    stream = TokenStream(text)
    name = _parse_name(stream)
    spec = DIRECTIVES[name]

    arguments: tuple[str, ...] = ()
    clauses: list[Clause] = []
    if name == "declare reduction":
        arguments, combiner = _parse_declare_reduction_head(stream)
        clauses.append(Clause("combiner", expr=combiner))
    elif spec.takes_arguments and stream.current.kind is TokenKind.LPAREN:
        arguments = _parse_ident_list_parens(stream)

    if spec.requires_arguments and not arguments:
        raise OmpSyntaxError(f"{name!r} requires arguments", directive=text)
    if spec.max_arguments is not None and len(arguments) > spec.max_arguments:
        raise OmpSyntaxError(
            f"{name!r} accepts at most {spec.max_arguments} argument(s)",
            directive=text)

    while not stream.at_end():
        if stream.current.kind in (TokenKind.COMMA, TokenKind.SEMICOLON):
            stream.advance()
            continue
        clauses.append(_parse_clause(stream, name))

    _validate(name, clauses, text)
    return Directive(name=name, clauses=tuple(clauses),
                     arguments=arguments, source=text)


def _parse_name(stream: TokenStream) -> str:
    if stream.current.kind is not TokenKind.IDENT:
        raise OmpSyntaxError("directive name expected",
                             directive=stream.text)
    words: list[str] = []
    while stream.current.kind is TokenKind.IDENT:
        candidate = words + stream.current.text.lower().split("_")
        if not _prefixes_some_directive(candidate):
            break
        words = candidate
        stream.advance()
    name = match_directive(words)
    if name is None or len(name.split()) != len(words):
        raise OmpSyntaxError(
            f"unknown directive {' '.join(words) or stream.current.text!r}",
            directive=stream.text)
    return name


def _prefixes_some_directive(words: list[str]) -> bool:
    return any(name.split()[: len(words)] == words for name in DIRECTIVES)


def _parse_ident_list_parens(stream: TokenStream) -> tuple[str, ...]:
    stream.expect(TokenKind.LPAREN, "'('")
    names: list[str] = []
    while stream.current.kind is not TokenKind.RPAREN:
        token = stream.expect(TokenKind.IDENT, "identifier")
        names.append(token.text)
        if stream.current.kind is TokenKind.COMMA:
            stream.advance()
    stream.expect(TokenKind.RPAREN, "')'")
    return tuple(names)


def _parse_declare_reduction_head(
        stream: TokenStream) -> tuple[tuple[str, ...], str]:
    """Parse ``(ident : combiner-expression)``.

    The combiner is a Python expression over the special identifiers
    ``omp_out`` and ``omp_in`` (OpenMP 4.0 spelling, kept verbatim).
    """
    stream.expect(TokenKind.LPAREN, "'('")
    ident = stream.expect(TokenKind.IDENT, "reduction identifier").text
    stream.expect(TokenKind.COLON, "':'")
    combiner = stream.raw_until_balanced_rparen().strip()
    if not combiner:
        raise OmpSyntaxError("empty combiner expression",
                             directive=stream.text)
    return (ident,), combiner


def _parse_clause(stream: TokenStream, directive_name: str) -> Clause:
    token = stream.expect(TokenKind.IDENT, "clause name")
    clause_name = token.text.lower()
    spec = CLAUSES.get(clause_name)
    if spec is None or clause_name not in DIRECTIVES[directive_name].clauses:
        raise OmpSyntaxError(
            f"clause {clause_name!r} is not valid on {directive_name!r}",
            directive=stream.text)

    shape = spec.shape
    if shape is ArgShape.NONE:
        return Clause(clause_name)
    if shape is ArgShape.OPT_EXPR:
        if stream.current.kind is TokenKind.LPAREN:
            stream.advance()
            expr = stream.raw_until_balanced_rparen().strip()
            return Clause(clause_name, expr=expr)
        return Clause(clause_name)

    stream.expect(TokenKind.LPAREN, f"'(' after {clause_name!r}")
    if shape is ArgShape.VARLIST:
        names: list[str] = []
        while stream.current.kind is not TokenKind.RPAREN:
            names.append(stream.expect(TokenKind.IDENT, "identifier").text)
            if stream.current.kind is TokenKind.COMMA:
                stream.advance()
        stream.expect(TokenKind.RPAREN, "')'")
        if not names:
            raise OmpSyntaxError(f"empty list in {clause_name!r}",
                                 directive=stream.text)
        return Clause(clause_name, vars=tuple(names))
    if shape is ArgShape.EXPR:
        expr = stream.raw_until_balanced_rparen().strip()
        if not expr:
            raise OmpSyntaxError(f"empty expression in {clause_name!r}",
                                 directive=stream.text)
        return Clause(clause_name, expr=expr)
    if shape is ArgShape.REDUCTION:
        return _parse_reduction_argument(stream, clause_name)
    if shape is ArgShape.DEPEND:
        clause = _parse_reduction_argument(stream, clause_name)
        if clause.op not in ("in", "out", "inout"):
            raise OmpSyntaxError(
                f"depend type must be in/out/inout, got {clause.op!r}",
                directive=stream.text)
        return clause
    if shape is ArgShape.SCHEDULE:
        return _parse_schedule_argument(stream)
    if shape is ArgShape.DEFAULT:
        policy = stream.expect(TokenKind.IDENT, "default policy").text
        stream.expect(TokenKind.RPAREN, "')'")
        if policy not in ("shared", "none", "private", "firstprivate"):
            raise OmpSyntaxError(f"invalid default policy {policy!r}",
                                 directive=stream.text)
        return Clause("default", op=policy)
    raise AssertionError(f"unhandled clause shape {shape}")


def _parse_reduction_argument(stream: TokenStream, name: str) -> Clause:
    token = stream.advance()
    op = token.text
    if token.kind is TokenKind.OPERATOR:
        # "&&" / "||" arrive as single operator tokens already.
        pass
    elif token.kind is TokenKind.IDENT:
        # Built-in word operators or a user identifier registered with
        # `declare reduction`.
        pass
    else:
        raise OmpSyntaxError(f"invalid reduction operator {op!r}",
                             directive=stream.text)
    stream.expect(TokenKind.COLON, "':' after reduction operator")
    names: list[str] = []
    while stream.current.kind is not TokenKind.RPAREN:
        names.append(stream.expect(TokenKind.IDENT, "identifier").text)
        if stream.current.kind is TokenKind.COMMA:
            stream.advance()
    stream.expect(TokenKind.RPAREN, "')'")
    if not names:
        raise OmpSyntaxError("empty reduction variable list",
                             directive=stream.text)
    return Clause(name, op=op, vars=tuple(names))


def _parse_schedule_argument(stream: TokenStream) -> Clause:
    kind = stream.expect(TokenKind.IDENT, "schedule kind").text.lower()
    if kind not in SCHEDULE_KINDS:
        raise OmpSyntaxError(f"invalid schedule kind {kind!r}",
                             directive=stream.text)
    chunk: str | None = None
    if stream.current.kind is TokenKind.COMMA:
        stream.advance()
        chunk = stream.raw_until_balanced_rparen().strip()
        if not chunk:
            raise OmpSyntaxError("empty schedule chunk expression",
                                 directive=stream.text)
    else:
        stream.expect(TokenKind.RPAREN, "')'")
    if kind in ("auto", "runtime") and chunk is not None:
        raise OmpSyntaxError(
            f"schedule({kind}) does not accept a chunk size",
            directive=stream.text)
    return Clause("schedule", op=kind, expr=chunk)


def _validate(name: str, clauses: list[Clause], text: str) -> None:
    spec = DIRECTIVES[name]
    seen: dict[str, int] = {}
    for clause in clauses:
        if clause.name == "combiner":
            continue
        seen[clause.name] = seen.get(clause.name, 0) + 1
    for clause_name, count in seen.items():
        if count > 1 and not CLAUSES[clause_name].repeatable:
            raise OmpSyntaxError(
                f"clause {clause_name!r} may appear at most once",
                directive=text)
    for left, right in spec.exclusive:
        if left in seen and right in seen:
            raise OmpSyntaxError(
                f"clauses {left!r} and {right!r} are mutually exclusive",
                directive=text)
    _validate_no_duplicate_vars(clauses, text)
    _validate_reduction_ops(clauses, text)


def _validate_no_duplicate_vars(clauses: list[Clause], text: str) -> None:
    """A variable may appear in at most one data-sharing clause."""
    sharing = ("private", "firstprivate", "lastprivate", "shared",
               "reduction", "copyin")
    owner: dict[str, str] = {}
    for clause in clauses:
        if clause.name not in sharing:
            continue
        for var in clause.vars:
            previous = owner.get(var)
            # firstprivate+lastprivate on the same variable is the one
            # combination OpenMP allows.
            allowed = {previous, clause.name} == {"firstprivate",
                                                  "lastprivate"}
            if previous is not None and not allowed:
                raise OmpSyntaxError(
                    f"variable {var!r} appears in both {previous!r} and "
                    f"{clause.name!r}", directive=text)
            owner[var] = clause.name


def _validate_reduction_ops(clauses: list[Clause], text: str) -> None:
    for clause in clauses:
        if clause.name != "reduction":
            continue
        op = clause.op or ""
        if op not in REDUCTION_OPERATORS and not op.isidentifier():
            raise OmpSyntaxError(f"invalid reduction operator {op!r}",
                                 directive=text)
