"""Quickstart: the paper's Fig. 1 — parallel computation of pi.

Run with::

    python examples/quickstart.py [intervals]

The function is written once; the `@omp` decorator processes its
directives. The script then also builds every execution mode variant of
the same source (Pure / Hybrid / Compiled / CompiledDT) and times them.
"""

import sys
import time

from repro import Mode, omp, transform


@omp
def pi(n):
    w = 1.0 / n
    pi_value = 0.0
    with omp("parallel for reduction(+:pi_value)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w


def pi_typed(n, threads):
    # The CompiledDT variant: explicit int/float annotations let the
    # native pipeline lower the loop to a typed kernel.
    w: float = 1.0 / n
    pi_value: float = 0.0
    with omp("parallel for reduction(+:pi_value) num_threads(threads) "
             "schedule(static, 65536)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000_000
    print(f"pi({n:,}) with the default (Hybrid) mode:")
    print(f"  {pi(n)!r}")
    print()
    print(f"{'mode':<12}{'time [s]':>10}   result")
    for mode in Mode:
        variant = transform(pi_typed, mode)
        begin = time.perf_counter()
        value = variant(n, threads=4)
        elapsed = time.perf_counter() - begin
        print(f"{mode.value:<12}{elapsed:>10.4f}   {value!r}")


if __name__ == "__main__":
    main()
