"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
import sys
from collections import Counter

from repro.lint.findings import Finding, RULES, Severity


def render_text(findings: list[Finding], *, checked: int,
                out=None) -> None:
    """GCC-style one-line diagnostics plus a summary footer."""
    out = out if out is not None else sys.stdout
    for finding in findings:
        print(str(finding), file=out)
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings_ = len(findings) - errors
    if findings:
        print(file=out)
    print(f"omplint: {checked} file(s) checked, {errors} error(s), "
          f"{warnings_} warning(s)", file=out)


def render_json(findings: list[Finding], *, checked: int,
                out=None) -> None:
    """One JSON document: findings plus per-rule and per-severity
    tallies (stable shape for CI consumers)."""
    out = out if out is not None else sys.stdout
    by_rule = Counter(f.rule for f in findings)
    payload = {
        "checked_files": checked,
        "errors": sum(1 for f in findings
                      if f.severity is Severity.ERROR),
        "warnings": sum(1 for f in findings
                        if f.severity is Severity.WARNING),
        "by_rule": {rule: by_rule[rule]
                    for rule in sorted(by_rule)},
        "findings": [f.to_dict() for f in findings],
    }
    json.dump(payload, out, indent=2)
    print(file=out)


def render_rule_catalogue(out=None) -> None:
    """``--rules``: the catalogue, one line per rule."""
    out = out if out is not None else sys.stdout
    for rule in RULES.values():
        print(f"{rule.id}  {rule.severity.value:<8} {rule.name:<24} "
              f"{rule.summary}", file=out)
