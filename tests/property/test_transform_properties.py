"""Property tests over the whole transform+runtime stack: randomly
generated directive programs must compute what their sequential
stripped-down versions compute."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Mode

from tests.property.helpers import compile_from_source


@st.composite
def reduction_programs(draw):
    """A random parallel-for reduction over a random polynomial."""
    op, identity, pyop = draw(st.sampled_from([
        ("+", "0", "+"), ("*", "1", "*")]))
    coefficient = draw(st.integers(1, 3))
    offset = draw(st.integers(0, 3))
    schedule = draw(st.sampled_from(
        ["", " schedule(static, 3)", " schedule(dynamic, 2)",
         " schedule(guided)"]))
    threads = draw(st.integers(1, 4))
    term = f"(i % 3 * {coefficient} + {offset})"
    source = f'''
def subject(n):
    acc = {identity}
    with omp("parallel for reduction({op}:acc) "
             "num_threads({threads}){schedule}"):
        for i in range(n):
            acc {pyop}= {term}
    return acc
'''
    def reference(n):
        acc = int(identity)
        for i in range(n):
            if pyop == "+":
                acc += (i % 3 * coefficient + offset)
            else:
                acc *= (i % 3 * coefficient + offset)
        return acc

    return source, reference


class TestRandomReductionPrograms:
    @settings(max_examples=25, deadline=None)
    @given(program=reduction_programs(), n=st.integers(0, 30),
           mode=st.sampled_from([Mode.PURE, Mode.HYBRID]))
    def test_matches_reference(self, program, n, mode, tmp_path_factory):
        source, reference = program
        tmp_dir = tmp_path_factory.mktemp("props")
        fn = compile_from_source(source, "subject", tmp_dir, mode)
        assert fn(n) == reference(n)


@st.composite
def privatization_programs(draw):
    """Random data-sharing clause mixes over a fixed computation."""
    x_clause = draw(st.sampled_from(
        ["private(x)", "firstprivate(x)", ""]))
    threads = draw(st.integers(1, 4))
    source = f'''
def subject(n):
    x = 100
    out = []
    with omp("parallel num_threads({threads}) {x_clause}"):
        x = omp_get_thread_num()
        with omp("critical"):
            out.append(x)
    return x, sorted(out)
'''
    shared = x_clause == ""
    return source, threads, shared


class TestRandomPrivatization:
    @settings(max_examples=20, deadline=None)
    @given(program=privatization_programs(),
           mode=st.sampled_from([Mode.PURE, Mode.HYBRID]))
    def test_outer_value_semantics(self, program, mode,
                                   tmp_path_factory):
        source, threads, shared = program
        tmp_dir = tmp_path_factory.mktemp("props")
        fn = compile_from_source(source, "subject", tmp_dir, mode)
        outer, collected = fn(0)
        assert collected == list(range(threads))
        if shared:
            # Shared: the outer variable holds some thread's id.
            assert outer in range(threads)
        else:
            # Privatized: the outer variable is untouched.
            assert outer == 100
