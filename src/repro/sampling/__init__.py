"""Directive-aware sampling profiler (the ``OMP4PY_PROFILE`` knob).

A daemon thread walks ``sys._current_frames()`` at a configurable
interval (default 5 ms), classifies every runtime thread's sample as
on-CPU vs waiting by cross-referencing the diagnostics blocking
records, and tags each sample with the innermost active OpenMP
directive — resolved through the transform origin registry, so folded
stacks read ``user_file:line → <omp parallel @ file:line> → frames``.

Arming follows the house observability pattern: the ``@omp`` decorator
arms it from the environment (:mod:`repro.sampling.auto`), tests and
the profile CLI arm it programmatically, and the disarmed cost at every
instrumented runtime site is one attribute read (``runtime.sampler``)
plus a ``None`` branch.
"""

from repro.sampling.sampler import FoldedStore, Sampler
from repro.sampling.exporters import (collapsed_text,
                                      chrome_trace_samples,
                                      speedscope_profile,
                                      validate_collapsed,
                                      validate_speedscope)

__all__ = ["Sampler", "FoldedStore", "collapsed_text",
           "speedscope_profile", "chrome_trace_samples",
           "validate_collapsed", "validate_speedscope"]
