"""Tests of the timing harness, projection, and sweep runner."""

import pytest

from repro.analysis.runner import (SweepPoint, run_point, run_pyomp_point,
                                   schedule_sweep, sweep)
from repro.analysis.timing import measure, measure_mpi
from repro.apps import get_app
from repro.decorator import transform
from repro.modes import Mode


def busy_kernel(n, threads):
    from repro import omp
    total = 0
    with omp("parallel for reduction(+:total) num_threads(threads)"):
        for i in range(n):
            total += i * i
    return total


class TestMeasure:
    def test_measures_wall_and_projection(self):
        fn = transform(busy_kernel, Mode.HYBRID)
        measurement = measure(fn, 30000, 4)
        assert measurement.wall > 0
        assert 0 < measurement.projected <= measurement.wall * 1.01
        assert measurement.regions == 1
        assert measurement.value == sum(i * i for i in range(30000))

    def test_projection_shrinks_with_threads(self):
        fn = transform(busy_kernel, Mode.HYBRID)
        one = measure(fn, 400000, 1, repeats=3)
        four = measure(fn, 400000, 4, repeats=3)
        # On any machine the projected 4-thread time must be clearly
        # below the 1-thread time (load balance is near-perfect here);
        # the generous bound keeps the test robust under suite-wide
        # scheduling noise.
        assert four.projected < one.projected * 0.75

    def test_repeats_with_make_args(self):
        fn = transform(busy_kernel, Mode.HYBRID)
        calls = []

        def make_args():
            calls.append(1)
            return (1000, 2), {}

        measurement = measure(fn, repeats=3, make_args=make_args)
        assert len(calls) == 3
        assert measurement.value == sum(i * i for i in range(1000))

    def test_pure_mode_uses_pure_runtime_stats(self):
        fn = transform(busy_kernel, Mode.PURE)
        measurement = measure(fn, 10000, 2)
        assert measurement.regions == 1


class TestMeasureMpi:
    def test_projection_divides_by_nodes(self):
        from repro.apps import jacobi_mpi
        m1 = measure_mpi(jacobi_mpi.solve, 1, nodes=1, threads=2, n=48,
                         iterations=50)
        m2 = measure_mpi(jacobi_mpi.solve, 2, nodes=2, threads=2, n=48,
                         iterations=50)
        assert m1.projected > 0 and m2.projected > 0
        assert m2.projected < m1.projected


class TestRunner:
    def test_run_point_verifies(self):
        spec = get_app("pi")
        reference = spec.sequential(**spec.inputs("test"))
        point = run_point(spec, Mode.HYBRID, threads=2, profile="test",
                          reference=reference)
        assert point.verified is True
        assert point.wall > 0

    def test_sweep_produces_full_grid(self):
        spec = get_app("pi")
        points = sweep(spec, [1, 2], profile="test",
                       modes=[Mode.HYBRID, Mode.COMPILED_DT])
        series = {(p.series, p.threads) for p in points}
        assert ("hybrid", 1) in series
        assert ("compileddt", 2) in series
        assert ("pyomp", 1) in series
        assert all(p.verified for p in points if p.measurement)

    def test_pyomp_point_records_documented_failure(self):
        spec = get_app("wordcount")
        point = run_pyomp_point(spec, threads=2, profile="test")
        assert point.measurement is None
        assert "PyOMPCompileError" in point.error

    def test_pyomp_point_runs_supported_app(self):
        spec = get_app("pi")
        reference = spec.sequential(**spec.inputs("test"))
        point = run_pyomp_point(spec, threads=2, profile="test",
                                reference=reference)
        assert point.error is None
        assert point.verified is True

    def test_schedule_sweep_restores_icv(self):
        from repro.cruntime import cruntime
        spec = get_app("wordcount")
        grids = schedule_sweep(spec, [2], ("static", "dynamic"),
                               chunk=8, profile="test",
                               modes=[Mode.HYBRID])
        assert set(grids) == {"static", "dynamic"}
        assert cruntime.get_schedule() == ("static", None)


class TestReportCli:
    def test_table1_runs(self, capsys):
        from repro.analysis.report import main
        main(["table1"])
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "jacobi" in out

    def test_fig5_single_app(self, capsys):
        from repro.analysis.report import main
        main(["fig5", "--apps", "pi", "--threads", "1,2",
              "--profile", "test"])
        out = capsys.readouterr().out
        assert "pure" in out
        assert "pyomp" in out

    def test_fig7_speedups(self, capsys):
        from repro.analysis.report import main
        main(["fig7", "--threads", "1,2", "--profile", "test",
              "--chunk", "8"])
        out = capsys.readouterr().out
        assert "dynamic" in out
        assert "x" in out

    def test_fig8(self, capsys):
        from repro.analysis.report import main
        main(["fig8", "--nodes", "1,2", "--threads", "2",
              "--profile", "test"])
        out = capsys.readouterr().out
        assert "nodes" in out


class TestMeasurementProperties:
    def test_parallel_fraction(self):
        from repro.analysis.timing import Measurement
        measurement = Measurement(wall=2.0, projected=1.0,
                                  serialized_cpu=1.5, critical_cpu=0.5,
                                  regions=1)
        assert measurement.parallel_fraction == 0.75

    def test_parallel_fraction_clamped(self):
        from repro.analysis.timing import Measurement
        measurement = Measurement(wall=1.0, projected=1.0,
                                  serialized_cpu=1.4, critical_cpu=0.5,
                                  regions=1)
        assert measurement.parallel_fraction == 1.0

    def test_zero_wall(self):
        from repro.analysis.timing import Measurement
        measurement = Measurement(wall=0.0, projected=0.0,
                                  serialized_cpu=0.0, critical_cpu=0.0,
                                  regions=0)
        assert measurement.parallel_fraction == 0.0
