"""Tests of the runtime event tracer and its summaries."""

import pytest

from repro import Mode, transform
from repro.cruntime import cruntime
from repro.runtime import pure_runtime
from repro.runtime.trace import (TraceEvent, TraceLog, Tracer,
                                 TraceSummary)


@pytest.fixture(params=["pure", "cruntime"])
def rt(request):
    return pure_runtime if request.param == "pure" else cruntime


class TestTracerBasics:
    def test_disabled_by_default_records_nothing(self):
        tracer = Tracer()
        tracer.record("chunk", 0, 0, 10)
        assert tracer.events() == []

    def test_start_stop_cycle(self):
        tracer = Tracer()
        tracer.start()
        tracer.record("chunk", 1, 0, 5)
        events = tracer.stop()
        assert len(events) == 1
        assert events[0].kind == "chunk"
        assert events[0].thread == 1
        assert not tracer.enabled

    def test_start_clears_previous_events(self):
        tracer = Tracer()
        tracer.start()
        tracer.record("chunk", 0, 0, 1)
        tracer.start()
        assert tracer.events() == []

    def test_capacity_bound(self):
        tracer = Tracer(capacity=3)
        tracer.start()
        for index in range(10):
            tracer.record("chunk", 0, index, index + 1)
        assert len(tracer.events()) == 3
        assert tracer.dropped == 7

    def test_timestamps_monotonic(self):
        tracer = Tracer()
        tracer.start()
        for _ in range(5):
            tracer.record("chunk", 0, 0, 1)
        stamps = [event.timestamp for event in tracer.events()]
        assert stamps == sorted(stamps)

    def test_stop_surfaces_dropped_count(self):
        tracer = Tracer(capacity=2)
        tracer.start()
        for index in range(5):
            tracer.record("chunk", 0, index, index + 1)
        events = tracer.stop()
        assert isinstance(events, TraceLog)
        assert events.dropped == 3
        assert len(events) == 2

    def test_log_is_a_plain_list_to_consumers(self):
        log = TraceLog([TraceEvent(0.0, "chunk", 0, (0, 1))], dropped=4)
        assert log == [TraceEvent(0.0, "chunk", 0, (0, 1))]
        assert list(log) == list(log[:])
        assert log.dropped == 4

    def test_start_resets_dropped(self):
        tracer = Tracer(capacity=1)
        tracer.start()
        tracer.record("chunk", 0, 0, 1)
        tracer.record("chunk", 0, 1, 2)
        assert tracer.stop().dropped == 1
        tracer.start()
        assert tracer.events().dropped == 0

    def test_concurrent_record_and_stop(self):
        import threading as _threading
        tracer = Tracer(capacity=10_000)
        tracer.start()
        stop_flag = []

        def hammer():
            while not stop_flag:
                tracer.record("chunk", 0, 0, 1)

        workers = [_threading.Thread(target=hammer) for _ in range(3)]
        for worker in workers:
            worker.start()
        events = tracer.stop()
        stop_flag.append(True)
        for worker in workers:
            worker.join()
        # The snapshot is a consistent copy; later records don't mutate
        # it and recording after stop() is a no-op.
        size = len(events)
        tracer.record("chunk", 0, 0, 1)
        assert len(events) == size
        assert len(tracer.events()) <= 10_000


class TestRuntimeIntegration:
    def test_region_events(self, rt):
        rt.tracer.start()
        rt.parallel_run(lambda: None, num_threads=3)
        events = rt.tracer.stop()
        kinds = [event.kind for event in events]
        assert kinds.count("region_fork") == 1
        assert kinds.count("region_join") == 1
        # detail: (team size, region id, caller file, line)
        assert events[0].detail[0] == 3
        region_id = events[0].detail[1]
        assert region_id > 0
        joins = [e for e in events if e.kind == "region_join"]
        assert joins[0].detail == (3, region_id)
        # One implicit-task bracket per member, all tagged with the
        # region id.
        begins = [e for e in events if e.kind == "itask_begin"]
        ends = [e for e in events if e.kind == "itask_end"]
        assert {e.thread for e in begins} == {0, 1, 2}
        assert {e.thread for e in ends} == {0, 1, 2}
        assert all(e.detail == (region_id,) for e in begins + ends)

    def test_chunk_events_cover_iteration_space(self, rt):
        rt.tracer.start()

        def region():
            bounds = rt.for_bounds([0, 40, 1])
            rt.for_init(bounds, kind="dynamic", chunk=4)
            while rt.for_next(bounds):
                pass
            rt.for_end(bounds)

        rt.parallel_run(region, num_threads=3)
        summary = TraceSummary(rt.tracer.stop())
        assert summary.count("chunk") == 10
        assert sum(summary.iterations_per_thread().values()) == 40

    def test_task_lifecycle_events(self, rt):
        rt.tracer.start()

        def region():
            state = rt.single_begin()
            if state.selected:
                for _ in range(6):
                    rt.task_submit(lambda: None)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=2)
        summary = TraceSummary(rt.tracer.stop())
        assert summary.count("task_submit") == 6
        assert summary.count("task_start") == 6
        assert summary.count("task_finish") == 6
        assert all(latency >= 0 for latency in summary.task_latencies())

    def test_barrier_events(self, rt):
        rt.tracer.start()

        def region():
            rt.barrier()

        rt.parallel_run(region, num_threads=2)
        summary = TraceSummary(rt.tracer.stop())
        assert summary.count("barrier_enter") == 2
        assert summary.count("barrier_release") == 2

    def test_static_chunks_assigned_round_robin(self, rt):
        rt.tracer.start()

        def region():
            bounds = rt.for_bounds([0, 24, 1])
            rt.for_init(bounds, kind="static", chunk=3)
            while rt.for_next(bounds):
                pass
            rt.for_end(bounds)

        rt.parallel_run(region, num_threads=2)
        summary = TraceSummary(rt.tracer.stop())
        assert summary.chunks_per_thread() == {0: 4, 1: 4}

    def test_transformed_code_is_traceable(self):
        fn = transform(_traced_subject, Mode.HYBRID)
        cruntime.tracer.start()
        fn(30)
        summary = TraceSummary(cruntime.tracer.stop())
        assert summary.count("region_fork") == 1
        assert summary.count("chunk") >= 2


class TestSummaryTaskAccounting:
    def test_latencies_exclude_never_started_tasks(self):
        events = [TraceEvent(1.0, "task_submit", 0, (11,)),
                  TraceEvent(2.0, "task_submit", 0, (22,)),
                  TraceEvent(3.0, "task_start", 1, (11,))]
        summary = TraceSummary(events)
        assert summary.task_latencies() == [pytest.approx(2.0)]
        assert summary.unstarted_task_count() == 1

    def test_durations_are_submit_to_finish(self):
        events = [TraceEvent(1.0, "task_submit", 0, (7,)),
                  TraceEvent(1.5, "task_start", 1, (7,)),
                  TraceEvent(4.0, "task_finish", 1, (7,)),
                  TraceEvent(5.0, "task_submit", 0, (8,))]
        summary = TraceSummary(events)
        assert summary.task_durations() == [pytest.approx(3.0)]

    def test_finish_without_submit_is_ignored(self):
        events = [TraceEvent(1.0, "task_finish", 0, (99,))]
        assert TraceSummary(events).task_durations() == []

    def test_empty_summary(self):
        summary = TraceSummary([])
        assert summary.task_latencies() == []
        assert summary.task_durations() == []
        assert summary.unstarted_task_count() == 0
        assert summary.barrier_waits() == {}
        assert summary.dropped == 0

    def test_dropped_flows_from_trace_log(self):
        log = TraceLog([], dropped=17)
        assert TraceSummary(log).dropped == 17
        assert TraceSummary(log, dropped=3).dropped == 3

    def test_barrier_waits_sum_per_thread(self):
        events = [TraceEvent(1.0, "barrier_release", 0, (0.25,)),
                  TraceEvent(2.0, "barrier_release", 0, (0.5,)),
                  TraceEvent(2.0, "barrier_release", 1, (0.125,)),
                  TraceEvent(3.0, "barrier_release", 2, ())]
        waits = TraceSummary(events).barrier_waits()
        assert waits == {0: pytest.approx(0.75), 1: pytest.approx(0.125)}


class TestSummaryRendering:
    def test_timeline_renders_rows(self):
        events = [TraceEvent(1.0, "chunk", 0, (0, 5)),
                  TraceEvent(1.5, "chunk", 1, (5, 10)),
                  TraceEvent(2.0, "chunk", 0, (10, 15))]
        timeline = TraceSummary(events).timeline(width=20)
        assert "t0  |" in timeline
        assert "t1  |" in timeline
        assert "#" in timeline

    def test_timeline_without_chunks(self):
        assert "no chunk" in TraceSummary([]).timeline()


def _traced_subject(n):
    from repro import omp
    total = 0
    with omp("parallel for reduction(+:total) num_threads(2) "
             "schedule(dynamic, 5)"):
        for i in range(n):
            total += i
    return total
