"""Unit tests for the constant-folding and localization passes."""

import ast

import pytest

from repro.compiler.passes.fold import FoldConstants
from repro.compiler.passes.localize import LocalizeGlobals
from repro.transform.context import TransformContext


def fold_expr(source: str) -> ast.expr:
    tree = ast.parse(source, mode="eval")
    return FoldConstants().visit(tree).body


class TestFoldConstants:
    @pytest.mark.parametrize("source,expected", [
        ("1 + 2", 3),
        ("2 * 3 + 4", 10),
        ("10 / 4", 2.5),
        ("7 // 2", 3),
        ("7 % 3", 1),
        ("2 ** 8", 256),
        ("1 << 4", 16),
        ("0xff & 0x0f", 15),
        ("-5", -5),
        ("not True", False),
        ("'a' + 'b'", "ab"),
        ("(1 + 2) * (3 + 4)", 21),
    ])
    def test_folds(self, source, expected):
        node = fold_expr(source)
        assert isinstance(node, ast.Constant)
        assert node.value == expected

    def test_division_by_zero_left_unfolded(self):
        node = fold_expr("1 / 0")
        assert isinstance(node, ast.BinOp)

    def test_names_not_folded(self):
        node = fold_expr("x + 1")
        assert isinstance(node, ast.BinOp)

    def test_huge_results_not_folded(self):
        node = fold_expr("2 ** 10000")
        assert isinstance(node, ast.BinOp)

    def test_huge_strings_not_folded(self):
        node = fold_expr("'a' * 100000")
        assert isinstance(node, ast.BinOp)


def run_localize(source: str) -> str:
    tree = ast.parse(source)
    ctx = TransformContext("__omp0__", set(), set())
    LocalizeGlobals(ctx).run(tree)
    ast.fix_missing_locations(tree)
    return ast.unparse(tree)


class TestLocalizeGlobals:
    def test_builtin_alias_created(self):
        out = run_localize(
            "def f(n):\n"
            "    total = 0\n"
            "    for i in range(n):\n"
            "        total += len(str(i))\n"
            "    return total\n")
        assert "= range" in out
        assert "= len" in out

    def test_bound_builtin_not_aliased(self):
        out = run_localize(
            "def f(n):\n"
            "    range = n\n"
            "    return range\n")
        assert out.count("range") == 2  # no alias introduced

    def test_runtime_attribute_bound_once(self):
        out = run_localize(
            "def f(b):\n"
            "    while __omp0__.for_next(b):\n"
            "        pass\n")
        assert "= __omp0__.for_next" in out
        assert out.count("__omp0__.for_next") == 1

    def test_semantics_preserved(self):
        source = (
            "def f(n):\n"
            "    total = 0\n"
            "    for i in range(n):\n"
            "        total += len(str(i)) + abs(-i)\n"
            "    return total\n")
        plain: dict = {}
        exec(source, plain)
        optimized: dict = {}
        exec(compile(run_localize(source), "<t>", "exec"), optimized)
        assert plain["f"](100) == optimized["f"](100)

    def test_nested_functions_localize_in_own_scope(self):
        out = run_localize(
            "def f(n):\n"
            "    def g(m):\n"
            "        return len(str(m))\n"
            "    return g(n)\n")
        compiled = compile(out, "<t>", "exec")
        namespace: dict = {}
        exec(compiled, namespace)
        assert namespace["f"](12) == 2

    def test_docstring_stays_first(self):
        out = run_localize(
            "def f(n):\n"
            "    'doc'\n"
            "    return range(n)\n")
        tree = ast.parse(out)
        first = tree.body[0].body[0]
        assert isinstance(first, ast.Expr)
        assert first.value.value == "doc"


class TestLocalizeProloguePlacement:
    def test_nonlocal_declarations_stay_first(self):
        source = (
            "def outer():\n"
            "    x = 0\n"
            "    def f(n):\n"
            "        nonlocal x\n"
            "        for i in range(n):\n"
            "            x += len(str(i))\n"
            "    f(3)\n"
            "    return x\n")
        out = run_localize(source)
        tree = ast.parse(out)
        inner = tree.body[0].body[1]
        assert isinstance(inner.body[0], ast.Nonlocal)
        namespace: dict = {}
        exec(compile(out, "<t>", "exec"), namespace)
        assert namespace["outer"]() == 3

    def test_prologue_binds_before_loops(self):
        out = run_localize(
            "def f(n):\n"
            "    total = 0\n"
            "    for i in range(n):\n"
            "        total += len(str(i))\n"
            "    return total\n")
        tree = ast.parse(out)
        body = tree.body[0].body
        # Aliases come before the first loop.
        loop_index = next(i for i, stmt in enumerate(body)
                          if isinstance(stmt, ast.For))
        aliases = [stmt for stmt in body[:loop_index]
                   if isinstance(stmt, ast.Assign)]
        assert len(aliases) >= 2
