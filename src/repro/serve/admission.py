"""Admission control: the bounded queue with load-shedding semantics.

One rule decides admission: a request is admitted when the queue holds
fewer than ``capacity`` waiting requests, *or* the queue is empty and
an idle worker can take it immediately.  The second clause gives
``capacity=0`` a useful meaning — a pure hand-off server that accepts
work only when it can start right away and sheds everything else —
which is also the satellite edge case the unit tests pin down.

A shed request is never silently dropped: :class:`QueueFull` carries a
``retry_after`` hint (current depth times the observed mean service
time) that the front door turns into a 503 with a ``Retry-After``
header.
"""

from __future__ import annotations

import threading

from repro.serve.protocol import ServeRequest


class QueueFull(Exception):
    """Raised at admission when the bounded queue would overflow."""

    def __init__(self, depth: int, capacity: int, retry_after: float):
        super().__init__(
            f"serving queue full ({depth}/{capacity} waiting)")
        self.depth = depth
        self.capacity = capacity
        self.retry_after = retry_after


class AdmissionQueue:
    """FIFO of admitted-but-undispatched requests, bounded.

    The dispatcher removes batches with :meth:`next_batch`; crash
    recovery puts retried requests back at the *front* with
    :meth:`requeue_front` so a victim of a worker crash never loses
    its queue position.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("queue capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._waiting: list[ServeRequest] = []
        #: Mean service seconds, updated by the server; feeds the
        #: Retry-After hint.
        self.mean_service_s = 0.1

    def depth(self) -> int:
        with self._lock:
            return len(self._waiting)

    def offer(self, request: ServeRequest, *, idle_workers: int) -> None:
        """Admit or raise :class:`QueueFull` (shed)."""
        with self._lock:
            depth = len(self._waiting)
            if depth < self.capacity or (depth == 0 and idle_workers > 0):
                self._waiting.append(request)
                return
            retry_after = round(
                max(0.05, (depth + 1) * self.mean_service_s), 2)
        raise QueueFull(depth, self.capacity, retry_after)

    def requeue_front(self, requests: list[ServeRequest]) -> None:
        with self._lock:
            self._waiting[:0] = requests

    def next_batch(self, *, max_batch: int,
                   can_dispatch) -> list[ServeRequest]:
        """Remove and return the next dispatchable batch (maybe empty).

        Scans in FIFO order for the first request ``can_dispatch``
        accepts (tenant budget check), then coalesces every queued
        request sharing its ``group_key``, up to ``max_batch``.  An
        oversized burst therefore *splits*: the first ``max_batch``
        requests leave as one job and the remainder stays queued for
        the next worker — the batching half of "batches and shards".
        """
        with self._lock:
            head = None
            for request in self._waiting:
                if can_dispatch(request):
                    head = request
                    break
            if head is None:
                return []
            batch = [head]
            for request in self._waiting:
                if len(batch) >= max_batch:
                    break
                if request is head:
                    continue
                if request.group_key == head.group_key:
                    batch.append(request)
            chosen = set(id(r) for r in batch)
            self._waiting = [r for r in self._waiting
                             if id(r) not in chosen]
            return batch

    def drain(self) -> list[ServeRequest]:
        with self._lock:
            waiting, self._waiting = self._waiting, []
            return waiting
