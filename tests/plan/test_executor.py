"""Executor tests: exactly-once coverage, color barriers, in-region
re-execution, and team-size folding."""

import threading

import pytest

from repro.errors import OmpError
from repro.plan import Map, build_plan, execute, execute_member
from repro.runtime import pure_runtime
from repro.runtime.trace import Tracer


def _chain_map(n):
    return Map("exec-chain", [tuple(r for r in (i - 1, i, i + 1)
                                    if 0 <= r < n) for i in range(n)])


class TestExecute:
    def test_every_iteration_runs_exactly_once(self):
        n = 40
        plan = build_plan(_chain_map(n), 3)
        hits = [0] * n
        lock = threading.Lock()

        def body(lo, hi, thread_num):
            with lock:
                for i in range(lo, hi):
                    hits[i] += 1

        execute(plan, body, threads=4, runtime=pure_runtime)
        assert hits == [1] * n

    def test_single_thread(self):
        n = 10
        plan = build_plan(_chain_map(n), 2)
        order = []
        execute(plan, lambda lo, hi, t: order.append((lo, hi)),
                threads=1, runtime=pure_runtime)
        assert sorted(order) == sorted(plan.partitions)

    def test_empty_plan_skips_fork(self):
        plan = build_plan(Map("empty", []), 4)
        execute(plan, lambda *a: pytest.fail("body ran on empty plan"),
                threads=2, runtime=pure_runtime)

    def test_rejects_nested_call(self):
        plan = build_plan(_chain_map(4), 1)
        failures = []

        def member():
            try:
                execute(plan, lambda *a: None, runtime=pure_runtime)
            except OmpError:
                failures.append(pure_runtime.get_thread_num())

        pure_runtime.parallel_run(member, num_threads=2)
        assert sorted(failures) == [0, 1]

    def test_no_same_color_element_races(self):
        """Concurrent owners of one color never touch a shared
        element: per-element owner stamps stay single-writer within
        each color round."""
        n = 24
        the_map = _chain_map(n)
        plan = build_plan(the_map, 2)
        writer = {}
        errors = []

        def body(lo, hi, thread_num):
            for i in range(lo, hi):
                for element in the_map[i]:
                    prev = writer.setdefault(element, thread_num)
                    if prev != thread_num:
                        errors.append(element)

        # One color per round: clear the stamps at each boundary by
        # running colors through execute (barriers included) with a
        # fresh writer dict per execution round instead.
        for _ in range(3):
            writer.clear()
            schedule = plan.schedule_for(2)

            def member():
                thread_num = pure_runtime.get_thread_num()
                for per_thread in schedule:
                    for lo, hi in per_thread[thread_num]:
                        body(lo, hi, thread_num)
                    pure_runtime.barrier()
                    if thread_num == 0:
                        writer.clear()
                    pure_runtime.barrier()

            pure_runtime.parallel_run(member, num_threads=2)
        assert errors == []


class TestExecuteMember:
    def test_iterative_reexecution(self):
        n = 30
        steps = 4
        plan = build_plan(_chain_map(n), 2)
        hits = [0] * n
        lock = threading.Lock()

        def body(lo, hi, thread_num):
            with lock:
                for i in range(lo, hi):
                    hits[i] += 1

        def member():
            for _ in range(steps):
                execute_member(plan, body, runtime=pure_runtime)

        pure_runtime.parallel_run(member, num_threads=3)
        assert hits == [steps] * n

    def test_trailing_barrier_orders_steps(self):
        """No thread starts step k+1 while another is inside step k."""
        plan = build_plan(Map("disjoint", [[i] for i in range(8)]), 1)
        in_step = [0]
        max_skew = [0]
        lock = threading.Lock()

        def body(lo, hi, thread_num):
            with lock:
                in_step[0] += 1

        def member():
            for step in range(5):
                execute_member(plan, body, runtime=pure_runtime)
                with lock:
                    # After the trailing barrier every body call of the
                    # step has happened: the counter is a multiple of 8.
                    if in_step[0] % 8:
                        max_skew[0] += 1
                # Keep the next step's bodies out of the check window.
                pure_runtime.barrier()

        pure_runtime.parallel_run(member, num_threads=2)
        assert max_skew[0] == 0


class _StingyRuntime:
    """A single-member runtime that grants 1 thread whatever is asked —
    exercises the owner-folding path of :func:`execute`."""

    def __init__(self):
        self.tool = None
        self.tracer = Tracer()
        self._inside = False

    def in_parallel(self):
        return self._inside

    def get_max_threads(self):
        return 4

    def get_thread_limit(self):
        return 64

    def get_thread_num(self):
        return 0

    def get_num_threads(self):
        return 1

    def barrier(self):
        pass  # a single member never waits

    def parallel_run(self, fn, num_threads=None, **_kw):
        self._inside = True
        try:
            fn()
        finally:
            self._inside = False


class TestOwnerFolding:
    def test_undergranted_team_still_covers_every_partition(self):
        n = 20
        plan = build_plan(_chain_map(n), 2)
        hits = [0] * n

        def body(lo, hi, thread_num):
            for i in range(lo, hi):
                hits[i] += 1

        execute(plan, body, threads=4, runtime=_StingyRuntime())
        assert hits == [1] * n


class TestTraceEvents:
    def test_execute_records_plan_event(self):
        plan = build_plan(_chain_map(12), 3)
        pure_runtime.tracer.start()
        try:
            execute(plan, lambda *a: None, threads=2,
                    runtime=pure_runtime)
        finally:
            log = pure_runtime.tracer.stop()
        events = [e for e in log if e.kind == "plan_execute"]
        assert len(events) == 1
        source, nparts, ncolors, edges = events[0].detail[:4]
        assert source == "exec-chain"
        assert nparts == plan.npartitions
        assert ncolors == plan.ncolors
        assert edges == plan.conflict_edges

    def test_execute_member_records_once_per_step(self):
        plan = build_plan(_chain_map(12), 3)
        pure_runtime.tracer.start()
        try:
            def member():
                for _ in range(3):
                    execute_member(plan, lambda *a: None,
                                   runtime=pure_runtime)
            pure_runtime.parallel_run(member, num_threads=2)
        finally:
            log = pure_runtime.tracer.stop()
        events = [e for e in log if e.kind == "plan_execute"]
        # Thread 0 reports each step exactly once for the whole team.
        assert len(events) == 3
        assert {e.thread for e in events} == {0}
