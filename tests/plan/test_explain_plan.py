"""The explain pipeline on planned runs: plan events reach the DAG,
and the verdict is "convoy fixed by plan" — not a lock convoy."""

import pytest

from repro.apps import bfs
from repro.explain.bottlenecks import classify
from repro.explain.dag import build_dag, summarize
from repro.plan import clear_plan_cache
from repro.runtime.engine import OmpRuntime
from repro.runtime.lowlevel import PureLowLevel


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture()
def traced_planned_bfs():
    runtime = OmpRuntime(PureLowLevel())
    runtime.tracer.start()
    grid = bfs.make_maze(21)
    result = bfs.kernel_planned(grid, 21, 3, runtime=runtime)
    log = runtime.tracer.stop()
    assert result == bfs.sequential(grid, 21)
    return log


class TestDagPlans:
    def test_plan_events_reach_the_analysis(self, traced_planned_bfs):
        analysis = build_dag(traced_planned_bfs)
        assert "bfs-rows" in analysis.plans
        entry = analysis.plans["bfs-rows"]
        assert entry["executions"] > 0
        assert entry["partitions"] > 0
        assert entry["colors"] >= 1
        assert entry["site"] is not None

    def test_summary_carries_plans(self, traced_planned_bfs):
        summary = summarize(build_dag(traced_planned_bfs))
        assert "bfs-rows" in summary["plans"]
        assert summary["plans"]["bfs-rows"]["executions"] > 0


class TestClassifyPlannedRun:
    def test_plan_finding_replaces_lock_convoy(self, traced_planned_bfs):
        analysis = build_dag(traced_planned_bfs)
        findings = classify(analysis, nthreads=3,
                            events=traced_planned_bfs)
        categories = {f.category for f in findings}
        assert "plan-execution" in categories
        assert "lock-convoy" not in categories
        plan_finding = next(f for f in findings
                            if f.category == "plan-execution")
        assert "convoy fixed by plan" in plan_finding.message
        assert plan_finding.directive == "plan"
        assert plan_finding.extra["colors"] >= 1

    def test_plan_finding_survives_the_noise_filter(self,
                                                    traced_planned_bfs):
        # lost_s is zero by construction; the finding must still be
        # reported (it is informational, not a cost).
        analysis = build_dag(traced_planned_bfs)
        findings = classify(analysis, nthreads=3)
        assert any(f.category == "plan-execution" for f in findings)
        assert all(f.lost_s == 0.0 for f in findings
                   if f.category == "plan-execution")


class TestClassifyBaselineStillConvoys:
    def test_critical_baseline_reports_lock_convoy(self):
        """The control: the critical-section frontier kernel must
        still classify as a lock convoy, or the planned verdict means
        nothing."""
        from repro import transform
        from repro.modes import Mode
        kernel = transform(bfs.kernel_frontier, Mode.PURE)
        from repro.runtime import pure_runtime
        pure_runtime.tracer.start()
        try:
            grid = bfs.make_maze(21)
            kernel(grid=grid, n=21, threads=3)
        finally:
            log = pure_runtime.tracer.stop()
        analysis = build_dag(log)
        assert analysis.plans == {}
        assert any(handle[1] == "bfs_frontier"
                   for handle in analysis.mutexes
                   if len(handle) > 1)
