"""The executor: run a plan color by color, lock-free inside a color.

:func:`execute` forks one parallel region and walks the plan's colors
in order.  Within a color every partition runs without *any*
synchronization — the inspector proved no two of them touch a common
element — and a single team barrier separates consecutive colors.
That replaces the per-update ``critical`` sections of the irregular
apps with ``ncolors - 1`` barriers per execution, which is the whole
trade the inspector–executor architecture makes.

:func:`execute_member` is the in-region form for iterative apps (md
timesteps, bfs levels): every member of an active team calls it once
per step, so the plan re-executes without re-forking a region.

Thread placement is delegated to the runtime: ``parallel_run`` already
binds member ``i`` to its ``OMP_PLACES`` place through the affinity
binder, and the plan's owner assignment (partition ``p`` → thread
``p % nthreads``) is stable across colors and executions, so a
partition's data stays with one worker — and one place — for the
plan's lifetime.

Each execution is reported through the OMPT ``plan`` hook and, when
the tracer is armed, as a ``plan_execute`` trace event that the
explain DAG builder picks up to veto lock-convoy verdicts.
"""

from __future__ import annotations

from repro.errors import OmpError
from repro.runtime.trace import caller_site


def _default_runtime():
    from repro.runtime import pure_runtime
    return pure_runtime


def _notify(runtime, plan, threads: int) -> None:
    """Report one plan execution (tool hook + trace event)."""
    tool = runtime.tool
    if tool is not None:
        tool.plan(runtime.get_thread_num(), "execute",
                  {"source": plan.source,
                   "partition_size": plan.partition_size,
                   "partitions": plan.npartitions,
                   "colors": plan.ncolors,
                   "conflict_edges": plan.conflict_edges,
                   "threads": threads})
    if runtime.tracer.enabled:
        runtime.tracer.record("plan_execute", runtime.get_thread_num(),
                              plan.source, plan.npartitions,
                              plan.ncolors, plan.conflict_edges,
                              *caller_site())


def _walk_colors(plan, schedule, body, runtime, thread_num: int,
                 owners, barrier_after: bool) -> None:
    last = plan.ncolors - 1
    for color, per_thread in enumerate(schedule):
        for owner in owners:
            for lo, hi in per_thread[owner]:
                body(lo, hi, thread_num)
        if color != last or barrier_after:
            # The color boundary is the only synchronization the plan
            # needs.
            runtime.barrier()


def execute(plan, body, *, threads=None, runtime=None) -> None:
    """Run ``body(lo, hi, thread_num)`` over every partition of
    ``plan``, color by color, in a freshly forked region.

    ``body`` is invoked once per partition with the partition's
    iteration bounds and the executing team member's thread number; it
    must only update elements the plan's map declared for those
    iterations — that declaration is exactly what makes the color-level
    concurrency safe.

    Call from serial context; the final color ends at the region's own
    join barrier.
    """
    if runtime is None:
        runtime = _default_runtime()
    if runtime.in_parallel():
        raise OmpError("plan.execute must be called from serial "
                       "context; use execute_member inside a region")
    if threads is None:
        threads = runtime.get_max_threads()
    threads = max(1, min(threads, runtime.get_thread_limit()))
    if plan.total == 0:
        return
    schedule = plan.schedule_for(threads)
    _notify(runtime, plan, threads)

    def member() -> None:
        thread_num = runtime.get_thread_num()
        # The runtime may grant fewer members than requested (thread
        # limit, disabled nesting); folding owners modulo the granted
        # size keeps every partition covered — same-color partitions
        # are mutually conflict-free, so any executor may run any of
        # them.
        size = runtime.get_num_threads()
        owners = range(thread_num, threads, size) if size != threads \
            else (thread_num,)
        _walk_colors(plan, schedule, body, runtime, thread_num, owners,
                     barrier_after=False)

    runtime.parallel_run(member, num_threads=threads)


def execute_member(plan, body, *, runtime=None) -> None:
    """One team member's share of a plan execution.

    The in-region counterpart of :func:`execute` for iterative apps:
    every member of the active team must call it (it ends with a team
    barrier), once per timestep/level, so the plan re-executes without
    paying a region fork each step.
    """
    if runtime is None:
        runtime = _default_runtime()
    thread_num = runtime.get_thread_num()
    if plan.total == 0:
        return
    if thread_num == 0:
        _notify(runtime, plan, runtime.get_num_threads())
    schedule = plan.schedule_for(runtime.get_num_threads())
    _walk_colors(plan, schedule, body, runtime, thread_num,
                 (thread_num,), barrier_after=True)
