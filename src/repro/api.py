"""Public OMP4Py API: the ``omp`` decorator/marker and the OpenMP
runtime library functions.

``omp`` plays both roles, exactly as in the paper:

* ``omp("parallel for ...")`` — a directive marker.  At runtime it does
  nothing (the decorator removes every call during transformation); used
  in untransformed code it is an inert no-op context manager.
* ``@omp`` / ``@omp(compile=True, ...)`` — the decorator that processes
  the directives of a function or class.

The module-level ``omp_*`` functions mirror the OpenMP runtime library
and delegate to the session's default runtime (*Hybrid* by default, i.e.
the native-simulation cruntime — like the paper's ``import omp4py``).
Inside decorated code, calls to these names are rebound to the runtime
the decorated object was compiled against.
"""

from __future__ import annotations

import inspect

from repro import env
from repro.decorator import transform
from repro.errors import OmpError
from repro.modes import Mode, default_mode
from repro.transform.api_map import OMP_API_METHODS


class _NoOpDirective:
    """``omp("...")`` outside transformed code: inert, per the paper."""

    __slots__ = ("directive",)

    def __init__(self, directive: str):
        self.directive = directive

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"omp({self.directive!r})"


def omp(target=None, /, **options):
    """Directive marker (string argument) or decorator (callable/None).

    Decorator options mirror the paper's Section III-F: ``compile``
    (Cython-analogue native compilation — annotations present make it
    *CompiledDT*), ``mode`` (explicit execution mode), ``cache`` (dump
    generated sources into a directory), ``dump`` (print generated
    code), ``debug``, ``force``, ``options`` (extra compiler flags),
    and ``lint`` (``"warn"``/``"strict"`` — run the static race
    detector of :mod:`repro.lint` first).  Defaults come from
    ``OMP4PY_*`` environment variables.
    """
    if isinstance(target, str):
        if options:
            raise OmpError("directive markers take no keyword options")
        return _NoOpDirective(target)
    if target is None:
        return lambda obj: _decorate(obj, options)
    if callable(target):
        return _decorate(target, options)
    raise OmpError(f"omp cannot be applied to {target!r}")


def _decorate(target, options: dict):
    compile_flag = options.pop(
        "compile", env.decorator_default("compile", False))
    mode = options.pop("mode", None)
    if mode is None:
        mode = Mode.COMPILED_DT if compile_flag else default_mode()
    dump = options.pop("dump", env.decorator_default("dump", False))
    debug = options.pop("debug", env.decorator_default("debug", False))
    cache = options.pop("cache", env.decorator_default("cache", None))
    force = options.pop("force", env.decorator_default("force", False))
    lint = options.pop("lint", env.decorator_default("lint", None))
    extra = options.pop("options", None)
    if options:
        raise OmpError(f"unknown omp decorator options: "
                       f"{sorted(options)}")
    return transform(target, mode, dump=dump, debug=debug, cache=cache,
                     force=bool(force), options=extra, live_globals=True,
                     lint=lint)


# ----------------------------------------------------------------------
# Module-level runtime library, delegating to the default runtime.

def _default_runtime():
    from repro.cruntime import cruntime
    return cruntime


_active_runtime = None


def use_runtime(runtime_or_mode) -> None:
    """Select the runtime behind the module-level ``omp_*`` functions.

    Accepts a :class:`Mode`, a mode name, or a runtime instance.  The
    paper's ``import omp4py.pure`` corresponds to
    ``use_runtime("pure")``.
    """
    global _active_runtime
    if hasattr(runtime_or_mode, "parallel_run"):
        _active_runtime = runtime_or_mode
        return
    from repro.decorator import runtime_for
    _active_runtime = runtime_for(Mode.parse(runtime_or_mode))


def active_runtime():
    return _active_runtime if _active_runtime is not None \
        else _default_runtime()


def _make_api_function(public_name: str, method_name: str):
    def api_function(*args, **kwargs):
        return getattr(active_runtime(), method_name)(*args, **kwargs)

    api_function.__name__ = public_name
    api_function.__qualname__ = public_name
    api_function.__doc__ = (
        f"OpenMP runtime library function; delegates to the active "
        f"runtime's ``{method_name}``.")
    return api_function


_API_FUNCTIONS = {
    public: _make_api_function(public, method)
    for public, method in OMP_API_METHODS.items()
}
globals().update(_API_FUNCTIONS)

__all__ = ["Mode", "omp", "transform", "use_runtime", "active_runtime",
           *_API_FUNCTIONS]

# Keep linters honest about the dynamic exports.
assert all(name in globals() for name in __all__)
assert inspect.isfunction(globals()["omp_get_thread_num"])
