"""Unit tests for the directive parser and its validation rules."""

import pytest

from repro.directives import parse_directive
from repro.errors import OmpSyntaxError


class TestDirectiveNames:
    def test_simple_directive(self):
        assert parse_directive("parallel").name == "parallel"

    def test_combined_directive_with_space(self):
        assert parse_directive("parallel for").name == "parallel for"

    def test_combined_directive_with_underscore(self):
        # OpenMP 6.0 syntax, supported per the paper (Section V).
        assert parse_directive("parallel_for").name == "parallel for"

    def test_parallel_sections(self):
        assert parse_directive(
            "parallel sections").name == "parallel sections"

    def test_declare_reduction_two_words(self):
        directive = parse_directive(
            "declare reduction(myop: omp_out + omp_in) initializer(0)")
        assert directive.name == "declare reduction"
        assert directive.arguments == ("myop",)

    def test_unknown_directive(self):
        with pytest.raises(OmpSyntaxError, match="unknown directive"):
            parse_directive("paralel")

    def test_empty_directive(self):
        with pytest.raises(OmpSyntaxError):
            parse_directive("")

    def test_directive_name_case_is_normalised(self):
        assert parse_directive("PARALLEL").name == "parallel"


class TestClauseParsing:
    def test_varlist_clause(self):
        directive = parse_directive("parallel private(a, b, c)")
        assert directive.clause_vars("private") == ("a", "b", "c")

    def test_repeated_varlist_clauses_merge(self):
        directive = parse_directive("parallel private(a) private(b)")
        assert directive.clause_vars("private") == ("a", "b")

    def test_expr_clause_keeps_raw_text(self):
        directive = parse_directive("parallel if(n > 10 and m < 3)")
        assert directive.clause("if").expr == "n > 10 and m < 3"

    def test_num_threads_expression(self):
        directive = parse_directive("parallel num_threads(2 * k)")
        assert directive.clause("num_threads").expr == "2 * k"

    def test_reduction_symbol_operator(self):
        clause = parse_directive("for reduction(+: x)").clause("reduction")
        assert clause.op == "+"
        assert clause.vars == ("x",)

    @pytest.mark.parametrize("op", ["+", "*", "-", "&", "|", "^", "&&",
                                    "||", "min", "max", "and", "or"])
    def test_all_builtin_reduction_operators(self, op):
        clause = parse_directive(
            f"for reduction({op}: x)").clause("reduction")
        assert clause.op == op

    def test_reduction_user_identifier(self):
        clause = parse_directive(
            "for reduction(myop: x, y)").clause("reduction")
        assert clause.op == "myop"
        assert clause.vars == ("x", "y")

    def test_schedule_kind_only(self):
        clause = parse_directive("for schedule(dynamic)").clause("schedule")
        assert clause.op == "dynamic"
        assert clause.expr is None

    def test_schedule_with_chunk(self):
        clause = parse_directive(
            "for schedule(guided, 4 * c)").clause("schedule")
        assert clause.op == "guided"
        assert clause.expr == "4 * c"

    def test_schedule_runtime_rejects_chunk(self):
        with pytest.raises(OmpSyntaxError):
            parse_directive("for schedule(runtime, 4)")

    def test_schedule_invalid_kind(self):
        with pytest.raises(OmpSyntaxError, match="schedule kind"):
            parse_directive("for schedule(bogus)")

    @pytest.mark.parametrize("policy", ["shared", "none", "private",
                                        "firstprivate"])
    def test_default_policies(self, policy):
        clause = parse_directive(
            f"parallel default({policy})").clause("default")
        assert clause.op == policy

    def test_default_invalid_policy(self):
        with pytest.raises(OmpSyntaxError, match="default policy"):
            parse_directive("parallel default(everything)")

    def test_nowait_bare(self):
        assert parse_directive("for nowait").has_clause("nowait")

    def test_nowait_with_argument(self):
        # Optional argument form from recent standards (paper Section V).
        clause = parse_directive("for nowait(n > 2)").clause("nowait")
        assert clause.expr == "n > 2"

    def test_collapse(self):
        assert parse_directive("for collapse(2)").clause(
            "collapse").expr == "2"

    def test_clause_separators_commas_and_semicolons(self):
        directive = parse_directive("for private(a), nowait; ordered")
        assert directive.has_clause("private")
        assert directive.has_clause("nowait")
        assert directive.has_clause("ordered")

    def test_empty_varlist_rejected(self):
        with pytest.raises(OmpSyntaxError, match="empty list"):
            parse_directive("parallel private()")

    def test_empty_expression_rejected(self):
        with pytest.raises(OmpSyntaxError, match="empty expression"):
            parse_directive("parallel if()")


class TestDirectArguments:
    def test_critical_named(self):
        assert parse_directive("critical(queue)").arguments == ("queue",)

    def test_critical_unnamed(self):
        assert parse_directive("critical").arguments == ()

    def test_critical_two_names_rejected(self):
        with pytest.raises(OmpSyntaxError, match="at most 1"):
            parse_directive("critical(a, b)")

    def test_flush_with_list(self):
        assert parse_directive("flush(a, b)").arguments == ("a", "b")

    def test_flush_bare(self):
        assert parse_directive("flush").arguments == ()

    def test_threadprivate_requires_arguments(self):
        with pytest.raises(OmpSyntaxError, match="requires arguments"):
            parse_directive("threadprivate")


class TestValidation:
    def test_clause_not_valid_on_directive(self):
        with pytest.raises(OmpSyntaxError, match="not valid"):
            parse_directive("barrier nowait")

    def test_schedule_not_valid_on_parallel(self):
        with pytest.raises(OmpSyntaxError, match="not valid"):
            parse_directive("parallel schedule(static)")

    def test_non_repeatable_clause_twice(self):
        with pytest.raises(OmpSyntaxError, match="at most once"):
            parse_directive("for schedule(static) schedule(dynamic)")

    def test_copyprivate_nowait_exclusive(self):
        with pytest.raises(OmpSyntaxError, match="mutually exclusive"):
            parse_directive("single copyprivate(x) nowait")

    def test_variable_in_two_sharing_clauses(self):
        with pytest.raises(OmpSyntaxError, match="appears in both"):
            parse_directive("parallel private(x) shared(x)")

    def test_firstprivate_lastprivate_same_var_allowed(self):
        directive = parse_directive("for firstprivate(x) lastprivate(x)")
        assert directive.clause_vars("firstprivate") == ("x",)
        assert directive.clause_vars("lastprivate") == ("x",)

    def test_task_accepts_if_and_untied(self):
        directive = parse_directive("task if(n > 30) untied")
        assert directive.clause("if").expr == "n > 30"
        assert directive.has_clause("untied")

    def test_source_is_preserved(self):
        text = "parallel for reduction(+:x)"
        assert parse_directive(text).source == text


class TestRoundTrip:
    """str(directive) must reparse to an equivalent directive."""

    @pytest.mark.parametrize("text", [
        "parallel",
        "parallel num_threads(4) if(n > 2)",
        "parallel for reduction(+: x) schedule(dynamic, 8)",
        "for collapse(3) ordered nowait",
        "single copyprivate(a, b)",
        "sections lastprivate(v) nowait",
        "critical(region)",
        "task if(depth < 4) untied firstprivate(x)",
        "threadprivate(counter)",
    ])
    def test_round_trip(self, text):
        first = parse_directive(text)
        second = parse_directive(str(first))
        assert second.name == first.name
        assert second.arguments == first.arguments
        assert {c.name for c in second.clauses} == {
            c.name for c in first.clauses}


class TestMoreParserEdges:
    def test_number_in_varlist_rejected(self):
        with pytest.raises(OmpSyntaxError, match="identifier"):
            parse_directive("parallel private(1)")

    def test_depend_clause_parses(self):
        directive = parse_directive("task depend(in: a, b) "
                                    "depend(out: c) depend(inout: d)")
        ops = [(c.op, c.vars) for c in directive.all_clauses("depend")]
        assert ops == [("in", ("a", "b")), ("out", ("c",)),
                       ("inout", ("d",))]

    def test_depend_bad_type(self):
        with pytest.raises(OmpSyntaxError, match="in/out/inout"):
            parse_directive("task depend(between: a)")

    def test_taskloop_clauses(self):
        directive = parse_directive(
            "taskloop grainsize(64) nogroup if(n > 10)")
        assert directive.clause("grainsize").expr == "64"
        assert directive.has_clause("nogroup")

    def test_taskloop_num_tasks(self):
        directive = parse_directive("taskloop num_tasks(2 * t)")
        assert directive.clause("num_tasks").expr == "2 * t"
