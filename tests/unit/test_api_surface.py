"""The public API surface: exports, display_env, and metadata."""

import pytest

import repro
from repro.transform.api_map import OMP_API_METHODS


class TestExports:
    def test_all_api_functions_exported(self):
        for name in OMP_API_METHODS:
            assert hasattr(repro, name), f"missing export {name}"

    def test_dunder_all_is_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_names(self):
        assert callable(repro.omp)
        assert callable(repro.transform)
        assert repro.Mode.HYBRID.value == "hybrid"
        assert len(repro.ALL_MODES) == 4
        assert isinstance(repro.__version__, str)

    def test_error_hierarchy(self):
        assert issubclass(repro.OmpSyntaxError, repro.OmpError)
        assert issubclass(repro.OmpSyntaxError, SyntaxError)
        assert issubclass(repro.OmpRuntimeError, RuntimeError)
        assert issubclass(repro.OmpTransformError, repro.OmpError)

    def test_pure_module_mirrors_api(self):
        from repro import pure
        for name in OMP_API_METHODS:
            assert hasattr(pure, name), f"pure missing {name}"


class TestDisplayEnv:
    def test_format(self, capsys):
        repro.omp_display_env()
        err = capsys.readouterr().err
        assert err.startswith("OPENMP DISPLAY ENVIRONMENT BEGIN")
        assert err.rstrip().endswith("OPENMP DISPLAY ENVIRONMENT END")
        assert "OMP_NUM_THREADS" in err
        assert "OMP_SCHEDULE = 'STATIC'" in err

    def test_verbose_adds_runtime_info(self, capsys):
        repro.omp_display_env(verbose=True)
        err = capsys.readouterr().err
        assert "OMP4PY_RUNTIME" in err
        assert "OMP4PY_NUM_PROCS" in err

    def test_reflects_icv_changes(self, capsys):
        from repro.cruntime import cruntime
        cruntime.set_schedule("dynamic", 5)
        try:
            repro.omp_display_env()
            assert "OMP_SCHEDULE = 'DYNAMIC,5'" in capsys.readouterr().err
        finally:
            cruntime.set_schedule("static")


class TestVersionedMetadata:
    def test_transformed_functions_carry_metadata(self):
        fn = repro.transform(_subject, repro.Mode.PURE)
        assert fn.__omp_mode__ is repro.Mode.PURE
        assert "parallel_run" in fn.__omp_source__
        assert fn.__name__ == "_subject"
        assert fn.__doc__ == "Docstrings survive transformation."


def _subject(n):
    """Docstrings survive transformation."""
    from repro import omp
    with omp("parallel num_threads(2)"):
        pass
    return n
