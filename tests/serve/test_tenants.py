"""Tenant registry: budgets, the thread ledger, place partitions."""

from __future__ import annotations

import pytest

from repro.errors import OmpError
from repro.serve.tenants import (
    DuplicateTenantError,
    TenantDirectory,
    partition_places,
)

CPUS8 = tuple(range(8))


def test_partition_weights_by_budget():
    parts = partition_places({"a": 3, "b": 1}, CPUS8)
    assert parts["a"] == tuple((cpu,) for cpu in range(6))
    assert parts["b"] == tuple((cpu,) for cpu in (6, 7))


def test_partition_one_cpu_floor():
    parts = partition_places({"a": 100, "b": 1}, (0, 1, 2, 3))
    assert parts["a"] == ((0,), (1,), (2,))
    assert parts["b"] == ((3,),)


def test_partition_degrades_when_cpus_scarce():
    parts = partition_places({"a": 2, "b": 2}, (0,))
    assert parts["a"] == parts["b"] == ((0,),)


def test_partition_covers_every_cpu_exactly_once():
    parts = partition_places({"a": 2, "b": 5, "c": 1}, CPUS8)
    flat = [cpu for places in parts.values()
            for (cpu,) in places]
    assert sorted(flat) == list(CPUS8)


def test_duplicate_tenant_raises():
    directory = TenantDirectory(cpus=CPUS8)
    directory.register("team-a", 4)
    with pytest.raises(DuplicateTenantError):
        directory.register("team-a", 2)


def test_invalid_budgets_rejected():
    directory = TenantDirectory(cpus=CPUS8)
    with pytest.raises(OmpError):
        directory.register("", 4)
    with pytest.raises(OmpError):
        directory.register("team-a", 0)


def test_registration_repartitions_existing_tenants():
    directory = TenantDirectory(cpus=CPUS8)
    directory.register("a", 4)
    assert len(directory.get("a").places) == 8
    directory.register("b", 4)
    assert len(directory.get("a").places) == 4
    assert len(directory.get("b").places) == 4


def test_clamp_threads():
    directory = TenantDirectory(cpus=CPUS8)
    directory.register("a", 4)
    assert directory.clamp_threads("a", 16) == 4
    assert directory.clamp_threads("a", 2) == 2
    assert directory.clamp_threads("a", 0) == 1
    with pytest.raises(OmpError):
        directory.clamp_threads("ghost", 1)


def test_ledger_charges_and_releases():
    directory = TenantDirectory(cpus=CPUS8)
    directory.register("a", 4)
    assert directory.try_acquire("a", 3)
    assert directory.inflight("a") == 3
    assert directory.can_acquire("a", 1)
    assert not directory.can_acquire("a", 2)
    assert not directory.try_acquire("a", 2)
    assert directory.throttles["a"] == 1
    directory.release("a", 3)
    assert directory.inflight("a") == 0
    # Release never goes negative even if crash paths double-release.
    directory.release("a", 99)
    assert directory.inflight("a") == 0


def test_budget_one_tenant_serializes():
    directory = TenantDirectory(cpus=CPUS8)
    directory.register("solo", 1)
    assert directory.try_acquire("solo", 1)
    assert not directory.try_acquire("solo", 1)
    directory.release("solo", 1)
    assert directory.try_acquire("solo", 1)


def test_unknown_tenant_never_acquires():
    directory = TenantDirectory(cpus=CPUS8)
    assert not directory.can_acquire("ghost", 1)
    assert not directory.try_acquire("ghost", 1)


def test_snapshot_shape():
    directory = TenantDirectory(cpus=CPUS8)
    directory.register("a", 2)
    directory.try_acquire("a", 2)
    (entry,) = directory.snapshot()
    assert entry["name"] == "a"
    assert entry["max_threads"] == 2
    assert entry["inflight_threads"] == 2
    assert entry["places"]
