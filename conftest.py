"""Repo-root pytest bootstrap: make ``src/`` importable when the
package is not pip-installed (e.g. offline checkouts)."""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
