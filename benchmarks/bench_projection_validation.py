"""Projection-validation benchmark: the repro.analysis.validate gate.

Thin driver over :mod:`repro.analysis.validate` in the same shape as
the other ``benchmarks/`` scripts: a CLI with ``--check`` for CI, a
JSON artifact, and ``smoke_records()`` for ``reproduce.py --smoke`` so
every smoke run persists the projected-vs-measured error table into
``BENCH_smoke.json``.

On a free-threaded interpreter (or under ``OMP4PY_BACKEND=nogil``)
this is the paper's central comparison: the projection model's output
against truly-parallel measured wall time.  Under a GIL it degrades to
the backend-independent identity checks (see the validate module).

Usage::

    python benchmarks/bench_projection_validation.py [--threads 4]
        [--profile test] [--repeats 3] [--bound 0.25] [--check]
        [--out results] [--summary PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.analysis import validate  # noqa: E402


def smoke_records(threads: int = 2, profile: str = "test",
                  repeats: int = 2) -> tuple[list[str], list[dict]]:
    """Entry point for ``reproduce.py --smoke``.

    Returns ``(failures, records)``: one ``BENCH_smoke.json`` kernel
    per validation row, and a failure for every row beyond the bound.
    """
    rows = validate.run_validation(threads=threads, profile=profile,
                                   repeats=repeats)
    failures: list[str] = []
    records: list[dict] = []
    for row in rows:
        print(f"[reproduce] projection-validate {row.line()}")
        records.append({
            "kernel": f"projection-validate/{row.app}",
            "wall_s": row.wall_s,
            "threads": row.threads,
            "mode": "pure",
            "backend": row.backend,
            "check": row.kind,
            "model_projected_s": row.model_projected_s,
            "projection_error": row.error,
        })
        if not row.passed:
            failures.append(
                f"projection-validate {row.app}@{row.threads}thr "
                f"({row.kind}): error {row.error * 100:.1f}% exceeds "
                f"the {row.bound * 100:.0f}% bound")
    return failures, records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--apps", default=",".join(validate.SMOKE_APPS))
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--profile", default="test",
                        choices=("test", "default", "paper"))
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--bound", type=float,
                        default=validate.DEFAULT_BOUND)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when any row exceeds the bound")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write bench_projection_validation.json")
    parser.add_argument("--summary", default=None, metavar="PATH",
                        help="write a markdown table (CI step summary)")
    args = parser.parse_args(argv)

    argv_inner = ["--apps", args.apps, "--threads", str(args.threads),
                  "--profile", args.profile,
                  "--repeats", str(args.repeats),
                  "--bound", str(args.bound)]
    if args.check:
        argv_inner.append("--check")
    if args.summary:
        argv_inner += ["--summary", args.summary]
    if args.out:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        json_path = out_dir / "bench_projection_validation.json"
        argv_inner += ["--json", str(json_path)]
        code = validate.main(argv_inner)
        # Echo the artifact location in the bench idiom.
        if json_path.exists():
            payload = json.loads(json_path.read_text(encoding="utf-8"))
            print(f"[projection-validate] backend={payload['backend']} "
                  f"max_error={payload['max_error'] * 100:.1f}% -> "
                  f"{json_path}")
        return code
    return validate.main(argv_inner)


if __name__ == "__main__":
    raise SystemExit(main())
