"""Task-parallel quicksort (the paper's *qsort*).

Paper configuration: 400M floats; constructs: ``parallel``, ``single``,
``task`` with the ``if`` clause (Table I).  This is the benchmark PyOMP
cannot express: the recursive algorithm needs tasks with the ``if``
clause, unsupported in PyOMP v0.2.0 — reproduced by the envelope
checker.

Partitioning is inherently sequential pointer-chasing, so *CompiledDT*
falls back to *Compiled* here; the paper's qsort speedups come from
task parallelism (its best scaling case at 16.2×).
"""

from __future__ import annotations

import random

import numpy as np

from repro.apps.base import AppSpec
from repro.api import omp

#: Below this size a task is not worth its overhead (the if clause).
TASK_CUTOFF = 2048
#: Below this size insertion sort beats partitioning.
SMALL_CUTOFF = 32


def make_input(n: int, seed: int = 852) -> dict:
    rng = random.Random(seed)
    return {"data": [rng.random() for _ in range(n)], "n": n}


def make_input_dt(n: int, seed: int = 852) -> dict:
    # Partitioning is scalar pointer-chasing: a NumPy array would only
    # add per-element boxing cost, so the typed variant keeps the list
    # (as typed Cython would keep a C array it indexes scalarly).
    return make_input(n, seed)


def sequential(data, n):
    data[:] = sorted(data[:n])
    return data


def kernel(data, n, threads):
    def insertion(lo, hi):
        for idx in range(lo + 1, hi):
            value = data[idx]
            pos = idx - 1
            while pos >= lo and data[pos] > value:
                data[pos + 1] = data[pos]
                pos -= 1
            data[pos + 1] = value

    def partition(lo, hi):
        mid = (lo + hi) // 2
        # Median-of-three pivot to tame sorted inputs.
        if data[mid] < data[lo]:
            data[lo], data[mid] = data[mid], data[lo]
        if data[hi - 1] < data[lo]:
            data[lo], data[hi - 1] = data[hi - 1], data[lo]
        if data[hi - 1] < data[mid]:
            data[mid], data[hi - 1] = data[hi - 1], data[mid]
        pivot = data[mid]
        left = lo
        right = hi - 1
        while True:
            while data[left] < pivot:
                left += 1
            while data[right] > pivot:
                right -= 1
            if left >= right:
                return right
            data[left], data[right] = data[right], data[left]
            left += 1
            right -= 1

    def sort_range(lo, hi):
        while hi - lo > SMALL_CUTOFF:
            split = partition(lo, hi)
            with omp("task if(split - lo > 2048) firstprivate(lo, split)"):
                sort_range(lo, split + 1)
            lo = split + 1
        insertion(lo, hi)

    with omp("parallel num_threads(threads)"):
        with omp("single"):
            sort_range(0, n)
    return data


# CompiledDT uses the same source: partitioning does not type-check into
# a kernel (data-dependent control flow), so the typed pipeline falls
# back to the Compiled optimizations — the honest Cython behaviour.
kernel_dt = kernel


def pyomp_kernel(data, n, threads):
    with openmp("parallel num_threads(threads)"):  # noqa: F821
        with openmp("single"):  # noqa: F821
            with openmp("task if(n > 2048)"):  # noqa: F821
                pass
    return data


def verify(result, reference) -> bool:
    return bool(np.array_equal(np.asarray(result), np.asarray(reference)))


SPEC = AppSpec(
    name="qsort",
    title="Quicksort",
    make_input=make_input,
    make_input_dt=make_input_dt,
    sequential=sequential,
    kernel=kernel,
    kernel_dt=kernel_dt,
    pyomp=pyomp_kernel,
    verify=verify,
    sizes={
        "test": {"n": 5_000},
        "default": {"n": 60_000},
        "paper": {"n": 400_000_000},
    },
    table1=("parallel, single, task with if clause", "Implicit barriers"),
)
