"""Lowering of ``threadprivate`` and ``declare reduction``.

``threadprivate(x)`` registers module-level ``x`` as per-thread storage:
within the decorated object, loads of ``x`` become
``__omp__.tp_load(key, 'x', globals())`` and stores become
``__omp__.tp_store(key, value)``; the ``copyin`` clause broadcasts the
master's copy at region entry.  Keys are module-qualified so distinct
modules' variables never collide.

``declare reduction(ident : combiner) initializer(expr)`` registers a
user reduction; the combiner is an expression over ``omp_out``/``omp_in``
and the initializer produces the identity value (required, since Python
has no type-default initial values).
"""

from __future__ import annotations

import ast

from repro.directives.model import Directive
from repro.errors import OmpSyntaxError
from repro.transform import astutil
from repro.transform.context import TransformContext


def handle_threadprivate(node: ast.Expr, directive: Directive,
                         ctx: TransformContext) -> list[ast.stmt]:
    for name in directive.arguments:
        # The name refers to a module-level variable; assignments inside
        # the decorated object are rewritten to per-thread stores, so an
        # in-function assignment does not make it a local.
        if name not in ctx.module_globals:
            raise OmpSyntaxError(
                f"threadprivate variable {name!r} must be a module-level "
                f"variable", directive=directive.source)
        ctx.threadprivate[name] = f"{ctx.module_name}.{name}"
    return []  # registration is purely static


def handle_declare_reduction(node: ast.Expr, directive: Directive,
                             ctx: TransformContext) -> list[ast.stmt]:
    name = directive.arguments[0]
    combiner_clause = directive.clause("combiner")
    initializer_clause = directive.clause("initializer")
    if initializer_clause is None:
        raise OmpSyntaxError(
            "declare reduction requires an initializer(...) clause",
            directive=directive.source)
    combiner_expr = astutil.parse_expression(
        combiner_clause.expr, directive.source)
    initializer_expr = astutil.parse_expression(
        initializer_clause.expr, directive.source)

    lambda_args = ast.arguments(
        posonlyargs=[], args=[ast.arg(arg="omp_out"), ast.arg(arg="omp_in")],
        vararg=None, kwonlyargs=[], kw_defaults=[], kwarg=None, defaults=[])
    combiner = ast.Lambda(args=lambda_args, body=combiner_expr)
    empty_args = ast.arguments(posonlyargs=[], args=[], vararg=None,
                               kwonlyargs=[], kw_defaults=[], kwarg=None,
                               defaults=[])
    initializer = ast.Lambda(args=empty_args, body=initializer_expr)

    stmt = astutil.rt_call_stmt(
        ctx.rt_name, "declare_reduction",
        [astutil.constant(name), combiner, initializer])
    astutil.fix_locations(stmt, node)
    return [stmt]


class ThreadprivateRewriter(ast.NodeTransformer):
    """Rewrites accesses to threadprivate names after transformation."""

    def __init__(self, ctx: TransformContext):
        self.ctx = ctx

    def rewrite(self, stmt: ast.stmt) -> ast.stmt:
        result = self.visit(stmt)
        ast.fix_missing_locations(result)
        return result

    def _key(self, name: str) -> str:
        return self.ctx.threadprivate[name]

    def _load(self, name: str) -> ast.expr:
        return astutil.rt_call(
            self.ctx.rt_name, "tp_load",
            [astutil.constant(self._key(name)), astutil.constant(name),
             ast.Call(func=astutil.name_load("globals"), args=[],
                      keywords=[])])

    def visit_Name(self, node: ast.Name):
        if node.id in self.ctx.threadprivate and isinstance(
                node.ctx, ast.Load):
            return ast.copy_location(self._load(node.id), node)
        return node

    def visit_Assign(self, node: ast.Assign):
        self.generic_visit(node)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id in self.ctx.threadprivate:
            name = node.targets[0].id
            return ast.copy_location(astutil.rt_call_stmt(
                self.ctx.rt_name, "tp_store",
                [astutil.constant(self._key(name)), node.value]), node)
        for target in node.targets:
            self._reject_compound(target)
        return node

    def visit_AugAssign(self, node: ast.AugAssign):
        self.generic_visit(node)
        if isinstance(node.target, ast.Name) \
                and node.target.id in self.ctx.threadprivate:
            name = node.target.id
            combined = ast.BinOp(left=self._load(name), op=node.op,
                                 right=node.value)
            return ast.copy_location(astutil.rt_call_stmt(
                self.ctx.rt_name, "tp_store",
                [astutil.constant(self._key(name)), combined]), node)
        return node

    def _reject_compound(self, target: ast.expr) -> None:
        for child in ast.walk(target):
            if isinstance(child, ast.Name) \
                    and child.id in self.ctx.threadprivate \
                    and isinstance(child.ctx, ast.Store):
                raise OmpSyntaxError(
                    f"unsupported compound assignment to threadprivate "
                    f"variable {child.id!r}")
