"""Artifact-style benchmark driver, mirroring the paper's appendix::

    python examples/main.py <mode> <test> <threads> [profile]

* ``mode``: 0 Pure, 1 Hybrid, 2 Compiled, 3 CompiledDT, -1 PyOMP
* ``test``: fft | jacobi | lu | md | pi | qsort | bfs (maze) |
  wordcount | clustering (graphic) — plus ``jacobi-mpi <nodes>``
* ``threads``: OpenMP team size
* ``profile``: test | default | paper (problem size; default "default")

Prints the benchmark result, the measured wall time, and the projected
no-GIL time (see DESIGN.md for the projection).
"""

import sys

from repro.analysis.runner import run_point, run_pyomp_point
from repro.apps import get_app
from repro.modes import Mode

#: The paper's alternative benchmark spellings.
ALIASES = {"maze": "bfs", "graphic": "clustering", "lud": "lu"}


def main(argv) -> int:
    if len(argv) < 3:
        print(__doc__)
        return 2
    mode_code = int(argv[0])
    test = ALIASES.get(argv[1], argv[1])
    threads = int(argv[2])
    profile = argv[3] if len(argv) > 3 else "default"
    overrides = {}
    if test == "wordcount" and len(argv) > 4:
        # The artifact appendix passes a corpus file as the final
        # argument (e.g. the decompressed Wikipedia dump).
        overrides["path"] = argv[4]

    if test == "jacobi-mpi":
        from repro.analysis.timing import measure_mpi
        from repro.apps import jacobi_mpi
        nodes = threads  # artifact uses mpirun -n; here: arg reuse
        sizes = jacobi_mpi.SIZES[profile]
        measurement = measure_mpi(
            jacobi_mpi.solve, nodes, nodes=nodes, threads=16,
            mode=Mode.parse(mode_code), **sizes)
        print(f"jacobi-mpi nodes={nodes} wall={measurement.wall:.4f}s "
              f"projected={measurement.projected:.4f}s")
        return 0

    spec = get_app(test)
    reference = spec.sequential(**spec.inputs(profile, **overrides))
    if mode_code == -1:
        point = run_pyomp_point(spec, threads, profile,
                                reference=reference, **overrides)
        if point.error is not None:
            print(f"PyOMP cannot run {test}: {point.error}")
            return 1
    else:
        point = run_point(spec, Mode.parse(mode_code), threads, profile,
                          reference=reference, **overrides)
    status = "ok" if point.verified else "RESULT MISMATCH"
    print(f"{test} ({point.series}, {threads} threads, {profile}): "
          f"wall={point.wall:.4f}s projected={point.projected:.4f}s "
          f"[{status}]")
    print(f"  result: {render_result(test, point.measurement.value)}")
    return 0 if point.verified else 1


def render_result(test: str, value) -> str:
    """One-line benchmark result (the artifact's 'Output: execution
    time and benchmark result')."""
    import numpy as np
    if test == "pi":
        return f"pi ~= {float(value):.12f}"
    if test == "jacobi":
        x = np.asarray(value, dtype=float)
        return f"x[0..2] = {x[0]:.6f}, {x[1]:.6f}, {x[2]:.6f}"
    if test == "lu":
        factored = np.asarray(value, dtype=float)
        return f"sum|LU| = {np.abs(factored).sum():.6e}"
    if test == "md":
        potential, kinetic = value
        return (f"potential = {potential:.6f}, kinetic = {kinetic:.6f}, "
                f"total = {potential + kinetic:.6f}")
    if test == "fft":
        spectrum = np.abs(np.asarray(value[0]) + 1j * np.asarray(value[1]))
        return f"|X| checksum = {spectrum.sum():.6f}"
    if test == "qsort":
        data = value
        return (f"sorted {len(data)} values, "
                f"min = {data[0]:.6f}, max = {data[-1]:.6f}")
    if test == "bfs":
        reached, count = value
        return f"exit reached = {reached}, reachable cells = {count}"
    if test == "clustering":
        coefficients = list(value)
        mean = sum(coefficients) / max(1, len(coefficients))
        return f"mean clustering coefficient = {mean:.6f}"
    if test == "wordcount":
        top_word = max(value, key=value.get)
        return (f"{len(value)} distinct words; "
                f"top: {top_word!r} x{value[top_word]}")
    return repr(value)[:120]


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
