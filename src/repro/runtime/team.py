"""Thread teams and the task-draining barrier.

A team is created by every ``parallel`` directive (including serialized
ones of size 1).  Its barrier implements the semantics the paper
describes: threads arriving early consume pending tasks from the shared
queue instead of idling, are reawakened when new tasks are submitted
while they wait, and the barrier releases only once every thread has
arrived *and* every task of the team has completed.
"""

from __future__ import annotations

import threading

from repro.runtime.tasking import TaskQueue


class Barrier:
    """Generation-counted barrier that drains the team's task queue."""

    __slots__ = ("team", "cond", "count", "generation")

    def __init__(self, team):
        self.team = team
        self.cond = threading.Condition()
        self.count = 0
        self.generation = 0

    def wait(self, execute_task) -> None:
        """Block until the whole team arrives and all tasks are done.

        ``execute_task`` is the runtime callback that runs one claimed
        task node (it lives on the runtime, not here, because it must
        push a context frame).

        A *broken* team (a member left the region via an exception, so
        barrier arrivals can no longer match up) releases every waiter
        immediately — the join will re-raise the recorded error.
        """
        team = self.team
        if team.broken:
            return
        if team.size == 1 and team.pending.load() == 0 \
                and team.task_queue.head.next is None:
            return
        with self.cond:
            self.count += 1
            my_generation = self.generation
            self.cond.notify_all()
        while True:
            if team.broken:
                with self.cond:
                    self.cond.notify_all()
                return
            node = team.task_queue.claim_next()
            if node is not None:
                execute_task(node)
                continue
            with self.cond:
                if self.generation != my_generation:
                    return
                if (self.count >= team.size
                        and team.pending.load() == 0):
                    self.generation += 1
                    self.count = 0
                    self.cond.notify_all()
                    return
                if not team.task_queue.has_free():
                    # Reawakened by new tasks, task completions, or
                    # the releasing thread; the timeout is a safety
                    # net, not the signalling mechanism.
                    self.cond.wait(timeout=0.05)

    def poke(self) -> None:
        """Wake waiters after a task submission or completion."""
        if self.count > 0:
            with self.cond:
                self.cond.notify_all()

    def poke_all(self) -> None:
        """Unconditional wake-up (team breakage)."""
        with self.cond:
            self.cond.notify_all()


class Team:
    """A team of threads executing one parallel region."""

    __slots__ = ("runtime", "parent_frame", "size", "level", "active_level",
                 "barrier", "task_queue", "pending", "slots", "slots_lock",
                 "mutex", "cpu_times", "errors", "errors_lock", "broken")

    def __init__(self, runtime, parent_frame, size: int):
        self.runtime = runtime
        self.parent_frame = parent_frame
        self.size = size
        if parent_frame is None:
            # The implicit single-thread team of an initial thread.
            self.level = 0
            self.active_level = 0
        else:
            parent_team = parent_frame.team
            self.level = parent_team.level + 1
            self.active_level = parent_team.active_level + (
                1 if size > 1 else 0)
        lowlevel = runtime.lowlevel
        self.barrier = Barrier(self)
        self.task_queue = TaskQueue(lowlevel)
        #: Tasks submitted to this team and not yet completed.
        self.pending = lowlevel.make_counter(0)
        #: Shared worksharing slots, keyed by per-thread region ordinal.
        self.slots: dict = {}
        self.slots_lock = lowlevel.make_mutex()
        #: Team mutex used by generated reduction epilogues
        #: (``__omp__.mutex_lock()`` in the paper's Fig. 2).
        self.mutex = threading.RLock()
        self.cpu_times = [0.0] * size
        self.errors: list = []
        self.errors_lock = threading.Lock()
        #: Set when a member leaves the region abnormally; every
        #: synchronization construct then drains instead of blocking.
        self.broken = False

    def record_error(self, thread_num: int, error: BaseException) -> None:
        with self.errors_lock:
            self.errors.append((thread_num, error))
        self.broken = True
        self.barrier.poke_all()

    def get_slot(self, key, factory):
        return self.runtime.lowlevel.slot_get_or_create(
            self.slots, self.slots_lock, key, factory)
