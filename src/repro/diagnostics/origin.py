"""Generated-code → user-source origin mapping.

The ``@omp`` decorator compiles the transformed AST under a synthetic
filename (``<omp4py:qualname>``) whose line numbers are relative to the
*dedented* original source (the transformer preserves locations through
``copy_location``/``fix_missing_locations``).  This registry records,
per synthetic filename, the real file and the first line of the
original source, so diagnostics can translate any frame inside
generated code back to the user's editor coordinates.

The table is append-only and tiny (one entry per transformed function),
so lookups are plain dict reads with no locking.
"""

from __future__ import annotations

#: synthetic filename -> (original file, line number of the source's
#: first line — usually the decorator line).
_origins: dict[str, tuple[str, int]] = {}


def register_origin(generated_filename: str, source_file: str,
                    first_line: int) -> None:
    """Record where the source compiled under ``generated_filename``
    really lives (idempotent; last registration wins)."""
    _origins[generated_filename] = (source_file, first_line)


def resolve(filename: str, lineno: int) -> tuple[str, int]:
    """Map a frame location to user coordinates.

    Locations in unregistered files (user scripts calling the runtime
    API directly) pass through unchanged.
    """
    entry = _origins.get(filename)
    if entry is None:
        return filename, lineno
    source_file, first_line = entry
    return source_file, first_line + lineno - 1


def format_location(filename: str, lineno: int) -> str:
    """``file:line`` with the origin mapping applied."""
    resolved_file, resolved_line = resolve(filename, lineno)
    return f"{resolved_file}:{resolved_line}"
