"""Admission-control edge cases: shed rule, splitting, requeue order."""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionQueue, QueueFull
from repro.serve.protocol import ServeRequest


def _request(app="pi", tenant="default", **kwargs):
    return ServeRequest(app=app, tenant=tenant, **kwargs)


def test_zero_capacity_is_hand_off_only():
    queue = AdmissionQueue(0)
    # Empty queue + an idle worker: admit (pure hand-off).
    queue.offer(_request(), idle_workers=1)
    assert queue.depth() == 1
    # One request already waiting: capacity 0 sheds, idle or not.
    with pytest.raises(QueueFull):
        queue.offer(_request(), idle_workers=4)
    # Empty queue but no idle worker: shed too.
    queue.drain()
    with pytest.raises(QueueFull) as excinfo:
        queue.offer(_request(), idle_workers=0)
    assert excinfo.value.retry_after > 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        AdmissionQueue(-1)


def test_retry_after_scales_with_depth():
    queue = AdmissionQueue(2)
    queue.mean_service_s = 1.0
    queue.offer(_request(), idle_workers=0)
    queue.offer(_request(), idle_workers=0)
    with pytest.raises(QueueFull) as excinfo:
        queue.offer(_request(), idle_workers=0)
    assert excinfo.value.depth == 2
    assert excinfo.value.retry_after == pytest.approx(3.0)


def test_oversized_burst_splits_at_max_batch():
    queue = AdmissionQueue(16)
    burst = [_request() for _ in range(6)]
    for request in burst:
        queue.offer(request, idle_workers=0)
    batch = queue.next_batch(max_batch=4, can_dispatch=lambda r: True)
    assert [r.id for r in batch] == [r.id for r in burst[:4]]
    rest = queue.next_batch(max_batch=4, can_dispatch=lambda r: True)
    assert [r.id for r in rest] == [r.id for r in burst[4:]]
    assert queue.depth() == 0


def test_batch_coalesces_only_same_group():
    queue = AdmissionQueue(16)
    a1 = _request(app="pi")
    b = _request(app="qsort")
    a2 = _request(app="pi")
    for request in (a1, b, a2):
        queue.offer(request, idle_workers=0)
    batch = queue.next_batch(max_batch=4, can_dispatch=lambda r: True)
    assert [r.id for r in batch] == [a1.id, a2.id]
    assert [r.id for r in queue.drain()] == [b.id]


def test_throttled_head_does_not_block_other_tenants():
    queue = AdmissionQueue(16)
    blocked = _request(tenant="over-budget")
    runnable = _request(tenant="default")
    queue.offer(blocked, idle_workers=0)
    queue.offer(runnable, idle_workers=0)
    batch = queue.next_batch(
        max_batch=4, can_dispatch=lambda r: r.tenant == "default")
    assert [r.id for r in batch] == [runnable.id]
    assert [r.id for r in queue.drain()] == [blocked.id]


def test_requeue_front_preserves_victim_position():
    queue = AdmissionQueue(16)
    victim = _request(app="pi")
    later = _request(app="qsort")
    queue.offer(later, idle_workers=0)
    queue.requeue_front([victim])
    drained = queue.drain()
    assert [r.id for r in drained] == [victim.id, later.id]
