"""Per-construct lowering rules, dispatched by directive name."""

from __future__ import annotations

import ast

from repro.directives.model import Directive
from repro.errors import OmpSyntaxError
from repro.transform.constructs import (loops, parallel, sections,
                                        single_master, sync, taskloop,
                                        tasks, threadprivate)
from repro.transform.context import TransformContext

_STRUCTURED = {
    "parallel": parallel.handle_parallel,
    "parallel for": parallel.handle_parallel_for,
    "parallel sections": parallel.handle_parallel_sections,
    "for": loops.handle_for,
    "ordered": loops.handle_ordered,
    "sections": sections.handle_sections,
    "single": single_master.handle_single,
    "master": single_master.handle_master,
    "critical": sync.handle_critical,
    "atomic": sync.handle_atomic,
    "task": tasks.handle_task,
    "taskloop": taskloop.handle_taskloop,
}

_STANDALONE = {
    "barrier": sync.handle_barrier,
    "taskwait": sync.handle_taskwait,
    "flush": sync.handle_flush,
    "threadprivate": threadprivate.handle_threadprivate,
    "declare reduction": threadprivate.handle_declare_reduction,
}


def dispatch_structured(node: ast.With, directive: Directive,
                        ctx: TransformContext) -> list[ast.stmt]:
    if directive.name == "section":
        raise OmpSyntaxError(
            "'section' must appear directly inside a 'sections' block",
            directive=directive.source)
    handler = _STRUCTURED.get(directive.name)
    if handler is None:  # pragma: no cover - spec and table are in sync
        raise OmpSyntaxError(f"unsupported directive {directive.name!r}",
                             directive=directive.source)
    return handler(node, directive, ctx)


def dispatch_standalone(node: ast.Expr, directive: Directive,
                        ctx: TransformContext) -> list[ast.stmt]:
    handler = _STANDALONE.get(directive.name)
    if handler is None:  # pragma: no cover - spec and table are in sync
        raise OmpSyntaxError(f"unsupported directive {directive.name!r}",
                             directive=directive.source)
    return handler(node, directive, ctx)
