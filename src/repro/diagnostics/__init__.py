"""Runtime diagnostics: flight recorder, stall watchdog, wait-for
graphs, and hang reports (``docs/observability.md``, "Diagnosing
hangs").

Three pieces, all optional and all following the runtime's one
attribute-read-when-disabled cost discipline:

* :class:`~repro.diagnostics.flight.FlightRecorder` — always-cheap
  per-thread ring buffers of the last N sync/work events, fed from the
  OMPT-style tool dispatch points.
* :class:`~repro.diagnostics.state.DiagnosticsState` +
  :mod:`~repro.diagnostics.waitgraph` — blocking records written at
  every event-driven wait site, assembled into a wait-for graph with
  cycle detection.
* :class:`~repro.diagnostics.watchdog.Watchdog` — a daemon thread that
  notices lost progress and emits a structured *deadlock* or *stall*
  report.

Arm everything from the environment (``OMP4PY_FLIGHT``,
``OMP4PY_WATCHDOG`` — see :mod:`repro.env`), programmatically
(:func:`~repro.diagnostics.auto.arm`), or from the command line
(``python -m repro.doctor``).
"""

from repro.diagnostics.envreport import format_display_env, icv_snapshot
from repro.diagnostics.flight import FlightRecorder
from repro.diagnostics.origin import (format_location, register_origin,
                                      resolve)
from repro.diagnostics.state import BlockRecord, DiagnosticsState
from repro.diagnostics.waitgraph import WaitGraph, build_wait_graph
from repro.diagnostics.watchdog import (DEADLOCK_EXIT_CODE, Watchdog,
                                        build_report, format_report)

__all__ = [
    "BlockRecord", "DEADLOCK_EXIT_CODE", "DiagnosticsState",
    "FlightRecorder", "WaitGraph", "Watchdog", "build_report",
    "build_wait_graph", "format_display_env", "format_location",
    "format_report", "icv_snapshot", "register_origin", "resolve",
]
