"""Explicit tasking: the shared task queue and task lifecycle.

The queue is a linked list, as in the paper: each node stores the task
function, its execution state (free / in-progress / completed), a
completion event, and a next-reference.  The pure runtime serialises
appends with the queue mutex; the cruntime substitutes a
``compare_exchange`` on the tail's next-reference (see
:mod:`repro.cruntime.lowlevel`).  State transitions use the counter
interface, so claiming a task is a mutex-guarded CAS in the pure runtime
and an atomic CAS in the cruntime.
"""

from __future__ import annotations

FREE = 0
RUNNING = 1
DONE = 2
#: Deferred but not yet runnable: unsatisfied dependences (the paper's
#: Section V extension).  WAITING nodes are not enqueued; completion of
#: their predecessors releases them to FREE and queues them.
WAITING = 3


class TaskNode:
    """One node of the shared task queue."""

    __slots__ = ("fn", "state", "event", "next", "team", "dep_lock",
                 "dep_done", "successors", "deps_remaining")

    def __init__(self, fn, team, lowlevel):
        self.fn = fn
        self.team = team
        self.state = lowlevel.make_counter(FREE)
        self.event = lowlevel.make_event()
        self.next = None
        # Dependence bookkeeping (inert unless depend clauses are used).
        self.dep_lock = lowlevel.make_mutex()
        self.dep_done = False
        self.successors: list = []
        self.deps_remaining = lowlevel.make_counter(0)

    def claim(self) -> bool:
        """Try to move this node from free to in-progress."""
        return self.state.compare_exchange(FREE, RUNNING)

    def add_successor(self, node: "TaskNode") -> bool:
        """Register a dependent task; ``False`` if already completed
        (the caller then counts this dependence as satisfied)."""
        with self.dep_lock:
            if self.dep_done:
                return False
            self.successors.append(node)
            return True

    def finish(self) -> list["TaskNode"]:
        """Complete the task; return successors that became runnable."""
        with self.dep_lock:
            self.dep_done = True
            ready = [successor for successor in self.successors
                     if successor.deps_remaining.fetch_add(-1) == 1]
            self.successors.clear()
        self.state.store(DONE)
        self.event.set()
        team = self.team
        if team is not None:  # the queue sentinel has no team
            tool = team.runtime.tool
            if tool is not None:
                tool.task_complete(team.runtime.get_thread_num(),
                                   id(self))
        return ready

    @property
    def done(self) -> bool:
        return self.state.load() == DONE


class TaskQueue:
    """Linked-list task queue shared by a team.

    ``head`` is a sentinel; completed prefix nodes are unlinked lazily
    during traversal so walks stay short for producer–consumer patterns.
    """

    __slots__ = ("lowlevel", "mutex", "head", "tail")

    def __init__(self, lowlevel):
        self.lowlevel = lowlevel
        self.mutex = lowlevel.make_mutex()
        sentinel = TaskNode(None, None, lowlevel)
        sentinel.state.store(DONE)
        self.head = sentinel
        self.tail = sentinel

    def append(self, node: TaskNode) -> None:
        self.lowlevel.queue_append(self, node)

    def claim_next(self) -> TaskNode | None:
        """Claim the first free task, unlinking completed prefix nodes.

        The prefix unlink (``self.head = node`` once the old head chain
        is fully completed) is a benign single-reference update: a stale
        head only means a slightly longer walk.
        """
        prev = self.head
        node = prev.next
        while node is not None:
            if node.claim():
                return node
            if node.done and prev is self.head and node.next is not None:
                # Hop the completed prefix forward.
                self.head = node
            prev = node
            node = node.next
        return None

    def has_free(self) -> bool:
        node = self.head.next
        while node is not None:
            if node.state.load() == FREE:
                return True
            node = node.next
        return False
