"""Tests of the explicit tasking subsystem."""

import threading

import pytest

from repro.cruntime import cruntime
from repro.runtime import pure_runtime
from repro.runtime.tasking import DONE, FREE, TaskNode, TaskQueue


@pytest.fixture(params=["pure", "cruntime"])
def rt(request):
    return pure_runtime if request.param == "pure" else cruntime


class TestTaskQueueUnit:
    def test_append_and_claim_order(self, rt):
        queue = TaskQueue(rt.lowlevel)
        nodes = [TaskNode(lambda: None, None, rt.lowlevel)
                 for _ in range(3)]
        for node in nodes:
            queue.append(node)
        claimed = [queue.claim_next() for _ in range(3)]
        assert claimed == nodes
        assert queue.claim_next() is None

    def test_claim_skips_running_and_done(self, rt):
        queue = TaskQueue(rt.lowlevel)
        first = TaskNode(lambda: None, None, rt.lowlevel)
        second = TaskNode(lambda: None, None, rt.lowlevel)
        queue.append(first)
        queue.append(second)
        assert first.claim()  # simulate another thread holding it
        assert queue.claim_next() is second

    def test_states(self, rt):
        node = TaskNode(lambda: None, None, rt.lowlevel)
        assert node.state.load() == FREE
        assert node.claim()
        assert not node.claim()
        node.finish()
        assert node.state.load() == DONE
        assert node.done
        assert node.event.is_set()

    def test_concurrent_claims_unique(self, rt):
        queue = TaskQueue(rt.lowlevel)
        total = 200
        for _ in range(total):
            queue.append(TaskNode(lambda: None, None, rt.lowlevel))
        claimed = []
        lock = threading.Lock()

        def worker():
            while True:
                node = queue.claim_next()
                if node is None:
                    return
                with lock:
                    claimed.append(node)

        workers = [threading.Thread(target=worker) for _ in range(8)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert len(claimed) == total
        assert len(set(map(id, claimed))) == total


class TestTaskExecution:
    def test_all_tasks_complete_before_region_end(self, rt):
        done = []
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                for index in range(20):
                    def work(i=index):
                        with lock:
                            done.append(i)
                    rt.task_submit(work)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=4)
        assert sorted(done) == list(range(20))

    def test_tasks_run_on_multiple_threads_or_at_least_complete(self, rt):
        executors = set()
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                for _ in range(30):
                    def work():
                        with lock:
                            executors.add(rt.get_thread_num())
                    rt.task_submit(work)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=4)
        assert executors  # at least someone ran them; all completed

    def test_undeferred_task_runs_immediately(self, rt):
        order = []

        def region():
            rt.task_submit(lambda: order.append("task"), if_=False)
            order.append("after")

        rt.parallel_run(region, num_threads=1)
        assert order == ["task", "after"]

    def test_taskwait_waits_for_direct_children(self, rt):
        trace = []
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                for index in range(8):
                    def work(i=index):
                        with lock:
                            trace.append(i)
                    rt.task_submit(work)
                rt.task_wait()
                with lock:
                    trace.append("joined")
            rt.single_end(state)

        rt.parallel_run(region, num_threads=3)
        assert trace[-1] == "joined" or "joined" in trace
        joined_at = trace.index("joined")
        assert sorted(trace[:joined_at]) == list(range(8))

    def test_recursive_fibonacci_via_tasks(self, rt):
        def fib(n):
            if n <= 1:
                return n
            holder = {}

            def left():
                holder["a"] = fib(n - 1)

            def right():
                holder["b"] = fib(n - 2)

            rt.task_submit(left, if_=n > 8)
            rt.task_submit(right, if_=n > 8)
            rt.task_wait()
            return holder["a"] + holder["b"]

        result = {}

        def region():
            state = rt.single_begin()
            if state.selected:
                result["value"] = fib(14)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=4)
        assert result["value"] == 377

    def test_nested_task_children_complete_by_region_end(self, rt):
        leaves = []
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                def parent():
                    for index in range(5):
                        def leaf(i=index):
                            with lock:
                                leaves.append(i)
                        rt.task_submit(leaf)
                rt.task_submit(parent)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=3)
        assert sorted(leaves) == list(range(5))

    def test_threads_waiting_at_barrier_consume_tasks(self, rt):
        """The paper's barrier semantics: waiters execute queued work."""
        counted = []
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                for index in range(40):
                    def work(i=index):
                        with lock:
                            counted.append(i)
                    rt.task_submit(work)
            # The implicit barrier of single_end (and the join barrier)
            # must drain the queue.
            rt.single_end(state)

        rt.parallel_run(region, num_threads=4)
        assert len(counted) == 40
