"""Unit tests for the benchmark input generators: determinism and the
structural guarantees the kernels rely on."""

import numpy as np
import pytest

from repro.apps import get_app, list_apps
from repro.apps.base import AppSpec
from repro.errors import OmpError


class TestRegistry:
    def test_all_apps_listed(self):
        assert set(list_apps()) == {
            "pi", "jacobi", "lu", "md", "fft", "qsort", "bfs",
            "clustering", "wordcount"}

    def test_unknown_app(self):
        with pytest.raises(OmpError, match="unknown app"):
            get_app("nbody")

    def test_specs_are_complete(self):
        for name in list_apps():
            spec = get_app(name)
            assert isinstance(spec, AppSpec)
            assert spec.title
            assert set(spec.sizes) >= {"test", "default", "paper"}
            assert callable(spec.kernel)
            assert callable(spec.kernel_dt)
            assert callable(spec.sequential)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["jacobi", "lu", "qsort", "bfs",
                                      "wordcount", "fft", "md"])
    def test_same_seed_same_input(self, name):
        spec = get_app(name)
        first = spec.inputs("test")
        second = spec.inputs("test")
        for key, value in first.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(value, second[key])
            elif not hasattr(value, "nodes"):  # graphs compared below
                assert value == second[key]

    def test_clustering_graph_deterministic(self):
        spec = get_app("clustering")
        first = spec.inputs("test")["graph"]
        second = spec.inputs("test")["graph"]
        assert sorted(first.edges()) == sorted(second.edges())

    def test_different_seed_different_data(self):
        from repro.apps.jacobi import make_system
        a1, _b1 = make_system(8, seed=1)
        a2, _b2 = make_system(8, seed=2)
        assert a1 != a2


class TestStructuralGuarantees:
    def test_jacobi_matrix_diagonally_dominant(self):
        from repro.apps.jacobi import make_system
        a, _b = make_system(24)
        for i, row in enumerate(a):
            off_diagonal = sum(abs(v) for j, v in enumerate(row)
                               if j != i)
            assert abs(row[i]) > off_diagonal

    def test_lu_matrix_diagonally_dominant(self):
        from repro.apps.lu import make_matrix
        a = make_matrix(16)
        for i, row in enumerate(a):
            assert abs(row[i]) > sum(abs(v) for j, v in enumerate(row)
                                     if j != i)

    def test_fft_rejects_non_power_of_two(self):
        spec = get_app("fft")
        with pytest.raises(ValueError, match="power of two"):
            spec.inputs("test", n=300)

    def test_maze_has_connected_entrance_exit(self):
        from repro.apps.bfs import make_maze, sequential
        for seed in (1, 7, 31, 99):
            grid = make_maze(25, seed=seed)
            assert grid[0][0] == 0
            assert grid[24][24] == 0
            reached, _count = sequential(grid, 25)
            assert reached, f"seed {seed} produced a blocked maze"

    def test_corpus_is_zipf_like(self):
        import collections
        from repro.apps.wordcount import make_corpus
        corpus = make_corpus(800, vocabulary_size=500)
        counts = collections.Counter(
            word for line in corpus for word in line.split())
        frequencies = sorted(counts.values(), reverse=True)
        # Heavy head: the top 10% of words carry most of the mass.
        head = sum(frequencies[:50])
        assert head > 0.4 * sum(frequencies)

    def test_corpus_has_heavy_tailed_line_lengths(self):
        from repro.apps.wordcount import make_corpus
        corpus = make_corpus(400)
        lengths = [len(line.split()) for line in corpus]
        assert max(lengths) > 6 * (sum(lengths) / len(lengths))

    def test_md_particles_shapes(self):
        from repro.apps.md import make_particles
        pos, vel, acc = make_particles(30)
        assert len(pos) == len(vel) == len(acc) == 3
        assert all(len(axis) == 30 for axis in pos + vel + acc)


class TestDtInputVariants:
    def test_dt_inputs_are_numpy_where_declared(self):
        for name in ("jacobi", "lu", "md", "fft"):
            spec = get_app(name)
            inputs = spec.inputs("test", dt=True)
            assert any(isinstance(v, np.ndarray)
                       for v in inputs.values()), name

    def test_qsort_dt_keeps_list(self):
        spec = get_app("qsort")
        inputs = spec.inputs("test", dt=True)
        assert isinstance(inputs["data"], list)

    def test_overrides_reach_generators(self):
        spec = get_app("pi")
        assert spec.inputs("test", n=123)["n"] == 123
