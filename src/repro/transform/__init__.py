"""Source-to-source transformer: directives to explicitly-threaded code.

The rewriter walks the decorated object's AST, finds ``with omp("...")``
blocks and standalone ``omp("...")`` calls, and lowers each construct to
calls into the bound runtime — following the code shapes of the paper's
Figs. 2 and 3.  The package is organised like a small compiler front
end:

* :mod:`repro.transform.scope` — name-binding analysis,
* :mod:`repro.transform.astutil` — node builders, renaming, checks,
* :mod:`repro.transform.context` — transformation state and symbol gen,
* :mod:`repro.transform.datasharing` — clause-driven privatization,
* :mod:`repro.transform.rewriter` — directive dispatch,
* :mod:`repro.transform.constructs` — one lowering module per construct
  family.
"""

from repro.transform.rewriter import transform_function_def

__all__ = ["transform_function_def"]
