"""Lowering of ``single`` (with ``copyprivate``) and ``master``.

``single`` is the one-section special case of sections (paper Section
III-D): the first thread to claim the shared counter executes the body.
``copyprivate`` broadcasts the executor's listed values to every other
thread after the implicit barrier.  ``master`` is a thread-0 check with
no barrier.
"""

from __future__ import annotations

import ast

from repro.directives.model import Directive
from repro.transform import astutil
from repro.transform.context import TransformContext
from repro.transform.datasharing import classify
from repro.transform.constructs.loops import _loop_privatization


def handle_single(node: ast.With, directive: Directive,
                  ctx: TransformContext) -> list[ast.stmt]:
    from repro.transform.rewriter import transform_statements

    body = node.body
    astutil.check_no_escape(body, directive.source)
    ds = classify(body, directive, ctx)
    rename_map, pre, _post = _loop_privatization(ds, ctx, directive)
    copyprivate = directive.clause_vars("copyprivate")
    nowait = directive.has_clause("nowait")

    with ctx.enter_construct("single"):
        new_body = transform_statements(body, ctx)
    new_body = astutil.rename_in(new_body, rename_map)

    state_name = ctx.symbols.fresh("single")
    stmts: list[ast.stmt] = list(pre)
    stmts.append(astutil.assign(
        state_name, astutil.rt_call(ctx.rt_name, "single_begin")))

    selected_body = list(new_body)
    if copyprivate:
        # Publish the executor's (possibly renamed) values.
        values = ast.Tuple(
            elts=[astutil.name_load(rename_map.get(name, name))
                  for name in copyprivate],
            ctx=ast.Load())
        selected_body.append(astutil.rt_call_stmt(
            ctx.rt_name, "copyprivate_set",
            [astutil.name_load(state_name), values]))
    if not selected_body:
        selected_body.append(ast.Pass())
    stmts.append(ast.If(
        test=ast.Attribute(value=astutil.name_load(state_name),
                           attr="selected", ctx=ast.Load()),
        body=selected_body, orelse=[]))
    stmts.append(astutil.rt_call_stmt(
        ctx.rt_name, "single_end", [astutil.name_load(state_name)],
        [("nowait", astutil.constant(nowait))]))
    if copyprivate:
        # Every thread (executor included) adopts the broadcast values
        # into the enclosing scope's variables.
        targets = ast.Tuple(
            elts=[astutil.name_store(name) for name in copyprivate],
            ctx=ast.Store())
        stmts.append(ast.Assign(
            targets=[targets],
            value=astutil.rt_call(ctx.rt_name, "copyprivate_get",
                                  [astutil.name_load(state_name)])))
    for stmt in stmts:
        astutil.fix_locations(stmt, node)
    return stmts


def handle_master(node: ast.With, directive: Directive,
                  ctx: TransformContext) -> list[ast.stmt]:
    from repro.transform.rewriter import transform_statements

    astutil.check_no_escape(node.body, directive.source)
    with ctx.enter_construct("master"):
        body = transform_statements(node.body, ctx)
    stmt = ast.If(test=astutil.rt_call(ctx.rt_name, "master_begin"),
                  body=body or [ast.Pass()], orelse=[])
    astutil.fix_locations(stmt, node)
    return [stmt]
