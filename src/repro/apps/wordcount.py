"""Parallel word count (paper IV-B).

The paper uses the 21 GB Spanish Wikipedia dump and notes that, without
an input file, "the benchmark will automatically generate a synthetic
dataset from a fixed seed" — which is exactly what this module does: a
Zipf-distributed corpus with heavy-tailed line lengths (the load
imbalance that makes dynamic scheduling shine in Fig. 7).

PyOMP cannot run it: its Numba release "lacks support for compiling
Python dictionaries" — reproduced by the envelope checker.

Per-thread dictionaries merge under a ``critical`` section; the loop
uses ``schedule(runtime)`` for the Fig. 7 policy sweep.
"""

from __future__ import annotations

import random

from repro.apps.base import AppSpec
from repro.api import omp

_VOWELS = "aeiou"
_CONSONANTS = "bcdfglmnprstv"


def _make_vocabulary(size: int, rng: random.Random) -> list[str]:
    vocabulary = set()
    while len(vocabulary) < size:
        syllables = rng.randint(2, 4)
        word = "".join(rng.choice(_CONSONANTS) + rng.choice(_VOWELS)
                       for _ in range(syllables))
        vocabulary.add(word)
    return sorted(vocabulary)


def make_corpus(lines: int, vocabulary_size: int = 2000,
                seed: int = 777) -> list[str]:
    rng = random.Random(seed)
    vocabulary = _make_vocabulary(vocabulary_size, rng)
    # Zipf ranks: word k drawn with weight 1/(k+1).
    weights = [1.0 / (rank + 1) for rank in range(vocabulary_size)]
    corpus = []
    for index in range(lines):
        # Heavy-tailed line lengths: a few article-sized lines among
        # many stubs, like a wiki dump.
        if index % 97 == 0:
            length = rng.randint(200, 400)
        else:
            length = rng.randint(3, 30)
        corpus.append(" ".join(
            rng.choices(vocabulary, weights=weights, k=length)))
    return corpus


def make_input(lines: int = 0, vocabulary_size: int = 2000,
               seed: int = 777, path: str | None = None) -> dict:
    """Build the corpus: from ``path`` when given (the paper's artifact
    accepts the Wikipedia dump as a file argument), otherwise the
    synthetic fixed-seed dataset the paper falls back to."""
    if path is not None:
        with open(path, encoding="utf-8", errors="replace") as handle:
            corpus = handle.read().splitlines()
    else:
        corpus = make_corpus(lines, vocabulary_size, seed)
    return {"corpus": corpus, "count": len(corpus)}


def sequential(corpus, count):
    counts: dict[str, int] = {}
    for index in range(count):
        for word in corpus[index].split():
            counts[word] = counts.get(word, 0) + 1
    return counts


def kernel(corpus, count, threads):
    counts = {}
    with omp("parallel num_threads(threads)"):
        local = {}
        with omp("for schedule(runtime) nowait"):
            for index in range(count):
                for word in corpus[index].split():
                    local[word] = local.get(word, 0) + 1
        with omp("critical(wordcount_merge)"):
            for word in local:
                counts[word] = counts.get(word, 0) + local[word]
    return counts


# String splitting and dict updates cannot be lowered to native kernels
# (the paper: "string and dictionary operations, which Cython cannot
# optimize effectively") — the typed pipeline shares the source.
kernel_dt = kernel


def pyomp_kernel(corpus, count, threads):
    counts = {}
    with openmp("parallel for num_threads(threads)"):  # noqa: F821
        for index in range(count):
            for word in corpus[index].split():
                counts[word] = counts.get(word, 0) + 1
    return counts


def verify(result, reference) -> bool:
    return result == reference


SPEC = AppSpec(
    name="wordcount",
    title="Word count",
    make_input=make_input,
    sequential=sequential,
    kernel=kernel,
    kernel_dt=kernel_dt,
    pyomp=pyomp_kernel,
    verify=verify,
    sizes={
        "test": {"lines": 300, "vocabulary_size": 300},
        "default": {"lines": 4000},
        "paper": {"lines": 2_000_000, "vocabulary_size": 200_000},
    },
    table1=None,
)
