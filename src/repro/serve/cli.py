"""Command-line entry point: ``python -m repro.serve``.

Starts the serving layer in the foreground and runs until SIGINT or
SIGTERM, then shuts the fleet down gracefully (workers drain their
current job, shared segments are unlinked).  Defaults come from the
``OMP4PY_SERVE_PORT`` / ``OMP4PY_SERVE_WORKERS`` /
``OMP4PY_SERVE_QUEUE`` environment knobs (:mod:`repro.env`).

``--port-file`` writes the bound port to a file once listening — the
integration tests and the CI smoke job use it with ``--port 0`` to
avoid port races.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro import env
from repro.errors import OmpError


def _parse_tenants(spec: str) -> dict[str, int]:
    """Parse ``name:threads,name:threads`` into a budget map."""
    budgets: dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, budget = part.partition(":")
        if not sep:
            raise OmpError(
                f"tenant spec {part!r} must look like name:threads")
        try:
            budgets[name.strip()] = int(budget)
        except ValueError:
            raise OmpError(
                f"tenant budget in {part!r} must be an integer"
            ) from None
    if not budgets:
        raise OmpError("at least one tenant is required")
    return budgets


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the repository's parallel kernels over "
                    "HTTP with a shared-memory data plane.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="TCP port (default: OMP4PY_SERVE_PORT or "
                             f"{env.DEFAULT_SERVE_PORT}; 0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: "
                             "OMP4PY_SERVE_WORKERS or min(4, cpus))")
    parser.add_argument("--queue", type=int, default=None,
                        help="admission queue capacity (default: "
                             "OMP4PY_SERVE_QUEUE or 16; 0 = hand-off "
                             "only)")
    parser.add_argument("--batch", type=int, default=4,
                        help="max requests coalesced per job")
    parser.add_argument("--tenants", default="default:4",
                        help="budget map, e.g. team-a:4,team-b:2")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-job deadline in seconds")
    parser.add_argument("--retries", type=int, default=2,
                        help="max requeues after a worker crash")
    parser.add_argument("--debug-apps", action="store_true",
                        help="expose the _spin hang-test app")
    parser.add_argument("--port-file", default=None,
                        help="write the bound port to this file once "
                             "listening")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        tenants = _parse_tenants(args.tenants)
        port = args.port if args.port is not None else env.serve_port()
        workers = args.workers if args.workers is not None \
            else env.serve_workers()
        queue = args.queue if args.queue is not None \
            else env.serve_queue()
    except OmpError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    from repro.serve.server import ServeServer
    server = ServeServer(workers=workers, queue_capacity=queue,
                         max_batch=args.batch, tenants=tenants,
                         host=args.host, port=port,
                         job_timeout=args.timeout,
                         max_retries=args.retries,
                         debug_apps=args.debug_apps)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    server.start(wait_ready=False)
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(str(server.port))
    print(f"serving on {server.url} "
          f"({workers} workers, queue={queue}, "
          f"tenants={','.join(sorted(tenants))})", flush=True)
    server.fleet.wait_ready()
    print("fleet ready", flush=True)
    try:
        stop.wait()
    finally:
        print("shutting down", flush=True)
        server.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
