"""Per-thread OpenMP contexts, implemented as task stacks.

Following the paper (Section III-C): the context of each thread is a
stack whose first entry is the enclosing parallel region's implicit task;
further entries are pushed as the thread processes directives (explicit
tasks) and popped as they complete.  The stack is stored per thread in
``threading.local`` — the pure runtime's analogue of the ``thread_local``
C variable used by the cruntime.

Threads created outside OMP4Py (including the initial thread) are lazily
given a context whose team is a single-thread implicit team, making them
independent initial threads, as the paper specifies.
"""

from __future__ import annotations


class TaskFrame:
    """One entry of a thread's context stack.

    ``kind`` is ``"implicit"`` for the per-thread task of a parallel
    region (or of the serial implicit region) and ``"task"`` for an
    explicit task being executed.
    """

    __slots__ = ("team", "thread_num", "parent", "kind", "nthreads_var",
                 "ws_counter", "children", "depend_map", "depend_refs",
                 "task_id")

    def __init__(self, team, thread_num: int, parent: "TaskFrame | None",
                 kind: str, nthreads_var: int):
        self.team = team
        self.thread_num = thread_num
        self.parent = parent
        self.kind = kind
        #: ``id(TaskNode)`` when this frame executes an explicit task,
        #: else 0 — the parent link recorded by ``task_submit`` and
        #: ``taskwait`` trace events (see :mod:`repro.explain.dag`).
        self.task_id = 0
        #: ICV controlling the size of the next team this task forks.
        self.nthreads_var = nthreads_var
        #: Count of worksharing regions this thread has encountered in
        #: the current region; used to key shared worksharing slots
        #: (every team member meets the same constructs in the same
        #: order, an OpenMP conformance requirement).
        self.ws_counter = 0
        #: Direct child task nodes, awaited by ``taskwait``.
        self.children = []
        #: Dependence state of the tasks this frame generates:
        #: id(object) -> (last writer TaskNode | None, readers since).
        #: Keys follow the paper's Section V sketch — object identity —
        #: and ``depend_refs`` pins the objects so ids stay unique.
        self.depend_map: dict = {}
        self.depend_refs: dict = {}
