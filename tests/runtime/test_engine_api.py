"""Tests of the OpenMP runtime library API on both runtimes."""

import threading

import pytest

from repro.cruntime import cruntime
from repro.errors import OmpRuntimeError
from repro.runtime import pure_runtime


@pytest.fixture(params=["pure", "cruntime"])
def rt(request):
    return pure_runtime if request.param == "pure" else cruntime


class TestInitialThreadContext:
    def test_outside_parallel(self, rt):
        assert rt.get_num_threads() == 1
        assert rt.get_thread_num() == 0
        assert not rt.in_parallel()
        assert rt.get_level() == 0
        assert rt.get_active_level() == 0

    def test_external_thread_is_independent_initial_thread(self, rt):
        results = {}

        def external():
            results["threads"] = rt.get_num_threads()
            results["num"] = rt.get_thread_num()

        worker = threading.Thread(target=external)
        worker.start()
        worker.join()
        assert results == {"threads": 1, "num": 0}


class TestNumThreadsControl:
    def test_set_get_max_threads(self, rt):
        old = rt.get_max_threads()
        try:
            rt.set_num_threads(3)
            assert rt.get_max_threads() == 3
        finally:
            rt.set_num_threads(old)

    def test_set_num_threads_rejects_zero(self, rt):
        with pytest.raises(OmpRuntimeError):
            rt.set_num_threads(0)

    def test_num_procs_positive(self, rt):
        assert rt.get_num_procs() >= 1


class TestInsideParallel:
    def test_team_queries(self, rt):
        seen = []

        def region():
            seen.append((rt.get_thread_num(), rt.get_num_threads(),
                         rt.in_parallel(), rt.get_level()))

        rt.parallel_run(region, num_threads=3)
        assert sorted(t[0] for t in seen) == [0, 1, 2]
        assert all(t[1] == 3 for t in seen)
        assert all(t[2] for t in seen)
        assert all(t[3] == 1 for t in seen)

    def test_if_false_serializes(self, rt):
        sizes = []
        rt.parallel_run(lambda: sizes.append(rt.get_num_threads()),
                        num_threads=4, if_=False)
        assert sizes == [1]

    def test_ancestor_and_team_size(self, rt):
        records = []

        def region():
            records.append((rt.get_ancestor_thread_num(0),
                            rt.get_ancestor_thread_num(1),
                            rt.get_team_size(0), rt.get_team_size(1),
                            rt.get_ancestor_thread_num(5)))

        rt.parallel_run(region, num_threads=2)
        for anc0, anc1, size0, size1, bogus in records:
            assert anc0 == 0
            assert anc1 in (0, 1)
            assert size0 == 1
            assert size1 == 2
            assert bogus == -1


class TestNesting:
    def test_nested_disabled_by_default(self, rt):
        inner_sizes = []

        def outer():
            rt.parallel_run(
                lambda: inner_sizes.append(rt.get_num_threads()),
                num_threads=2)

        assert not rt.get_nested()
        rt.parallel_run(outer, num_threads=2)
        assert inner_sizes == [1, 1]

    def test_nested_enabled(self, rt):
        inner = []

        def outer():
            rt.parallel_run(
                lambda: inner.append(
                    (rt.get_num_threads(), rt.get_level(),
                     rt.get_active_level())),
                num_threads=2)

        rt.set_nested(True)
        try:
            rt.parallel_run(outer, num_threads=2)
        finally:
            rt.set_nested(False)
        assert len(inner) == 4
        assert all(size == 2 and level == 2 and active == 2
                   for size, level, active in inner)

    def test_max_active_levels_cap(self, rt):
        inner_sizes = []

        def outer():
            rt.parallel_run(
                lambda: inner_sizes.append(rt.get_num_threads()),
                num_threads=2)

        rt.set_nested(True)
        rt.set_max_active_levels(1)
        try:
            rt.parallel_run(outer, num_threads=2)
        finally:
            rt.set_max_active_levels(2**31 - 1)
            rt.set_nested(False)
        assert inner_sizes == [1, 1]


class TestScheduleICV:
    def test_set_get_by_name(self, rt):
        rt.set_schedule("dynamic", 4)
        assert rt.get_schedule() == ("dynamic", 4)
        rt.set_schedule("static")
        assert rt.get_schedule() == ("static", None)

    def test_set_by_enum_value(self, rt):
        rt.set_schedule(3, 2)
        assert rt.get_schedule() == ("guided", 2)
        rt.set_schedule("static")

    def test_invalid_kind(self, rt):
        with pytest.raises(OmpRuntimeError):
            rt.set_schedule("bogus")


class TestDynamicFlag:
    def test_roundtrip(self, rt):
        rt.set_dynamic(True)
        assert rt.get_dynamic()
        rt.set_dynamic(False)
        assert not rt.get_dynamic()


class TestTimers:
    def test_wtime_monotonic(self, rt):
        first = rt.get_wtime()
        second = rt.get_wtime()
        assert second >= first

    def test_wtick_positive(self, rt):
        assert 0 < rt.get_wtick() < 1


class TestErrorPropagation:
    def test_exception_in_region_raises_at_join(self, rt):
        def region():
            if rt.get_thread_num() == 1:
                raise ValueError("boom")

        with pytest.raises(OmpRuntimeError) as excinfo:
            rt.parallel_run(region, num_threads=2)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_region_error_does_not_poison_runtime(self, rt):
        with pytest.raises(OmpRuntimeError):
            rt.parallel_run(lambda: 1 / 0, num_threads=2)
        sizes = []
        rt.parallel_run(lambda: sizes.append(rt.get_num_threads()),
                        num_threads=2)
        assert sizes == [2, 2]


class TestSeparateContexts:
    def test_runtimes_do_not_share_settings(self):
        pure_runtime.set_num_threads(5)
        cruntime.set_num_threads(7)
        assert pure_runtime.get_max_threads() == 5
        assert cruntime.get_max_threads() == 7
