"""Free-threaded-interpreter detection: the execution-backend switch.

The paper's evaluation runs on free-threaded CPython 3.14b1, where
OMP4Py threads execute truly concurrently.  This reproduction has so
far *projected* no-GIL wall time from per-thread CPU accounting
(docs/projection.md).  This module makes the distinction explicit: at
import it detects whether the interpreter actually runs without a GIL
and selects one of two **execution backends**:

* :attr:`Backend.GIL` — threads serialize; the timing stack reports the
  per-thread-CPU projection as the paper-comparable number (the
  historical behaviour, and the only possibility on a stock build).
* :attr:`Backend.NOGIL` — threads genuinely overlap; the measured wall
  time *is* the paper-comparable number, and the projection formula is
  demoted to a cross-check (``repro.analysis.validate`` gates on the
  two agreeing — the convergence claim docs/projection.md makes).

Detection uses ``sys._is_gil_enabled()`` (3.13+) when available — the
runtime truth, since a free-threaded build can re-enable the GIL via
``PYTHON_GIL=1`` or an incompatible extension — and falls back to the
build flag ``sysconfig.get_config_var("Py_GIL_DISABLED")``.  The
``OMP4PY_BACKEND`` environment knob (parsed in :mod:`repro.env`)
overrides: ``gil`` always works (projection accounting is valid
anywhere), ``nogil`` on a GIL-enabled interpreter raises — asserting
parallelism that cannot happen would silently mislabel projected
numbers as measured ones.
"""

from __future__ import annotations

import enum
import sys
import sysconfig

from repro import env
from repro.errors import OmpError


class Backend(enum.Enum):
    """Which wall-time accounting the interpreter calls for."""

    GIL = "gil"
    NOGIL = "nogil"

    @property
    def measures_parallelism(self) -> bool:
        """True when measured wall time is the paper-comparable number."""
        return self is Backend.NOGIL


def build_is_free_threaded() -> bool:
    """True on a free-threaded (``Py_GIL_DISABLED``) CPython build."""
    return bool(sysconfig.get_config_var("Py_GIL_DISABLED"))


def gil_enabled_now() -> bool | None:
    """Whether the GIL is active right now, or ``None`` when the
    interpreter predates ``sys._is_gil_enabled`` (< 3.13)."""
    probe = getattr(sys, "_is_gil_enabled", None)
    if probe is None:
        return None
    return bool(probe())


def detect_backend(spec: str | None = None) -> Backend:
    """Resolve the execution backend from a spec and the interpreter.

    ``spec`` is ``"auto"``/``"gil"``/``"nogil"`` (default: the
    ``OMP4PY_BACKEND`` environment knob).  ``auto`` trusts the runtime
    GIL probe, falling back to the build flag; ``nogil`` on an
    interpreter whose GIL is enabled raises :class:`~repro.errors.OmpError`.
    """
    if spec is None:
        spec = env.backend_spec()
    if spec == "gil":
        return Backend.GIL
    enabled = gil_enabled_now()
    free = not enabled if enabled is not None else build_is_free_threaded()
    if spec == "nogil":
        if not free:
            raise OmpError(
                "OMP4PY_BACKEND=nogil but this interpreter runs with the "
                "GIL enabled (stock build, PYTHON_GIL=1, or an extension "
                "re-enabled it); threads cannot execute in parallel, so "
                "measured wall times would not mean what the nogil "
                "backend promises.  Use a free-threaded build (3.13t+) "
                "or OMP4PY_BACKEND=auto/gil.")
        return Backend.NOGIL
    return Backend.NOGIL if free else Backend.GIL


_current: Backend | None = None


def current_backend() -> Backend:
    """The process-wide backend, detected once and cached.

    Tests (and long-lived embedders flipping ``OMP4PY_BACKEND``) can
    re-detect with :func:`refresh_backend`.
    """
    global _current
    if _current is None:
        _current = detect_backend()
    return _current


def refresh_backend(spec: str | None = None) -> Backend:
    """Re-run detection (after an environment change) and re-cache."""
    global _current
    _current = detect_backend(spec)
    return _current


def available_cpus() -> int:
    """CPUs usable by this process (affinity/cgroup-aware; see
    :func:`repro.env.available_cpus` — re-exported here because backend
    and team-sizing decisions are made together)."""
    return env.available_cpus()
