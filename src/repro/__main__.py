"""``python -m repro`` — package banner and quick self-check."""

import sys

import repro


def main() -> None:
    print(f"repro {repro.__version__} — OMP4Py reproduction (CGO 2026)")
    print(f"  runtimes : pure runtime + cruntime simulation")
    print(f"  modes    : {', '.join(m.value for m in repro.ALL_MODES)}")
    print(f"  procs    : {repro.omp_get_num_procs()}")
    print()
    print("Quick self-check (pi, 200k intervals, 2 threads):")
    from repro.apps import get_app
    spec = get_app("pi")
    for mode in repro.ALL_MODES:
        value = spec.run(mode, threads=2, profile="test")
        print(f"  {mode.value:<11} -> {value!r}")
    print()
    print("Next steps:")
    print("  python -m repro.analysis.report table1|fig5|fig6|fig7|"
          "fig8|headline|check")
    print("  python -m repro.lint src/repro/apps examples   "
          "# static race detector")
    print("  python examples/main.py <mode> <test> <threads> [profile]")
    print("  pytest tests/ && pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    sys.exit(main())
