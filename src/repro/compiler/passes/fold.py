"""Constant folding: evaluate constant expressions at compile time.

Cython folds constant arithmetic while generating C; this pass does the
bytecode-level analogue.  Only operators with no overloading surprises
on ``int``/``float``/``str``/``bool`` constants are folded, and any
evaluation error simply leaves the expression untouched.
"""

from __future__ import annotations

import ast
import operator

_BIN_OPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
    ast.LShift: operator.lshift,
    ast.RShift: operator.rshift,
    ast.BitAnd: operator.and_,
    ast.BitOr: operator.or_,
    ast.BitXor: operator.xor,
}

_UNARY_OPS = {
    ast.USub: operator.neg,
    ast.UAdd: operator.pos,
    ast.Invert: operator.invert,
    ast.Not: operator.not_,
}

_FOLDABLE = (int, float, bool, str, complex)


class FoldConstants(ast.NodeTransformer):
    """Bottom-up constant folding."""

    def visit_BinOp(self, node: ast.BinOp):
        self.generic_visit(node)
        op = _BIN_OPS.get(type(node.op))
        if op is not None and isinstance(node.left, ast.Constant) \
                and isinstance(node.right, ast.Constant) \
                and isinstance(node.left.value, _FOLDABLE) \
                and isinstance(node.right.value, _FOLDABLE):
            try:
                value = op(node.left.value, node.right.value)
            except Exception:  # noqa: BLE001 - leave runtime errors alone
                return node
            if isinstance(value, _FOLDABLE) and not (
                    isinstance(value, (int, str)) and _too_big(value)):
                return ast.copy_location(ast.Constant(value=value), node)
        return node

    def visit_UnaryOp(self, node: ast.UnaryOp):
        self.generic_visit(node)
        op = _UNARY_OPS.get(type(node.op))
        if op is not None and isinstance(node.operand, ast.Constant) \
                and isinstance(node.operand.value, _FOLDABLE):
            try:
                value = op(node.operand.value)
            except Exception:  # noqa: BLE001
                return node
            return ast.copy_location(ast.Constant(value=value), node)
        return node


def _too_big(value) -> bool:
    """Avoid exploding the code object with huge folded results."""
    if isinstance(value, int):
        return value.bit_length() > 256
    return len(value) > 4096
