"""The inspector: partition, conflict graph, greedy coloring.

:func:`build_plan` turns a :class:`~repro.plan.map.Map` into a
:class:`Plan`:

1. the iteration space ``[0, len(map))`` is cut into contiguous
   partitions of ``partition_size`` iterations;
2. two partitions *conflict* when some shared element appears in both
   (computed from the map, one pass over the entries);
3. partitions are greedily colored in index order so no two partitions
   of the same color conflict — same-color partitions can therefore run
   concurrently with **zero** synchronization between them.

The executor (:mod:`repro.plan.executor`) then runs the colors in
sequence with one barrier between colors.  Scheduling inside a color is
deterministic: partition ``p`` is always owned by thread
``p % nthreads``, so across colors *and* across repeated executions
(timesteps) a partition's data stays with the same worker — and, via
the affinity binder, with the same ``OMP_PLACES`` place.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import OmpError


def _partition_bounds(total: int, partition_size: int):
    """Contiguous ``[lo, hi)`` partition bounds covering ``total``."""
    bounds = []
    lo = 0
    while lo < total:
        hi = min(lo + partition_size, total)
        bounds.append((lo, hi))
        lo = hi
    return tuple(bounds)


@dataclass(frozen=True)
class Plan:
    """An executable schedule for one irregular loop.

    A plan never references its :class:`~repro.plan.map.Map` — only
    derived data — so the weak-keyed plan cache can drop the map (and
    with it the plan) the moment the application lets go of it.
    """

    source: str
    total: int
    partition_size: int
    partitions: tuple[tuple[int, int], ...]
    #: partition indices grouped by color, in execution order
    colors: tuple[tuple[int, ...], ...]
    conflict_edges: int
    _schedules: dict = field(default_factory=dict, repr=False,
                             compare=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    @property
    def npartitions(self) -> int:
        return len(self.partitions)

    @property
    def ncolors(self) -> int:
        return len(self.colors)

    def schedule_for(self, nthreads: int):
        """Per-color, per-thread partition bounds for a team size.

        Returns one tuple per color; each is an ``nthreads``-long tuple
        of ``((lo, hi), ...)`` partition-bound lists.  Owner assignment
        is the stable ``partition_index % nthreads`` so a partition
        always lands on the same thread (and place) regardless of the
        color it sits in or how often the plan re-executes.
        """
        if nthreads < 1:
            raise OmpError("schedule_for needs nthreads >= 1")
        with self._lock:
            cached = self._schedules.get(nthreads)
            if cached is not None:
                return cached
            schedule = []
            for members in self.colors:
                per_thread = [[] for _ in range(nthreads)]
                for part in members:
                    per_thread[part % nthreads].append(
                        self.partitions[part])
                schedule.append(tuple(tuple(chunks)
                                      for chunks in per_thread))
            schedule = tuple(schedule)
            self._schedules[nthreads] = schedule
            return schedule

    def placement(self, nthreads: int, binder):
        """Place index for each owner thread under ``binder``.

        Purely informational (metrics / docs): the actual pinning is
        done by the runtime's team members via
        ``Binder.bind_current`` — this mirrors that computation so a
        report can say which place each partition owner runs on.
        """
        if binder is None or not getattr(binder, "places", None):
            return None
        from repro.affinity import place_for_member
        nplaces = len(binder.places)
        return tuple(
            place_for_member(thread, nthreads, nplaces,
                             binder.proc_bind)
            for thread in range(nthreads))


def build_plan(indirection_map, partition_size: int) -> Plan:
    """Inspect an indirection map and build an execution plan."""
    if partition_size < 1:
        raise OmpError("partition_size must be >= 1")
    total = len(indirection_map)
    bounds = _partition_bounds(total, partition_size)
    nparts = len(bounds)

    # Which partitions touch each element — one pass over the map.
    touched_by: dict = {}
    for part, (lo, hi) in enumerate(bounds):
        for iteration in range(lo, hi):
            for element in indirection_map[iteration]:
                owners = touched_by.get(element)
                if owners is None:
                    touched_by[element] = owners = []
                if not owners or owners[-1] != part:
                    owners.append(part)

    # Conflict adjacency: partitions sharing any element.
    adjacency = [set() for _ in range(nparts)]
    for owners in touched_by.values():
        for i, a in enumerate(owners):
            for b in owners[i + 1:]:
                adjacency[a].add(b)
                adjacency[b].add(a)
    edges = sum(len(neigh) for neigh in adjacency) // 2

    # Greedy coloring in index order: smallest color absent from the
    # already-colored neighborhood.
    color_of = [-1] * nparts
    for part in range(nparts):
        taken = {color_of[neighbor] for neighbor in adjacency[part]
                 if color_of[neighbor] >= 0}
        color = 0
        while color in taken:
            color += 1
        color_of[part] = color
    ncolors = (max(color_of) + 1) if nparts else 0
    colors = [[] for _ in range(ncolors)]
    for part, color in enumerate(color_of):
        colors[color].append(part)

    return Plan(source=indirection_map.name,
                total=total,
                partition_size=partition_size,
                partitions=bounds,
                colors=tuple(tuple(members) for members in colors),
                conflict_edges=edges)
