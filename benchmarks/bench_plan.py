"""Inspector–executor plans vs critical sections on the irregular apps.

Measures the planned (``repro.plan``) kernels of bfs and wordcount
against their critical-section baselines, plus md's pair-block plan as
an informational record.  Every kernel is verified against the app's
sequential reference before its time counts, and each side is the
**minimum over repeats** (the intrinsic cost with scheduler noise
removed, symmetrically for both variants).

The gate is the combined wall-time ratio over bfs + wordcount::

    (bfs_critical + wordcount_critical)
        / (bfs_planned + wordcount_planned)  >=  --min-ratio

bfs carries the convoy the plan fixes (one ``critical`` per feasible
move, tens of thousands of acquisitions per search); wordcount's
baseline merge is a single acquisition per thread, so its planned
variant is roughly neutral and the combined ratio is honest about
that.  With ``--check`` the gate takes the best combined ratio over up
to three attempts (stopping at the first pass), the same
loaded-runner guard as ``bench_region_overhead.py``.

Usage::

    python benchmarks/bench_plan.py [--threads 4] [--repeats 3]
        [--check] [--min-ratio 1.5] [--out results]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro import transform  # noqa: E402
from repro.modes import Mode  # noqa: E402
from repro.plan import clear_plan_cache, plan_cache_stats  # noqa: E402
from repro.runtime import pure_runtime  # noqa: E402

#: Benchmark sizes: big enough that per-level plan overhead amortizes,
#: small enough for the CI smoke budget.
BFS_N = 121
WORDCOUNT_LINES = 3000
MD_N = 32
MD_STEPS = 3


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - begin)
    return best


def bench_bfs(threads: int, repeats: int) -> dict:
    from repro.apps import bfs

    grid = bfs.make_maze(BFS_N)
    expected = bfs.sequential(grid, BFS_N)
    critical = transform(bfs.kernel_frontier, Mode.PURE)
    for kernel in (lambda: critical(grid=grid, n=BFS_N,
                                    threads=threads),
                   lambda: bfs.kernel_planned(grid, BFS_N, threads)):
        if kernel() != expected:
            raise AssertionError("bfs kernel disagrees with the "
                                 "sequential reference")
    critical_s = _best(lambda: critical(grid=grid, n=BFS_N,
                                        threads=threads), repeats)
    planned_s = _best(lambda: bfs.kernel_planned(grid, BFS_N, threads),
                      repeats)
    return {"app": "bfs", "n": BFS_N, "critical_s": critical_s,
            "planned_s": planned_s,
            "ratio": critical_s / planned_s if planned_s else
            float("inf")}


def bench_wordcount(threads: int, repeats: int) -> dict:
    from repro.apps import wordcount

    corpus = wordcount.make_corpus(WORDCOUNT_LINES)
    count = len(corpus)
    expected = wordcount.sequential(corpus, count)
    critical = transform(wordcount.kernel, Mode.PURE)
    for kernel in (lambda: critical(corpus=corpus, count=count,
                                    threads=threads),
                   lambda: wordcount.kernel_planned(corpus, count,
                                                    threads)):
        if kernel() != expected:
            raise AssertionError("wordcount kernel disagrees with the "
                                 "sequential reference")
    critical_s = _best(lambda: critical(corpus=corpus, count=count,
                                        threads=threads), repeats)
    planned_s = _best(lambda: wordcount.kernel_planned(corpus, count,
                                                       threads),
                      repeats)
    return {"app": "wordcount", "lines": WORDCOUNT_LINES,
            "critical_s": critical_s, "planned_s": planned_s,
            "ratio": critical_s / planned_s if planned_s else
            float("inf")}


def bench_md(threads: int, repeats: int) -> dict:
    """Informational: md's timestep loop is the plan-cache workout
    (build once, hit every later force evaluation)."""
    from repro.apps import md

    reference = md.sequential(**md.make_input(MD_N, steps=MD_STEPS))

    def run(kernel) -> float:
        inputs = md.make_input(MD_N, steps=MD_STEPS)
        result = kernel(threads=threads, **inputs)
        if abs(result[0] - reference[0]) > 1e-6 \
                or abs(result[1] - reference[1]) > 1e-6:
            raise AssertionError("md kernel disagrees with the "
                                 "sequential reference")
        return 0.0

    run(md.kernel_pairs_critical)
    run(md.kernel_planned)
    critical_s = _best(
        lambda: md.kernel_pairs_critical(
            threads=threads, **md.make_input(MD_N, steps=MD_STEPS)),
        repeats)
    clear_plan_cache()
    planned_s = _best(
        lambda: md.kernel_planned(
            threads=threads, **md.make_input(MD_N, steps=MD_STEPS)),
        repeats)
    stats = plan_cache_stats()
    return {"app": "md", "n": MD_N, "steps": MD_STEPS,
            "critical_s": critical_s, "planned_s": planned_s,
            "ratio": critical_s / planned_s if planned_s else
            float("inf"),
            "plan_builds": stats["builds"],
            "plan_cache_hits": stats["hits"]}


def run_bench(threads: int = 4, repeats: int = 3) -> dict:
    bfs = bench_bfs(threads, repeats)
    wordcount = bench_wordcount(threads, repeats)
    md = bench_md(threads, repeats)
    gated_critical = bfs["critical_s"] + wordcount["critical_s"]
    gated_planned = bfs["planned_s"] + wordcount["planned_s"]
    return {
        "threads": threads,
        "repeats": repeats,
        "apps": [bfs, wordcount, md],
        "combined_critical_s": gated_critical,
        "combined_planned_s": gated_planned,
        "combined_ratio": gated_critical / gated_planned
        if gated_planned else float("inf"),
    }


def best_of(attempts: int, min_ratio: float, *, threads: int,
            repeats: int) -> dict:
    """Best combined ratio over up to ``attempts`` measurements,
    stopping at the first that clears ``min_ratio``."""
    best = run_bench(threads=threads, repeats=repeats)
    for _ in range(attempts - 1):
        if best["combined_ratio"] >= min_ratio:
            break
        again = run_bench(threads=threads, repeats=repeats)
        if again["combined_ratio"] > best["combined_ratio"]:
            best = again
    return best


def smoke_records(threads: int = 4, repeats: int = 3,
                  ) -> tuple[list[str], list[dict]]:
    """Entry point for ``reproduce.py --smoke``: per-variant records
    for ``BENCH_smoke.json`` plus the 1.5x combined-ratio verdict."""
    result = best_of(3, 1.5, threads=threads, repeats=repeats)
    line = (f"plan: combined bfs+wordcount "
            f"{result['combined_ratio']:.2f}x over critical baseline "
            f"at {threads} threads")
    print(f"[reproduce] {line}")
    failures: list[str] = []
    # Same caveat as the region-overhead gate: an armed tracer taxes
    # every barrier/critical event and skews both sides, so armed runs
    # record the measurement but skip the verdict.
    if pure_runtime.tracer.enabled:
        print("[reproduce] plan: ratio gate skipped (tracer armed)")
    elif result["combined_ratio"] < 1.5:
        failures.append(
            f"plan: planned bfs+wordcount only "
            f"{result['combined_ratio']:.2f}x over the critical "
            f"baseline (need >= 1.5x)")
    records = []
    for app in result["apps"]:
        records.append({"kernel": f"plan/{app['app']}-critical",
                        "wall_s": app["critical_s"],
                        "threads": threads, "mode": "pure"})
        records.append({"kernel": f"plan/{app['app']}-planned",
                        "wall_s": app["planned_s"],
                        "threads": threads, "mode": "pure",
                        "ratio_vs_critical": app["ratio"]})
    return failures, records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurements per variant (minimum wins)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the combined bfs+wordcount "
                        "ratio >= --min-ratio")
    parser.add_argument("--min-ratio", type=float, default=1.5)
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also write bench_plan.json")
    args = parser.parse_args(argv)

    attempts = 3 if args.check else 1
    result = best_of(attempts, args.min_ratio, threads=args.threads,
                     repeats=args.repeats)

    print(f"[plan] threads={args.threads} repeats={args.repeats}")
    for app in result["apps"]:
        extra = ""
        if "plan_cache_hits" in app:
            extra = (f" (plan built {app['plan_builds']}x, "
                     f"{app['plan_cache_hits']} cache hits)")
        print(f"  {app['app']:>9}: critical "
              f"{app['critical_s'] * 1e3:8.1f} ms | planned "
              f"{app['planned_s'] * 1e3:8.1f} ms | "
              f"{app['ratio']:5.2f}x{extra}")
    print(f"  combined bfs+wordcount: "
          f"{result['combined_ratio']:.2f}x")

    if args.out:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / "bench_plan.json"
        path.write_text(json.dumps(result, indent=2) + "\n",
                        encoding="utf-8")
        print(f"[plan] wrote {path}")

    if args.check and result["combined_ratio"] < args.min_ratio:
        print(f"[plan] FAIL: planned bfs+wordcount must be at least "
              f"{args.min_ratio}x faster than the critical baseline, "
              f"measured {result['combined_ratio']:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
