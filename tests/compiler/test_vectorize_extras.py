"""Additional vectorizer coverage: parameter annotations, scatter under
the worksharing contract, bitwise reductions, casts, and diagnostics."""

import ast

import numpy as np
import pytest

from repro import Mode, transform
from repro.compiler.vectorize import KERNEL_HANDLE, VectorizePass
from repro.transform.context import TransformContext


def run_pass(source: str, index: int = 0):
    tree = ast.parse(source)
    ctx = TransformContext("__omp0__", set(), set())
    vectorizer = VectorizePass(ctx)
    node = vectorizer.run(tree.body[index])
    module = ast.Module(body=[node], type_ignores=[])
    ast.fix_missing_locations(module)
    from repro.compiler import kernels
    namespace = {KERNEL_HANDLE: kernels, "math": __import__("math")}
    exec(compile(module, "<vec>", "exec"), namespace)
    return vectorizer, namespace


class TestParameterAnnotations:
    def test_signature_types_feed_inference(self):
        vectorizer, ns = run_pass(
            "def f(s: float, n: int):\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            "        total += i * s\n"
            "    return total\n")
        assert any(o == "vectorized" for _l, o in vectorizer.report)
        assert ns["f"](0.5, 10) == sum(i * 0.5 for i in range(10))


class TestBitwiseReductions:
    @pytest.mark.parametrize("op,pyop", [("|", "or_"), ("&", "and_"),
                                         ("^", "xor")])
    def test_bitwise(self, op, pyop):
        import operator
        fold = getattr(operator, pyop)
        vectorizer, ns = run_pass(
            "def f(n):\n"
            f"    acc: int = {0 if op != '&' else 0xffff}\n"
            "    for i in range(n):\n"
            f"        acc {op}= i * 3 + 1\n"
            "    return acc\n")
        assert any(o == "vectorized" for _l, o in vectorizer.report)
        expected = 0 if op != "&" else 0xffff
        for i in range(20):
            expected = fold(expected, i * 3 + 1)
        assert ns["f"](20) == expected


class TestCasts:
    def test_int_cast_truncates(self):
        vectorizer, ns = run_pass(
            "def f(n):\n"
            "    acc: int = 0\n"
            "    for i in range(n):\n"
            "        acc += int(i * 0.7)\n"
            "    return acc\n")
        assert any(o == "vectorized" for _l, o in vectorizer.report)
        assert ns["f"](15) == sum(int(i * 0.7) for i in range(15))

    def test_float_cast(self):
        vectorizer, ns = run_pass(
            "def f(n):\n"
            "    acc: float = 0.0\n"
            "    for i in range(n):\n"
            "        acc += float(i) / 2\n"
            "    return acc\n")
        assert ns["f"](9) == sum(i / 2 for i in range(9))


class TestScatterUnderWsContract:
    def test_permutation_store_in_chunk_loop(self):
        """Outside a ws loop a permuted scatter is rejected; inside the
        chunk driver the independence contract allows it."""
        source_plain = (
            "def f(out, n):\n"
            "    c: int = 1\n"
            "    for i in range(n):\n"
            "        out[(i * 7) % n] = i * c\n"
            "    return out\n")
        vectorizer, _ns = run_pass(source_plain)
        assert all(o != "vectorized" for _l, o in vectorizer.report)

        fn = transform(_scatter_ws, Mode.COMPILED_DT)
        assert "__omp_k__" in fn.__omp_source__  # the loop vectorized
        n = 16
        out = fn(np.zeros(n), n, 2)
        expected = np.zeros(n)
        for i in range(n):
            expected[(i * 7) % n] = float(i)
        np.testing.assert_allclose(out, expected)


def _scatter_ws(out, n: int, threads):
    c: float = 1.0
    with omp("parallel for num_threads(threads)"):  # noqa: F821
        for i in range(n):
            out[(i * 7) % n] = i * c
    return out


class TestDiagnostics:
    def test_report_lists_line_numbers(self):
        vectorizer, _ns = run_pass(
            "def f(n):\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            "        total += hash(i)\n"
            "    return total\n")
        assert vectorizer.report
        line, outcome = vectorizer.report[0]
        assert line == 3
        assert outcome.startswith("fallback")

    def test_debug_prints(self, capsys):
        tree = ast.parse(
            "def f(n):\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            "        total += hash(i)\n"
            "    return total\n")
        ctx = TransformContext("__omp0__", set(), set())
        VectorizePass(ctx, debug=True).run(tree.body[0])
        assert "vectorize" in capsys.readouterr().out
