"""Blocking records: what every runtime thread is currently waiting on.

PR 3 made every wait in the runtime event-driven, which means the
runtime *knows*, at each wait site, exactly which resource the thread
is about to sleep on — a barrier, a lock holder, a child task, a task
dependence, an ordered ticket, a copyprivate broadcast.  This module is
where that knowledge is surfaced: each wait site records a
:class:`BlockRecord` on entry and clears it on exit, and the lock paths
record ownership, so the watchdog can assemble a wait-for graph from a
consistent-enough snapshot of these tables.

Cost discipline matches the tracer and the tool interface: every
instrumented site reads one attribute (``runtime.diag``) and branches
on ``None``.  When armed, all tables are only ever written by the
thread the entry belongs to (or by the single submitting/finishing
thread for task entries), so plain dict stores under the GIL suffice —
no locks on any hot path.  The watchdog reads racily and re-validates:
a torn snapshot can only delay a verdict by one tick, never invent a
cycle, because edges are drawn only from records whose ``sleeping``
flag is set (see :mod:`repro.diagnostics.waitgraph`).
"""

from __future__ import annotations

import os
import sys
import threading
import time

_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_GENERATED_PREFIX = "<omp4py:"


def user_location(depth: int = 2) -> tuple[str, int] | None:
    """The innermost non-runtime frame: generated omp4py code (mapped
    back through the origin registry at report time) or the user's own
    script.  ``None`` when the whole stack is runtime-internal (e.g. a
    worker thread's bootstrap barrier)."""
    try:
        frame = sys._getframe(depth)
    except ValueError:  # pragma: no cover - stack shallower than depth
        return None
    hops = 0
    while frame is not None and hops < 30:
        filename = frame.f_code.co_filename
        if filename.startswith(_GENERATED_PREFIX) or \
                not filename.startswith(_PACKAGE_ROOT):
            return filename, frame.f_lineno
        frame = frame.f_back
        hops += 1
    return None


class BlockRecord:
    """One thread's current wait.

    ``kind`` is ``barrier``, ``taskwait``, ``dependence``, ``lock``,
    ``nest_lock``, ``critical``, ``atomic``, ``ordered`` or
    ``copyprivate``; ``resource`` identifies the waited-on object
    (``id()`` of the barrier/lock/slot, or a critical-section key).
    ``sleeping`` is flipped by the owning thread around the actual
    ``cond.wait``/``event.wait``/blocking-acquire call: the wait-for
    graph draws out-edges only from sleeping records, which is what
    keeps a barrier waiter that is busy draining tasks from ever
    appearing as a deadlock participant.
    """

    __slots__ = ("ident", "kind", "resource", "team_id", "thread_num",
                 "since", "detail", "location", "sleeping")

    def __init__(self, ident: int, kind: str, resource, team_id,
                 thread_num: int, detail, location):
        self.ident = ident
        self.kind = kind
        self.resource = resource
        self.team_id = team_id
        self.thread_num = thread_num
        self.since = time.perf_counter()
        self.detail = detail
        self.location = location
        self.sleeping = False

    def describe(self) -> dict:
        """JSON-able snapshot of this record."""
        from repro.diagnostics.origin import format_location
        return {
            "kind": self.kind,
            "resource": self.resource if isinstance(
                self.resource, (str, int)) else repr(self.resource),
            "team": self.team_id,
            "thread_num": self.thread_num,
            "wait_age_s": round(time.perf_counter() - self.since, 6),
            "sleeping": self.sleeping,
            "source": (format_location(*self.location)
                       if self.location else None),
        }


class TeamInfo:
    """Membership of one live team, for barrier-arrival accounting.

    ``members`` maps team-relative thread numbers to thread idents
    (each member registers itself); ``departed`` collects the numbers
    of members that completed their implicit task and left the region —
    a barrier still waiting on a departed member can never be satisfied.
    """

    __slots__ = ("team_id", "size", "members", "departed")

    def __init__(self, team_id: int, size: int):
        self.team_id = team_id
        self.size = size
        self.members: dict[int, int] = {}
        self.departed: set[int] = set()


class DiagnosticsState:
    """All blocking/ownership tables of one runtime, plus the progress
    counter the watchdog polls."""

    def __init__(self):
        #: ident -> stack of BlockRecords (innermost wait last).  A
        #: thread helping with tasks inside a barrier can block again
        #: on a lock inside the task body; both records coexist.
        self.blocked: dict[int, list[BlockRecord]] = {}
        #: resource key -> owning thread ident (omp locks, criticals,
        #: atomic, nest locks, ordered regions).
        self.owners: dict = {}
        #: id(team) -> TeamInfo for every live team.
        self.teams: dict[int, TeamInfo] = {}
        #: id(node) -> (node, executing ident) for running tasks.
        self.task_running: dict[int, tuple] = {}
        #: id(node) -> (node, tuple of predecessor nodes) for tasks
        #: deferred on unsatisfied dependences.
        self.task_waiting: dict[int, tuple] = {}
        #: Bumped whenever any thread unblocks or completes a task.
        #: Benign-racy ``+= 1`` under the GIL: the watchdog only needs
        #: "changed at all", not an exact count.
        self.progress = 0
        #: Thread idents the runtime has ever registered in a team.
        self.thread_names: dict[int, str] = {}

    # -- blocking records (owner-thread writes only) --------------------

    def block_enter(self, kind: str, resource, team=None,
                    thread_num: int = -1, detail=None) -> BlockRecord:
        ident = threading.get_ident()
        record = BlockRecord(ident, kind, resource,
                             id(team) if team is not None else None,
                             thread_num, detail, user_location(depth=3))
        stack = self.blocked.get(ident)
        if stack is None:
            stack = []
            self.blocked[ident] = stack
        stack.append(record)
        return record

    def block_exit(self) -> None:
        ident = threading.get_ident()
        stack = self.blocked.get(ident)
        if stack:
            stack.pop()
        self.progress += 1

    # -- team membership -------------------------------------------------

    def team_begin(self, team) -> None:
        self.teams[id(team)] = TeamInfo(id(team), team.size)

    def team_end(self, team) -> None:
        self.teams.pop(id(team), None)
        self.progress += 1

    def thread_enter(self, team, thread_num: int) -> None:
        ident = threading.get_ident()
        info = self.teams.get(id(team))
        if info is not None:
            info.members[thread_num] = ident
        self.thread_names[ident] = threading.current_thread().name

    def thread_exit(self, team, thread_num: int) -> None:
        info = self.teams.get(id(team))
        if info is not None:
            info.departed.add(thread_num)
        self.progress += 1

    # -- lock / region ownership ----------------------------------------

    def resource_acquired(self, key) -> None:
        self.owners[key] = threading.get_ident()

    def resource_released(self, key) -> None:
        self.owners.pop(key, None)
        self.progress += 1

    # -- tasking ---------------------------------------------------------

    def task_started(self, node) -> None:
        self.task_running[id(node)] = (node, threading.get_ident())

    def task_finished(self, node) -> None:
        self.task_running.pop(id(node), None)
        self.progress += 1

    def task_deferred(self, node, predecessors) -> None:
        self.task_waiting[id(node)] = (node, tuple(predecessors))

    def task_released(self, node) -> None:
        self.task_waiting.pop(id(node), None)
        self.progress += 1

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> "StateSnapshot":
        """A point-in-time copy for the watchdog (GIL-consistent per
        table; cross-table consistency is re-validated by the graph)."""
        blocked = {}
        for ident, stack in list(self.blocked.items()):
            records = list(stack)
            if records:
                blocked[ident] = records
        return StateSnapshot(
            blocked=blocked,
            owners=dict(self.owners),
            teams=dict(self.teams),
            task_running=dict(self.task_running),
            task_waiting=dict(self.task_waiting),
            thread_names=dict(self.thread_names),
            progress=self.progress,
        )


class StateSnapshot:
    """Frozen view of a :class:`DiagnosticsState` for one analysis."""

    __slots__ = ("blocked", "owners", "teams", "task_running",
                 "task_waiting", "thread_names", "progress", "taken_at")

    def __init__(self, blocked, owners, teams, task_running,
                 task_waiting, thread_names, progress):
        self.blocked = blocked
        self.owners = owners
        self.teams = teams
        self.task_running = task_running
        self.task_waiting = task_waiting
        self.thread_names = thread_names
        self.progress = progress
        self.taken_at = time.perf_counter()

    def oldest_wait_age(self) -> float:
        """Age of the longest-standing innermost wait, in seconds."""
        oldest = self.taken_at
        for records in self.blocked.values():
            if records:
                oldest = min(oldest, records[-1].since)
        return self.taken_at - oldest
