"""``python -m repro.lint`` — the omplint command line.

Exit codes follow the CI contract:

* ``0`` — no finding at or above the ``--fail-on`` severity,
* ``1`` — at least one such finding,
* ``2`` — usage error or unreadable/unparsable input.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.lint import lint_file
from repro.lint.findings import Finding, RULES, Severity
from repro.lint.reporters import (render_json, render_rule_catalogue,
                                  render_text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static race & directive-misuse detector for @omp "
                    "code (see docs/linting.md for the rule catalogue).")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="Python files or directories (searched "
                             "recursively for *.py)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--fail-on", choices=("error", "warning", "never"),
                        default="error", dest="fail_on",
                        help="lowest severity that makes the exit code "
                             "non-zero (default: error)")
    parser.add_argument("--disable", default="", metavar="IDS",
                        help="comma-separated rule ids to suppress, "
                             "e.g. OMP103,OMP104")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def collect_files(paths: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def _should_fail(findings: list[Finding], fail_on: str) -> bool:
    if fail_on == "never":
        return False
    if fail_on == "warning":
        return bool(findings)
    return any(f.severity is Severity.ERROR for f in findings)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.rules:
        render_rule_catalogue()
        return 0
    if not args.paths:
        print("error: no input paths (try --rules for the catalogue)",
              file=sys.stderr)
        return 2

    disabled = {part.strip().upper()
                for part in args.disable.split(",") if part.strip()}
    unknown = disabled - set(RULES)
    if unknown:
        print(f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    findings: list[Finding] = []
    checked = 0
    for path in collect_files(args.paths):
        try:
            file_findings = lint_file(path)
        except (OSError, SyntaxError) as error:
            print(f"error: cannot lint {path}: {error}", file=sys.stderr)
            return 2
        checked += 1
        findings.extend(f for f in file_findings
                        if f.rule not in disabled)

    if args.format == "json":
        render_json(findings, checked=checked)
    else:
        render_text(findings, checked=checked)
    return 1 if _should_fail(findings, args.fail_on) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
