"""Gate diagnostics overhead: compare two ``BENCH_smoke.json`` files.

The flight recorder and watchdog promise a one-attribute-read cost when
disarmed, so a smoke run with ``OMP4PY_FLIGHT``/``OMP4PY_WATCHDOG``
unset must stay within 2% of the recorded baseline.  CI records the
baseline from the pre-diagnostics interpreter state (a first smoke run
in the same job, so both runs share the machine) and fails the build if
the second run regresses past the tolerance.

Smoke kernels finish in fractions of a second, where scheduler jitter
alone exceeds 2%, so the per-kernel check adds an absolute floor: a
kernel only fails the gate when it is slower by *both* the relative
tolerance and the floor.  The total wall time is held to the relative
tolerance plus one floor.

Usage::

    python benchmarks/check_overhead.py BASELINE.json CURRENT.json \
        [--tolerance 0.02] [--floor 0.25]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

SCHEMA = "omp4py-bench-smoke/1"


def load(path: pathlib.Path) -> dict:
    payload = json.loads(path.read_text(encoding="utf-8"))
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise SystemExit(
            f"{path}: unexpected schema {schema!r} (want {SCHEMA!r})")
    return payload


def compare(baseline: dict, current: dict, tolerance: float,
            floor: float) -> list[str]:
    """Return a list of human-readable regression verdicts (empty = OK)."""
    failures: list[str] = []
    base_by_kernel = {r["kernel"]: r for r in baseline["kernels"]}
    for record in current["kernels"]:
        base = base_by_kernel.get(record["kernel"])
        if base is None:
            continue  # new kernel since the baseline: nothing to hold it to
        delta = record["wall_s"] - base["wall_s"]
        if delta > base["wall_s"] * tolerance and delta > floor:
            failures.append(
                f"{record['kernel']}: {base['wall_s']:.3f}s -> "
                f"{record['wall_s']:.3f}s "
                f"(+{delta / base['wall_s'] * 100.0:.1f}%, "
                f"+{delta:.3f}s)")
    base_total = baseline["total_wall_s"]
    cur_total = current["total_wall_s"]
    delta = cur_total - base_total
    if delta > base_total * tolerance + floor:
        failures.append(
            f"total: {base_total:.3f}s -> {cur_total:.3f}s "
            f"(+{delta / base_total * 100.0:.1f}%, +{delta:.3f}s)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("baseline", type=pathlib.Path,
                        help="recorded BENCH_smoke.json baseline")
    parser.add_argument("current", type=pathlib.Path,
                        help="BENCH_smoke.json from the run under test")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="relative slowdown allowed (default 0.02)")
    parser.add_argument("--floor", type=float, default=0.25, metavar="S",
                        help="absolute seconds of jitter to forgive "
                             "(default 0.25)")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline.get("diagnostics") != current.get("diagnostics"):
        print("[check-overhead] note: runs were recorded with different "
              f"diagnostics knobs (baseline {baseline.get('diagnostics')}, "
              f"current {current.get('diagnostics')})")
    failures = compare(baseline, current, args.tolerance, args.floor)
    if failures:
        print("[check-overhead] REGRESSIONS past "
              f"{args.tolerance * 100.0:.0f}% + {args.floor}s:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"[check-overhead] OK: total {current['total_wall_s']:.3f}s vs "
          f"baseline {baseline['total_wall_s']:.3f}s "
          f"(tolerance {args.tolerance * 100.0:.0f}% + {args.floor}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
