"""The paper's Section V extensions in action: task dependences and
taskloop.

1. A blocked *wavefront* (smoothed 2D recurrence): block (i, j) may run
   only after blocks (i-1, j) and (i, j-1). One `task` per block with
   `depend(in/out)` clauses expresses the whole dataflow; the runtime's
   dependence graph (keyed by object identity, the paper's sketch)
   schedules the anti-diagonals in parallel.

2. A `taskloop` computing row checksums, with `grainsize` controlling
   task granularity.

Run with::

    python examples/wavefront_dependences.py [blocks] [block_size]
"""

import sys

from repro import omp

BLOCK = 16


@omp
def wavefront(blocks, block_size, threads):
    """Blocked recurrence: cell = f(left, up) inside each block."""
    n = blocks * block_size
    grid = [[1.0] * n for _ in range(n)]
    # One handle object per block: the dependence keys.
    handles = [[object() for _j in range(blocks)] for _i in range(blocks)]
    with omp("parallel num_threads(threads)"):
        with omp("single"):
            for bi in range(blocks):
                for bj in range(blocks):
                    north = handles[bi - 1][bj] if bi else None
                    west = handles[bi][bj - 1] if bj else None
                    mine = handles[bi][bj]
                    if north is not None and west is not None:
                        with omp("task firstprivate(bi, bj) "
                                 "depend(in: north, west) "
                                 "depend(out: mine)"):
                            _relax_block(grid, bi, bj, block_size)
                    elif north is not None:
                        with omp("task firstprivate(bi, bj) "
                                 "depend(in: north) depend(out: mine)"):
                            _relax_block(grid, bi, bj, block_size)
                    elif west is not None:
                        with omp("task firstprivate(bi, bj) "
                                 "depend(in: west) depend(out: mine)"):
                            _relax_block(grid, bi, bj, block_size)
                    else:
                        with omp("task firstprivate(bi, bj) "
                                 "depend(out: mine)"):
                            _relax_block(grid, bi, bj, block_size)
    return grid


def _relax_block(grid, bi, bj, block_size):
    base_i = bi * block_size
    base_j = bj * block_size
    for i in range(base_i, base_i + block_size):
        for j in range(base_j, base_j + block_size):
            left = grid[i][j - 1] if j else 0.0
            up = grid[i - 1][j] if i else 0.0
            grid[i][j] = 0.5 * (left + up) + 1.0


def wavefront_reference(blocks, block_size):
    n = blocks * block_size
    grid = [[1.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            left = grid[i][j - 1] if j else 0.0
            up = grid[i - 1][j] if i else 0.0
            grid[i][j] = 0.5 * (left + up) + 1.0
    return grid


@omp
def row_checksums(grid, n, threads):
    """taskloop over rows with explicit granularity."""
    sums = [0.0] * n
    with omp("parallel num_threads(threads)"):
        with omp("single"):
            with omp("taskloop grainsize(8)"):
                for i in range(n):
                    total = 0.0
                    for j in range(n):
                        total += grid[i][j]
                    sums[i] = total
    return sums


def main() -> None:
    blocks = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    block_size = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    threads = 4

    grid = wavefront(blocks, block_size, threads)
    expected = wavefront_reference(blocks, block_size)
    matches = all(
        abs(grid[i][j] - expected[i][j]) < 1e-12
        for i in range(len(grid)) for j in range(len(grid)))
    print(f"wavefront {blocks}x{blocks} blocks of "
          f"{block_size}x{block_size}: "
          f"{'matches sequential' if matches else 'MISMATCH'}")

    n = blocks * block_size
    sums = row_checksums(grid, n, threads)
    print(f"taskloop row checksums: first={sums[0]:.4f} "
          f"last={sums[-1]:.4f} total={sum(sums):.2f}")


if __name__ == "__main__":
    main()
