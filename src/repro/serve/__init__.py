"""Shared-memory kernel-serving layer: ``python -m repro.serve``.

The serving subsystem turns the repository's parallel kernels into a
long-running multi-tenant service:

* an HTTP/JSON front door (:mod:`repro.serve.server`) accepting
  requests against the shipped apps plus the fig8 hybrid
  ``jacobi_mpi`` multi-node tenant;
* a shared-memory data plane (:mod:`repro.serve.shm`) — request
  arrays live in ``multiprocessing.shared_memory`` segments and only
  tiny handles cross process boundaries;
* batching and sharding across pooled worker processes
  (:mod:`repro.serve.fleet`, :mod:`repro.serve.worker`), each holding
  a warm hot-team runtime with the stall watchdog armed;
* admission control with load shedding (:mod:`repro.serve.admission`)
  and per-tenant thread budgets mapped onto ``OMP_PLACES`` partitions
  (:mod:`repro.serve.tenants`).

See docs/serving.md for the architecture and the wire protocol.
"""

from repro.serve.admission import AdmissionQueue, QueueFull
from repro.serve.protocol import ServeRequest, result_digest
from repro.serve.server import ServeServer
from repro.serve.shm import ArrayHandle, ShmRegistry, leaked_segments
from repro.serve.tenants import DuplicateTenantError, TenantDirectory

__all__ = ["AdmissionQueue", "ArrayHandle", "DuplicateTenantError",
           "QueueFull", "ServeRequest", "ServeServer", "ShmRegistry",
           "TenantDirectory", "leaked_segments", "result_digest"]
