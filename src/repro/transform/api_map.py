"""Mapping from OpenMP-style API names to runtime methods.

Calls to these functions inside a decorated object are rebound to the
``__omp__`` handle, so *Pure* code queries the pure runtime and
*Hybrid*/*Compiled* code queries the cruntime — the paper's rule that
the two runtimes never share contexts.  The same names are exported at
module level by :mod:`repro.api` for use outside decorated code.
"""

OMP_API_METHODS = {
    "omp_set_num_threads": "set_num_threads",
    "omp_get_num_threads": "get_num_threads",
    "omp_get_max_threads": "get_max_threads",
    "omp_get_thread_num": "get_thread_num",
    "omp_get_num_procs": "get_num_procs",
    "omp_in_parallel": "in_parallel",
    "omp_set_dynamic": "set_dynamic",
    "omp_get_dynamic": "get_dynamic",
    "omp_set_nested": "set_nested",
    "omp_get_nested": "get_nested",
    "omp_set_schedule": "set_schedule",
    "omp_get_schedule": "get_schedule",
    "omp_get_thread_limit": "get_thread_limit",
    "omp_set_max_active_levels": "set_max_active_levels",
    "omp_get_max_active_levels": "get_max_active_levels",
    "omp_get_level": "get_level",
    "omp_get_active_level": "get_active_level",
    "omp_get_num_places": "get_num_places",
    "omp_get_place_num": "get_place_num",
    "omp_get_ancestor_thread_num": "get_ancestor_thread_num",
    "omp_get_team_size": "get_team_size",
    "omp_get_wtime": "get_wtime",
    "omp_get_wtick": "get_wtick",
    "omp_init_lock": "init_lock",
    "omp_destroy_lock": "destroy_lock",
    "omp_set_lock": "set_lock",
    "omp_unset_lock": "unset_lock",
    "omp_test_lock": "test_lock",
    "omp_init_nest_lock": "init_nest_lock",
    "omp_destroy_nest_lock": "destroy_nest_lock",
    "omp_set_nest_lock": "set_nest_lock",
    "omp_unset_nest_lock": "unset_nest_lock",
    "omp_test_nest_lock": "test_nest_lock",
    "omp_declare_reduction": "declare_reduction",
    "omp_display_env": "display_env",
}
