"""``OMP_PLACES`` parsing.

A *place* is a set of CPUs a thread may be bound to; ``OMP_PLACES``
describes the ordered place list the proc-bind policies index into.
Two syntax families are supported, matching the subset real runtimes
see in practice:

* abstract names — ``threads``, ``cores``, ``sockets``, each with an
  optional count: ``threads(4)``.  Python cannot portably see SMT
  topology, so ``threads`` and ``cores`` both yield one place per
  available CPU; ``sockets`` groups CPUs by
  ``/sys/devices/system/cpu/cpu*/topology/physical_package_id`` where
  readable and falls back to a single all-CPU place.
* explicit lists — comma-separated ``{...}`` entries where each entry
  is a list of CPU numbers and/or ``lower:len`` / ``lower:len:stride``
  interval triplets: ``{0,1},{2,3}`` or ``{0:4},{4:4}``.

Anything else (including the spec's ``!`` exclusion and place-level
``:len:stride`` suffixes) raises :class:`~repro.errors.OmpError` with
the offending text, never a silent misparse.
"""

from __future__ import annotations

import os
import re

from repro.errors import OmpError

#: Abstract place-list names accepted by :func:`parse_places`.
ABSTRACT_NAMES = ("threads", "cores", "sockets")

_ABSTRACT_RE = re.compile(
    r"^(?P<name>[a-z_]+)\s*(?:\(\s*(?P<count>\d+)\s*\))?$")


def available_cpus() -> tuple[int, ...]:
    """CPUs this process may run on, in ascending order.

    Uses ``os.sched_getaffinity`` where the platform has it (Linux) and
    falls back to ``range(os.cpu_count())`` elsewhere.
    """
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            return tuple(sorted(getter(0)))
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return tuple(range(os.cpu_count() or 1))


def _socket_of(cpu: int) -> int:
    """Best-effort socket id of ``cpu`` from sysfs (``0`` when unknown)."""
    path = (f"/sys/devices/system/cpu/cpu{cpu}/topology/"
            f"physical_package_id")
    try:
        with open(path, encoding="ascii") as handle:
            return int(handle.read().strip())
    except (OSError, ValueError):
        return 0


def _parse_interval(text: str, spec: str) -> list[int]:
    """One ``num`` / ``lower:len`` / ``lower:len:stride`` resource."""
    parts = [part.strip() for part in text.split(":")]
    if len(parts) > 3 or not all(parts):
        raise OmpError(f"invalid OMP_PLACES interval {text!r} in {spec!r}")
    try:
        numbers = [int(part) for part in parts]
    except ValueError:
        raise OmpError(f"invalid OMP_PLACES interval {text!r} in "
                       f"{spec!r}") from None
    if len(numbers) == 1:
        (lower,), length, stride = numbers, 1, 1
    elif len(numbers) == 2:
        (lower, length), stride = numbers, 1
    else:
        lower, length, stride = numbers
    if lower < 0:
        raise OmpError(f"OMP_PLACES CPU numbers must be non-negative, "
                       f"got {lower} in {spec!r}")
    if length < 1:
        raise OmpError(f"OMP_PLACES interval length must be positive, "
                       f"got {length} in {spec!r}")
    if stride == 0:
        raise OmpError(f"OMP_PLACES interval stride must be non-zero "
                       f"in {spec!r}")
    cpus = [lower + k * stride for k in range(length)]
    if any(cpu < 0 for cpu in cpus):
        raise OmpError(f"OMP_PLACES interval {text!r} reaches a negative "
                       f"CPU number in {spec!r}")
    return cpus


def _split_places(spec: str) -> list[str]:
    """Split ``{...},{...}`` on the commas *between* braces."""
    entries: list[str] = []
    depth = 0
    start = 0
    for pos, char in enumerate(spec):
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth < 0:
                raise OmpError(f"unbalanced braces in OMP_PLACES {spec!r}")
        elif char == "," and depth == 0:
            entries.append(spec[start:pos])
            start = pos + 1
    if depth != 0:
        raise OmpError(f"unbalanced braces in OMP_PLACES {spec!r}")
    entries.append(spec[start:])
    return [entry.strip() for entry in entries]


def _explicit_places(spec: str) -> tuple[tuple[int, ...], ...]:
    places: list[tuple[int, ...]] = []
    for entry in _split_places(spec):
        if not (entry.startswith("{") and entry.endswith("}")):
            raise OmpError(f"invalid OMP_PLACES place {entry!r} in "
                           f"{spec!r} (expected '{{...}}')")
        body = entry[1:-1].strip()
        if not body:
            raise OmpError(f"empty OMP_PLACES place in {spec!r}")
        cpus: list[int] = []
        for resource in body.split(","):
            cpus.extend(_parse_interval(resource.strip(), spec))
        places.append(tuple(sorted(set(cpus))))
    return tuple(places)


def _abstract_places(name: str, count: int | None,
                     cpus: tuple[int, ...]) -> tuple[tuple[int, ...], ...]:
    if name in ("threads", "cores"):
        places = tuple((cpu,) for cpu in cpus)
    else:  # sockets
        by_socket: dict[int, list[int]] = {}
        for cpu in cpus:
            by_socket.setdefault(_socket_of(cpu), []).append(cpu)
        places = tuple(tuple(group)
                       for _sock, group in sorted(by_socket.items()))
    if count is not None:
        if count < 1:
            raise OmpError(f"OMP_PLACES count must be positive, "
                           f"got {count}")
        places = places[:count]
    return places


def parse_places(spec: str,
                 cpus: tuple[int, ...] | None = None
                 ) -> tuple[tuple[int, ...], ...]:
    """Parse an ``OMP_PLACES`` value into an ordered tuple of places.

    Each place is a tuple of CPU numbers.  ``cpus`` overrides the
    detected CPU set (tests use this to exercise abstract names on a
    fixed topology).  Invalid specs raise :class:`OmpError`.
    """
    text = spec.strip()
    if not text:
        raise OmpError("OMP_PLACES must not be empty")
    if cpus is None:
        cpus = available_cpus()
    lowered = text.lower()
    match = _ABSTRACT_RE.match(lowered)
    if match and not text.startswith("{"):
        name = match.group("name")
        if name not in ABSTRACT_NAMES:
            raise OmpError(f"unknown OMP_PLACES abstract name {name!r} "
                           f"(expected one of {ABSTRACT_NAMES})")
        count = match.group("count")
        return _abstract_places(name, int(count) if count else None, cpus)
    return _explicit_places(text)


def format_places(places: tuple[tuple[int, ...], ...]) -> str:
    """Render places back into ``OMP_PLACES`` explicit-list syntax."""
    return ",".join("{" + ",".join(str(cpu) for cpu in place) + "}"
                    for place in places)
