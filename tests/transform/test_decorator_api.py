"""Tests of the @omp decorator surface, its options, and repro.pure."""

import os

import pytest

from repro import Mode, omp, transform
from repro.errors import OmpError, OmpTransformError


def simple_sum(n):
    from repro import omp
    total = 0
    with omp("parallel for reduction(+:total) num_threads(2)"):
        for i in range(n):
            total += i
    return total


def typed_sum(n):
    from repro import omp
    total: float = 0.0
    with omp("parallel for reduction(+:total) num_threads(2)"):
        for i in range(n):
            total += i * 1.0
    return total


class TestDecoratorForms:
    def test_bare_decorator(self):
        decorated = omp(simple_sum)
        assert decorated(100) == sum(range(100))
        assert decorated.__omp_mode__ is Mode.HYBRID

    def test_decorator_with_mode(self):
        decorated = omp(mode="pure")(simple_sum)
        assert decorated.__omp_mode__ is Mode.PURE
        assert decorated(50) == sum(range(50))

    def test_compile_true_selects_typed_pipeline(self):
        decorated = omp(compile=True)(typed_sum)
        assert decorated.__omp_mode__ is Mode.COMPILED_DT
        assert decorated(100) == float(sum(range(100)))

    def test_directive_marker_is_noop(self):
        marker = omp("parallel for")
        with marker:
            pass
        assert marker.directive == "parallel for"

    def test_marker_rejects_options(self):
        with pytest.raises(OmpError):
            omp("parallel", dump=True)

    def test_unknown_option_rejected(self):
        with pytest.raises(OmpError, match="unknown"):
            omp(frobnicate=True)(simple_sum)

    def test_non_callable_rejected(self):
        with pytest.raises(OmpError):
            omp(42)


class TestDecoratorOptions:
    def test_dump_prints_generated_source(self, capsys):
        transform(simple_sum, Mode.HYBRID, dump=True)
        err = capsys.readouterr().err
        assert "parallel_run" in err
        assert "generated code" in err

    def test_generated_source_attached(self):
        decorated = transform(simple_sum, Mode.HYBRID)
        assert "for_bounds" in decorated.__omp_source__
        assert "reduction_init" in decorated.__omp_source__

    def test_cache_writes_generated_file(self, tmp_path):
        cache_dir = str(tmp_path / "omp_cache")
        transform(simple_sum, Mode.HYBRID, cache=cache_dir)
        files = os.listdir(cache_dir)
        assert len(files) == 1
        content = (tmp_path / "omp_cache" / files[0]).read_text()
        assert "parallel_run" in content

    def test_cache_force_rewrites(self, tmp_path):
        cache_dir = str(tmp_path / "omp_cache")
        transform(simple_sum, Mode.HYBRID, cache=cache_dir)
        path = os.path.join(cache_dir, os.listdir(cache_dir)[0])
        os.truncate(path, 0)
        transform(simple_sum, Mode.HYBRID, cache=cache_dir, force=True)
        assert os.path.getsize(path) > 0

    def test_cache_without_force_keeps_existing(self, tmp_path):
        cache_dir = str(tmp_path / "omp_cache")
        transform(simple_sum, Mode.HYBRID, cache=cache_dir)
        path = os.path.join(cache_dir, os.listdir(cache_dir)[0])
        os.truncate(path, 0)
        transform(simple_sum, Mode.HYBRID, cache=cache_dir)
        assert os.path.getsize(path) == 0

    def test_cache_hit_skips_retransform(self, tmp_path):
        cache_dir = str(tmp_path / "omp_cache")
        first = transform(simple_sum, Mode.HYBRID, cache=cache_dir)
        second = transform(simple_sum, Mode.HYBRID, cache=cache_dir)
        assert getattr(first, "__omp_cached__", False) is False
        assert second.__omp_cached__ is True
        assert second(100) == first(100) == 4950

    def test_cache_keys_include_mode(self, tmp_path):
        cache_dir = str(tmp_path / "omp_cache")
        transform(simple_sum, Mode.HYBRID, cache=cache_dir)
        transform(simple_sum, Mode.PURE, cache=cache_dir)
        assert len(os.listdir(cache_dir)) == 2

    def test_cached_compileddt_rebinds_kernels(self, tmp_path):
        cache_dir = str(tmp_path / "omp_cache")
        transform(typed_sum, Mode.COMPILED_DT, cache=cache_dir)
        loaded = transform(typed_sum, Mode.COMPILED_DT, cache=cache_dir)
        assert loaded.__omp_cached__ is True
        assert loaded(100) == float(sum(range(100)))


class TestEnvironmentDefaults:
    def test_omp4py_mode_env(self, monkeypatch):
        monkeypatch.setenv("OMP4PY_MODE", "pure")
        decorated = omp(simple_sum)
        assert decorated.__omp_mode__ is Mode.PURE


class TestPureModule:
    def test_pure_decorator_defaults_to_pure_mode(self):
        from repro import pure
        decorated = pure.omp(simple_sum)
        assert decorated.__omp_mode__ is Mode.PURE
        assert decorated(30) == sum(range(30))

    def test_pure_marker_still_works(self):
        from repro import pure
        with pure.omp("parallel"):
            pass

    def test_pure_api_functions_bound_to_pure_runtime(self):
        from repro import pure
        from repro.runtime import pure_runtime
        old = pure_runtime.get_max_threads()
        try:
            pure.omp_set_num_threads(9)
            assert pure.omp_get_max_threads() == 9
            assert pure_runtime.get_max_threads() == 9
        finally:
            pure_runtime.set_num_threads(old)


class TestUseRuntime:
    def test_switch_module_level_api(self):
        from repro import api
        from repro.runtime import pure_runtime
        try:
            api.use_runtime("pure")
            assert api.active_runtime() is pure_runtime
        finally:
            api.use_runtime("hybrid")

    def test_accepts_runtime_instance(self):
        from repro import api
        from repro.cruntime import cruntime
        api.use_runtime(cruntime)
        assert api.active_runtime() is cruntime


class TestMultipleVariantsCoexist:
    def test_variants_do_not_interfere(self):
        pure_variant = transform(simple_sum, Mode.PURE)
        hybrid_variant = transform(simple_sum, Mode.HYBRID)
        dt_variant = transform(typed_sum, Mode.COMPILED_DT)
        assert pure_variant(100) == hybrid_variant(100) == 4950
        assert dt_variant(100) == 4950.0
        assert pure_variant.__omp_mode__ is not hybrid_variant.__omp_mode__


class TestTransformErrors:
    def test_lambda_rejected(self):
        with pytest.raises(OmpTransformError):
            transform(lambda n: n, Mode.HYBRID)

    def test_builtin_rejected(self):
        with pytest.raises(OmpTransformError):
            transform(len, Mode.HYBRID)


class TestCompileEnvDefault:
    def test_omp4py_compile_env(self, monkeypatch):
        monkeypatch.setenv("OMP4PY_COMPILE", "true")
        decorated = omp(typed_sum)
        assert decorated.__omp_mode__ is Mode.COMPILED_DT

    def test_explicit_mode_beats_compile_flag(self):
        decorated = omp(mode="pure", compile=True)(typed_sum)
        assert decorated.__omp_mode__ is Mode.PURE
