"""Radix-2 Stockham FFT (the paper's *fft*).

Paper configuration: complex vector of 16M elements; constructs:
``parallel``, ``for`` with implicit barriers (Table I).

The Stockham autosort formulation ping-pongs between two buffer pairs,
so every stage reads one array set and writes the other — no aliasing,
no bit-reversal pass, and a butterfly loop that flattens into a single
parallel iteration space per stage.  Real and imaginary parts live in
separate float arrays (the representation typed Cython would use).
"""

from __future__ import annotations

import cmath
import math
import random

import numpy as np

from repro.apps.base import AppSpec
from repro.api import omp


def make_signal(n: int, seed: int = 2718):
    rng = random.Random(seed)
    re = [rng.uniform(-1.0, 1.0) for _ in range(n)]
    im = [rng.uniform(-1.0, 1.0) for _ in range(n)]
    return re, im


def make_input(n: int, seed: int = 2718) -> dict:
    if n & (n - 1):
        raise ValueError("fft size must be a power of two")
    re, im = make_signal(n, seed)
    return {"re": re, "im": im, "n": n}


def make_input_dt(n: int, seed: int = 2718) -> dict:
    plain = make_input(n, seed)
    return {"re": np.array(plain["re"]), "im": np.array(plain["im"]),
            "n": n}


def sequential(re, im, n):
    """Recursive Cooley-Tukey reference."""
    values = [complex(r, i) for r, i in zip(re, im)]

    def fft(xs):
        size = len(xs)
        if size == 1:
            return xs
        evens = fft(xs[0::2])
        odds = fft(xs[1::2])
        half = size // 2
        out = [0j] * size
        for k in range(half):
            twiddle = cmath.exp(-2j * cmath.pi * k / size) * odds[k]
            out[k] = evens[k] + twiddle
            out[k + half] = evens[k] - twiddle
        return out

    result = fft(values)
    return [z.real for z in result], [z.imag for z in result]


def kernel(re, im, n, threads):
    import math
    work_re = [0.0] * n
    work_im = [0.0] * n
    src_re, src_im = re, im
    dst_re, dst_im = work_re, work_im
    length = n
    stride = 1
    while length > 1:
        half = length // 2
        theta = -2.0 * math.pi / length
        total = half * stride
        with omp("parallel for num_threads(threads)"):
            for t in range(total):
                p = t // stride
                q = t - p * stride
                wr = math.cos(theta * p)
                wi = math.sin(theta * p)
                ar = src_re[q + stride * p]
                ai = src_im[q + stride * p]
                br = src_re[q + stride * (p + half)]
                bi = src_im[q + stride * (p + half)]
                dst_re[q + stride * 2 * p] = ar + br
                dst_im[q + stride * 2 * p] = ai + bi
                tr = ar - br
                ti = ai - bi
                dst_re[q + stride * (2 * p + 1)] = tr * wr - ti * wi
                dst_im[q + stride * (2 * p + 1)] = tr * wi + ti * wr
        src_re, dst_re = dst_re, src_re
        src_im, dst_im = dst_im, src_im
        length = half
        stride = stride * 2
    return src_re, src_im


def kernel_dt(re, im, n, threads):
    import math
    work_re = np.zeros(n)
    work_im = np.zeros(n)
    src_re, src_im = re, im
    dst_re, dst_im = work_re, work_im
    length: int = n
    stride: int = 1
    while length > 1:
        half: int = length // 2
        theta: float = -2.0 * math.pi / length
        total: int = half * stride
        with omp("parallel for num_threads(threads)"):
            for t in range(total):
                p = t // stride
                q = t - p * stride
                wr = math.cos(theta * p)
                wi = math.sin(theta * p)
                ar = src_re[q + stride * p]
                ai = src_im[q + stride * p]
                br = src_re[q + stride * (p + half)]
                bi = src_im[q + stride * (p + half)]
                dst_re[q + stride * 2 * p] = ar + br
                dst_im[q + stride * 2 * p] = ai + bi
                tr = ar - br
                ti = ai - bi
                dst_re[q + stride * (2 * p + 1)] = tr * wr - ti * wi
                dst_im[q + stride * (2 * p + 1)] = tr * wi + ti * wr
        src_re, dst_re = dst_re, src_re
        src_im, dst_im = dst_im, src_im
        length = half
        stride = stride * 2
    return src_re, src_im


def pyomp_kernel(re, im, n, threads):
    import math
    work_re = np.zeros(n)
    work_im = np.zeros(n)
    src_re, src_im = re, im
    dst_re, dst_im = work_re, work_im
    length: int = n
    stride: int = 1
    while length > 1:
        half: int = length // 2
        theta: float = -2.0 * math.pi / length
        total: int = half * stride
        with openmp("parallel for num_threads(threads)"):  # noqa: F821
            for t in range(total):
                p = t // stride
                q = t - p * stride
                wr = math.cos(theta * p)
                wi = math.sin(theta * p)
                ar = src_re[q + stride * p]
                ai = src_im[q + stride * p]
                br = src_re[q + stride * (p + half)]
                bi = src_im[q + stride * (p + half)]
                dst_re[q + stride * 2 * p] = ar + br
                dst_im[q + stride * 2 * p] = ai + bi
                tr = ar - br
                ti = ai - bi
                dst_re[q + stride * (2 * p + 1)] = tr * wr - ti * wi
                dst_im[q + stride * (2 * p + 1)] = tr * wi + ti * wr
        src_re, dst_re = dst_re, src_re
        src_im, dst_im = dst_im, src_im
        length = half
        stride = stride * 2
    return src_re, src_im


def verify(result, reference) -> bool:
    got = np.asarray(result[0]) + 1j * np.asarray(result[1])
    expected = np.asarray(reference[0]) + 1j * np.asarray(reference[1])
    return bool(np.allclose(got, expected, atol=1e-6))


SPEC = AppSpec(
    name="fft",
    title="Fast Fourier Transform",
    make_input=make_input,
    make_input_dt=make_input_dt,
    sequential=sequential,
    kernel=kernel,
    kernel_dt=kernel_dt,
    pyomp=pyomp_kernel,
    verify=verify,
    sizes={
        "test": {"n": 256},
        "default": {"n": 1 << 14},
        "paper": {"n": 1 << 24},
    },
    table1=("parallel, for", "Implicit barriers"),
)
