"""Live metrics endpoint and the OMP4PY_METRICS_PORT knob."""

import json
import urllib.error
import urllib.request

import pytest

from repro import env
from repro.errors import OmpError
from repro.explain.live import MetricsServer
from repro.ompt.metrics import MetricsTool
from repro.runtime import pure_runtime


def fetch(url, timeout=5):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read()


class TestMetricsServer:
    def test_serves_metrics_explain_healthz(self):
        tool = MetricsTool()
        tool.registry.counter("omp_test_total", "test counter").inc(3)
        server = MetricsServer(pure_runtime, registry=tool.registry,
                               port=0).start()
        try:
            assert server.port and server.port > 0
            status, body = fetch(server.url + "/metrics")
            assert status == 200
            text = body.decode()
            assert "# TYPE omp_test_total counter" in text
            assert "omp_test_total 3" in text

            status, body = fetch(server.url + "/explain")
            assert status == 200
            payload = json.loads(body)
            assert payload["runtime"] == pure_runtime.name
            assert "critical_path_s" in payload
            assert "recording" in payload

            status, body = fetch(server.url + "/healthz")
            assert status == 200
            assert json.loads(body) == {"ok": True}
        finally:
            server.stop()

    def test_unknown_path_is_404(self):
        server = MetricsServer(pure_runtime, port=0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url + "/nope")
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_no_registry_metrics_placeholder(self):
        server = MetricsServer(pure_runtime, registry=None, port=0)
        assert "registry" in server.metrics_text()
        assert server.port is None
        assert server.url is None
        server.stop()  # no-op before start

    def test_stop_is_idempotent_and_start_reentrant(self):
        server = MetricsServer(pure_runtime, port=0)
        assert server.start() is server.start()
        server.stop()
        server.stop()


class TestProfileRoute:
    def test_disarmed_reports_so(self):
        server = MetricsServer(pure_runtime, port=0).start()
        try:
            status, body = fetch(server.url + "/profile")
            assert status == 200
            payload = json.loads(body)
            assert payload == {"armed": False,
                               "runtime": pure_runtime.name}
        finally:
            server.stop()

    def test_armed_serves_report_and_collapsed(self):
        from repro.sampling.exporters import validate_collapsed
        from repro.sampling.sampler import Sampler
        sampler = Sampler(pure_runtime, interval=0.005).start()
        server = MetricsServer(pure_runtime, port=0).start()
        try:
            status, body = fetch(server.url + "/profile")
            assert status == 200
            payload = json.loads(body)
            assert payload["armed"] is True
            assert payload["runtime"] == pure_runtime.name
            for key in ("directives", "top_stacks", "by_state"):
                assert key in payload

            status, body = fetch(server.url + "/profile?format=collapsed")
            assert status == 200
            assert validate_collapsed(body.decode()) == []
        finally:
            server.stop()
            sampler.stop()


class TestMetricsPortKnob:
    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv("OMP4PY_METRICS_PORT", raising=False)
        assert env.metrics_port() is None

    @pytest.mark.parametrize("raw", ["off", "false", "no", "", "  "])
    def test_false_spellings_are_off(self, monkeypatch, raw):
        monkeypatch.setenv("OMP4PY_METRICS_PORT", raw)
        assert env.metrics_port() is None

    def test_zero_requests_an_ephemeral_port(self, monkeypatch):
        monkeypatch.setenv("OMP4PY_METRICS_PORT", "0")
        assert env.metrics_port() == 0

    def test_explicit_port(self, monkeypatch):
        monkeypatch.setenv("OMP4PY_METRICS_PORT", "9464")
        assert env.metrics_port() == 9464

    @pytest.mark.parametrize("raw", ["eleventy", "-1", "70000"])
    def test_invalid_values_raise(self, monkeypatch, raw):
        monkeypatch.setenv("OMP4PY_METRICS_PORT", raw)
        with pytest.raises(OmpError):
            env.metrics_port()


class TestAutoInstrumentWiring:
    def test_port_knob_arms_tracer_tool_and_server(self, monkeypatch):
        from repro.ompt import auto
        monkeypatch.setattr(auto.env, "trace_spec", lambda: None)
        monkeypatch.setattr(auto.env, "metrics_spec", lambda: None)
        monkeypatch.setattr(auto.env, "metrics_port", lambda: 0)
        try:
            auto.auto_instrument(pure_runtime)
            assert pure_runtime.tracer.enabled
            assert auto.active_tool(pure_runtime) is not None
            server = auto.active_server(pure_runtime)
            assert server is not None and server.port > 0
            status, _body = fetch(server.url + "/healthz")
            assert status == 200
        finally:
            auto.deactivate(pure_runtime)
        assert auto.active_server(pure_runtime) is None
        assert not pure_runtime.tracer.enabled
