"""End-to-end tests of the taskloop prototype (paper Section V)."""

import pytest

from repro import transform
from repro.errors import OmpSyntaxError


def taskloop_fill(n):
    from repro import omp
    out = [0] * n
    with omp("parallel num_threads(3)"):
        with omp("single"):
            with omp("taskloop grainsize(8)"):
                for i in range(n):
                    out[i] = i * 3
    return out


def taskloop_num_tasks(n):
    from repro import omp
    out = [0] * n
    with omp("parallel num_threads(3)"):
        with omp("single"):
            with omp("taskloop num_tasks(5)"):
                for i in range(n):
                    out[i] = i + 1
    return out


def taskloop_default_grain(n):
    from repro import omp
    out = [0] * n
    with omp("parallel num_threads(2)"):
        with omp("single"):
            with omp("taskloop"):
                for i in range(n):
                    out[i] = i
    return out


def taskloop_with_step(n):
    from repro import omp
    hits = []
    with omp("parallel num_threads(3)"):
        with omp("single"):
            with omp("taskloop grainsize(4)"):
                for i in range(0, n, 5):
                    with omp("critical"):
                        hits.append(i)
    return sorted(hits)


def taskloop_shared_accumulation(n):
    from repro import omp
    total = 0
    with omp("parallel num_threads(3)"):
        with omp("single"):
            with omp("taskloop grainsize(10)"):
                for i in range(n):
                    with omp("critical"):
                        total += i
    return total


def taskloop_joins_before_continuing(n):
    from repro import omp
    out = [0] * n
    order = []
    with omp("parallel num_threads(3)"):
        with omp("single"):
            with omp("taskloop grainsize(4)"):
                for i in range(n):
                    out[i] = 1
            # Implicit taskgroup: every task finished by here.
            order.append(sum(out))
    return order


def taskloop_firstprivate(n):
    from repro import omp
    scale = 10
    out = [0] * n
    with omp("parallel num_threads(2)"):
        with omp("single"):
            with omp("taskloop grainsize(8) firstprivate(scale)"):
                for i in range(n):
                    out[i] = i * scale
    return out


def taskloop_grain_and_num_tasks(n):
    from repro import omp
    with omp("taskloop grainsize(4) num_tasks(2)"):
        for i in range(n):
            pass


def taskloop_over_list(items):
    from repro import omp
    with omp("taskloop"):
        for item in items:
            pass


class TestTaskloop:
    def test_fill(self, runtime_mode):
        fn = transform(taskloop_fill, runtime_mode)
        assert fn(53) == [i * 3 for i in range(53)]

    def test_num_tasks(self, runtime_mode):
        fn = transform(taskloop_num_tasks, runtime_mode)
        assert fn(23) == [i + 1 for i in range(23)]

    def test_default_grain(self, runtime_mode):
        fn = transform(taskloop_default_grain, runtime_mode)
        assert fn(40) == list(range(40))

    def test_step(self, runtime_mode):
        fn = transform(taskloop_with_step, runtime_mode)
        assert fn(47) == list(range(0, 47, 5))

    def test_shared_accumulation(self, runtime_mode):
        fn = transform(taskloop_shared_accumulation, runtime_mode)
        assert fn(30) == sum(range(30))

    def test_implicit_taskgroup_join(self, runtime_mode):
        fn = transform(taskloop_joins_before_continuing, runtime_mode)
        assert fn(21) == [21]

    def test_firstprivate(self, runtime_mode):
        fn = transform(taskloop_firstprivate, runtime_mode)
        assert fn(9) == [i * 10 for i in range(9)]

    def test_empty_range(self, runtime_mode):
        fn = transform(taskloop_fill, runtime_mode)
        assert fn(0) == []


class TestTaskloopErrors:
    def test_grainsize_num_tasks_exclusive(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="mutually exclusive"):
            transform(taskloop_grain_and_num_tasks, runtime_mode)

    def test_requires_range_loop(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="range"):
            transform(taskloop_over_list, runtime_mode)
