"""``omplint`` — static race & directive-misuse detection for ``@omp``
code.

The linter walks the AST of directive-bearing functions and reports
:class:`Finding` records for the rule catalogue in
:mod:`repro.lint.findings`: unsynchronized shared writes, reads of
uninitialised privates, ineffective first/lastprivate clauses, illegal
construct nesting and barrier deadlock shapes, and worksharing
loop-index modification.  Sharing is resolved with the transformer's
own machinery (:mod:`repro.transform.scope`,
:mod:`repro.transform.datasharing`), so "shared" here means exactly
what the generated code makes shared.

Three front ends:

* programmatic — :func:`lint_source` / :func:`lint_file` /
  :func:`lint_target` return ``list[Finding]``;
* decorator — ``@omp(lint="warn")`` or ``@omp(lint="strict")``
  (strict raises :class:`repro.errors.OmpLintError`);
* CLI — ``python -m repro.lint <files-or-dirs>`` with text/JSON output
  and CI-friendly exit codes.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import warnings

from repro.errors import OmpLintError, OmpTransformError
from repro.lint.findings import (Finding, RULES, Rule, Severity,
                                 worst_severity)
from repro.transform import scope

__all__ = ["Finding", "Rule", "RULES", "Severity", "lint_source",
           "lint_file", "lint_tree", "lint_target", "enforce",
           "worst_severity"]


def lint_tree(tree: ast.Module, *, filename: str = "<string>",
              module_globals: set[str] | None = None) -> list[Finding]:
    """Lint every directive-bearing function in a parsed module."""
    from repro.lint import dataflow
    from repro.lint.rules import FunctionLinter

    if module_globals is None:
        module_globals = scope.assigned_names(tree.body)
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not dataflow.contains_directives(node):
            continue
        linter = FunctionLinter(node, filename=filename,
                                module_globals=module_globals)
        findings.extend(linter.run())
    findings.sort(key=lambda f: (f.filename, f.lineno, f.col, f.rule))
    return findings


def lint_source(source: str, *, filename: str = "<string>",
                module_globals: set[str] | None = None) -> list[Finding]:
    """Lint a module source string."""
    tree = ast.parse(source, filename=filename)
    return lint_tree(tree, filename=filename,
                     module_globals=module_globals)


def lint_file(path) -> list[Finding]:
    """Lint one Python file."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, filename=str(path))


def lint_target(target) -> list[Finding]:
    """Lint a function or class object (the decorator's entry point)."""
    try:
        lines, start = inspect.getsourcelines(target)
        filename = inspect.getfile(target)
    except (TypeError, OSError) as error:
        raise OmpTransformError(
            f"cannot retrieve the source of {target!r} for linting; "
            f"file-backed source code is required") from error
    tree = ast.parse(textwrap.dedent("".join(lines)))
    ast.increment_lineno(tree, start - 1)
    module_globals = set(getattr(target, "__globals__", None)
                         or vars(inspect.getmodule(target) or object()))
    return lint_tree(tree, filename=filename,
                     module_globals=module_globals)


def enforce(target, action: str) -> None:
    """Apply a lint policy to a decoration target.

    ``action`` is ``"warn"`` (error findings become warnings) or
    ``"strict"`` (error findings raise :class:`OmpLintError`; warnings
    still warn).  Anything falsy or ``"off"`` is a no-op.
    """
    if not action or action == "off":
        return
    if action not in ("warn", "strict"):
        raise OmpLintError(
            f"invalid lint option {action!r}: use 'off', 'warn' or "
            f"'strict'", findings=[])
    findings = lint_target(target)
    errors = [f for f in findings if f.severity is Severity.ERROR]
    if action == "strict" and errors:
        summary = "; ".join(str(f) for f in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        raise OmpLintError(
            f"omplint found {len(errors)} error-severity finding(s) in "
            f"{getattr(target, '__qualname__', target)!r}: {summary}"
            f"{more}", findings=findings)
    for finding in findings:
        warnings.warn(f"omplint: {finding}", stacklevel=3)
