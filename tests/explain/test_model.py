"""Amdahl / USL fits recover known synthetic curves."""

import pytest

from repro.explain.model import amdahl_fit, fit_models, usl_fit


def amdahl_curve(s, t1=2.0, counts=(1, 2, 4, 8)):
    return [(n, t1 * (s + (1.0 - s) / n)) for n in counts]


class TestAmdahl:
    def test_recovers_serial_fraction(self):
        fit = amdahl_fit(amdahl_curve(0.25))
        assert fit is not None
        assert abs(fit["serial_fraction"] - 0.25) < 1e-9
        assert abs(fit["speedup_ceiling"] - 4.0) < 1e-6
        assert abs(fit["t1_s"] - 2.0) < 1e-12

    def test_perfect_scaling_has_unbounded_ceiling(self):
        fit = amdahl_fit(amdahl_curve(0.0))
        assert fit["serial_fraction"] == 0.0
        assert fit["speedup_ceiling"] == float("inf")

    def test_single_point_is_unfittable(self):
        assert amdahl_fit([(4, 1.0)]) is None
        assert amdahl_fit([]) is None

    def test_missing_t1_falls_back_to_ideal_scaling(self):
        fit = amdahl_fit([(2, 1.0), (4, 0.5)])
        assert fit is not None
        assert fit["t1_s"] == pytest.approx(2.0)


class TestUsl:
    def test_recovers_retrograde_curve(self):
        sigma, kappa, t1 = 0.05, 0.01, 1.0

        def t_of(n):
            speedup = n / (1 + sigma * (n - 1) + kappa * n * (n - 1))
            return t1 / speedup

        points = [(n, t_of(n)) for n in (1, 2, 4, 8, 16)]
        fit = usl_fit(points)
        assert fit is not None
        assert fit["sigma"] == pytest.approx(sigma, abs=0.02)
        assert fit["kappa"] == pytest.approx(kappa, abs=0.005)
        expected_peak = ((1 - sigma) / kappa) ** 0.5
        assert fit["peak_threads"] == pytest.approx(expected_peak,
                                                    rel=0.3)

    def test_contention_free_curve_has_no_peak(self):
        points = [(n, 1.0 / n) for n in (1, 2, 4, 8)]
        fit = usl_fit(points)
        assert fit["kappa"] == pytest.approx(0.0, abs=1e-6)
        assert fit["peak_threads"] == float("inf")


class TestFitModels:
    def test_combined_ceiling_is_the_binding_one(self):
        result = fit_models(amdahl_curve(0.2))
        assert result is not None
        assert result["amdahl"] is not None
        assert result["usl"] is not None
        assert result["speedup_ceiling"] <= 5.0 + 1e-6

    def test_unfittable_points_give_none(self):
        assert fit_models([(4, 1.0)]) is None
