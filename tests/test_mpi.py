"""Tests of the miniature MPI substrate."""

import numpy as np
import pytest

from repro.errors import OmpRuntimeError
from repro.mpi import comm_world, mpirun
from repro.mpi.comm import MAX, MIN, PROD, SUM

pytestmark = pytest.mark.mpi


class TestLauncher:
    def test_returns_per_rank_results(self):
        results = mpirun(4, lambda comm: comm.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_rank_and_size(self):
        results = mpirun(3, lambda comm: (comm.Get_rank(),
                                          comm.Get_size()))
        assert results == [(0, 3), (1, 3), (2, 3)]

    def test_extra_args_forwarded(self):
        results = mpirun(2, lambda comm, a, b=0: a + b + comm.rank, 5,
                         b=1)
        assert results == [6, 7]

    def test_comm_world_inside_launch(self):
        results = mpirun(2, lambda comm: comm_world().rank)
        assert results == [0, 1]

    def test_comm_world_outside_raises(self):
        with pytest.raises(OmpRuntimeError):
            comm_world()

    def test_rank_error_propagates(self):
        def main(comm):
            if comm.rank == 1:
                raise ValueError("bad rank")
            comm.barrier()

        with pytest.raises(OmpRuntimeError):
            mpirun(3, main)

    def test_zero_ranks_rejected(self):
        with pytest.raises(OmpRuntimeError):
            mpirun(0, lambda comm: None)


class TestPointToPoint:
    def test_send_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.send({"payload": 42}, dest=1)
                return None
            return comm.recv(source=0)

        results = mpirun(2, main)
        assert results[1] == {"payload": 42}

    def test_ring(self):
        def main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank, dest=right)
            return comm.recv(source=left)

        results = mpirun(4, main)
        assert results == [3, 0, 1, 2]


class TestCollectives:
    def test_bcast(self):
        def main(comm):
            value = "hello" if comm.rank == 0 else None
            return comm.bcast(value, root=0)

        assert mpirun(4, main) == ["hello"] * 4

    def test_scatter_gather(self):
        def main(comm):
            values = list(range(100, 104)) if comm.rank == 0 else None
            mine = comm.scatter(values, root=0)
            return comm.gather(mine * 2, root=0)

        results = mpirun(4, main)
        assert results[0] == [200, 202, 204, 206]
        assert results[1] is None

    def test_allgather(self):
        results = mpirun(3, lambda comm: comm.allgather(comm.rank ** 2))
        assert results == [[0, 1, 4]] * 3

    def test_allreduce_sum_default(self):
        results = mpirun(4, lambda comm: comm.allreduce(comm.rank + 1))
        assert results == [10] * 4

    @pytest.mark.parametrize("op,expected", [
        (SUM, 6), (PROD, 6), (MAX, 3), (MIN, 1),
    ])
    def test_allreduce_ops(self, op, expected):
        results = mpirun(
            3, lambda comm: comm.allreduce(comm.rank + 1, op))
        assert results == [expected] * 3

    def test_consecutive_collectives_do_not_interfere(self):
        def main(comm):
            first = comm.allgather(comm.rank)
            second = comm.allgather(comm.rank * 100)
            return first, second

        for first, second in mpirun(3, main):
            assert first == [0, 1, 2]
            assert second == [0, 100, 200]


class TestBufferCollectives:
    def test_Allgather(self):
        def main(comm):
            block = np.full(3, float(comm.rank))
            out = np.empty(9)
            comm.Allgather(block, out)
            return out

        for out in mpirun(3, main):
            assert list(out) == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_Allgatherv_uneven_blocks(self):
        def main(comm):
            block = np.full(comm.rank + 1, float(comm.rank))
            out = np.empty(6)
            comm.Allgatherv(block, out)
            return out

        for out in mpirun(3, main):
            assert list(out) == [0, 1, 1, 2, 2, 2]

    def test_Allreduce(self):
        def main(comm):
            send = np.array([comm.rank, 2.0 * comm.rank])
            out = np.empty(2)
            comm.Allreduce(send, out)
            return out

        for out in mpirun(4, main):
            assert list(out) == [6.0, 12.0]

    def test_Allgather_size_mismatch(self):
        def main(comm):
            comm.Allgather(np.zeros(2), np.zeros(3))

        with pytest.raises(OmpRuntimeError):
            mpirun(1, main)
