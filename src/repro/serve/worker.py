"""Worker-process entry point: the fleet's kernel execution engine.

Each worker is a spawned process holding one warm OMP4Py runtime.  At
startup it attaches its response slab, arms the stall watchdog on both
runtimes (a hung kernel writes a structured ``omp4py-doctor-report/1``
to the worker's report file instead of stalling silently — the
supervisor collects it after the kill), transforms and warm-runs the
apps it will serve so the hot-team pool is populated *before* the
first request, and only then reports ready.

Per job it: applies the tenant's CPU partition through
``OmpRuntime.set_affinity``, materializes inputs — shared-memory
views (zero-copy for read-only fields, private copies otherwise),
JSON scalars, and locally rebuilt fields — and runs each request of
the batch through the kernel, returning digests, wall/CPU timings,
and optionally the flattened result values via the response slab.
``busy_cpu_s`` is measured with :func:`time.process_time`, so the
capacity accounting in ``benchmarks/bench_serving.py`` stays honest
on hosts with fewer cores than workers.
"""

from __future__ import annotations

import os
import signal
import time
import traceback


def _apply_config_env(config: dict) -> None:
    # Before repro imports: the runtime snapshots several knobs at
    # module import.  Workers never re-export metrics/trace servers.
    for noisy in ("OMP4PY_METRICS_PORT", "OMP4PY_TRACE",
                  "OMP4PY_PROFILE", "OMP4PY_WATCHDOG",
                  "OMP4PY_FLIGHT"):
        os.environ.pop(noisy, None)
    for key, value in (config.get("env") or {}).items():
        os.environ[str(key)] = str(value)


def _runtimes():
    from repro.cruntime import cruntime
    from repro.runtime import pure_runtime
    return (pure_runtime, cruntime)


def _warm(config: dict) -> None:
    """Populate the hot-team pool and transform the served kernels.

    A tiny ``pi`` run forks one real region at the largest tenant
    budget, so the hot-team pool already holds parked workers when the
    first request lands (respawned workers come back warm the same
    way); the other served apps are transformed ahead of time.
    """
    from repro.apps import get_app, list_apps
    from repro.modes import Mode
    warm_threads = max(1, int(config.get("warm_threads", 2)))
    get_app("pi").variant(Mode.PURE)(threads=warm_threads, n=2000)
    for app in config.get("warm_apps") or []:
        if app in list_apps() and app != "pi":
            try:
                get_app(app).variant(Mode.PURE)
            except Exception:  # noqa: BLE001 - warmup is best-effort
                pass


class _JobRunner:
    """Per-process execution state: attachments, caches, slab."""

    def __init__(self, config: dict):
        from repro.serve.shm import ArrayHandle, AttachedArrays
        self.attached = AttachedArrays()
        self.slab = None
        self.slab_floats = 0
        slab_doc = config.get("slab")
        if slab_doc:
            handle = ArrayHandle.from_wire(slab_doc)
            self.slab = self.attached.get(handle)
            self.slab_floats = int(handle.shape[0])
        #: (app, profile, overrides_key) -> locally rebuilt inputs.
        self.rebuilt: dict[tuple, dict] = {}
        self.last_app: str | None = None

    def _rebuild_fields(self, job: dict, fields: list) -> dict:
        from repro.serve.catalog import build_inputs
        from repro.serve.protocol import overrides_key
        key = (job["app"], job["profile"],
               overrides_key(job.get("overrides") or {}))
        inputs = self.rebuilt.get(key)
        if inputs is None:
            inputs = build_inputs(job["app"], job["profile"],
                                  job.get("overrides") or {})
            if len(self.rebuilt) >= 8:
                self.rebuilt.pop(next(iter(self.rebuilt)))
            self.rebuilt[key] = inputs
        return {field: inputs[field] for field in fields}

    def _materialize(self, job: dict) -> dict:
        """Kernel kwargs for one request (fresh copies per call)."""
        from repro.serve.shm import ArrayHandle
        kwargs = dict(job.get("scalars") or {})
        for field, doc in (job.get("arrays") or {}).items():
            kwargs[field] = self.attached.materialize(
                ArrayHandle.from_wire(doc))
        rebuild = job.get("rebuild") or []
        if rebuild:
            kwargs.update(self._rebuild_fields(job, rebuild))
        return kwargs

    def _store_values(self, result) -> dict | None:
        """Flatten a numeric result into the response slab."""
        if self.slab is None:
            return None
        import numpy as np
        try:
            flat = np.asarray(result, dtype=np.float64).ravel()
        except (ValueError, TypeError):
            return None
        if flat.size > self.slab_floats:
            return None
        self.slab[:flat.size] = flat
        shape = getattr(np.asarray(result), "shape", (flat.size,))
        return {"n": int(flat.size), "shape": list(shape)}

    def run(self, job: dict) -> dict:
        from repro.serve.catalog import execute
        from repro.serve.protocol import result_digest
        places = job.get("places")
        proc_bind = job.get("proc_bind", "close")
        for runtime in _runtimes():
            runtime.set_affinity(places, proc_bind)
        self.last_app = job["app"]
        results = []
        for request in job["requests"]:
            record = {"id": request["id"], "ok": False,
                      "digest": None, "error": None, "slab": None,
                      "wall_s": None, "busy_cpu_s": None}
            try:
                kwargs = self._materialize(job)
                begin_wall = time.perf_counter()
                begin_cpu = time.process_time()
                result = execute(job["app"], job["mode"],
                                 job["threads"], job.get("nodes", 1),
                                 kwargs)
                record["busy_cpu_s"] = time.process_time() - begin_cpu
                record["wall_s"] = time.perf_counter() - begin_wall
                record["digest"] = result_digest(result)
                if request.get("return_values"):
                    record["slab"] = self._store_values(result)
                record["ok"] = True
            except Exception as error:  # noqa: BLE001 - reported
                tail = traceback.format_exc(limit=4)
                record["error"] = (f"{type(error).__name__}: {error}\n"
                                   f"{tail}")[-2000:]
            results.append(record)
        return {"op": "result", "job_id": job["job_id"],
                "worker_id": job.get("worker_id"),
                "pid": os.getpid(), "results": results}


def _state_payload(runner: _JobRunner) -> dict:
    from repro.runtime import pure_runtime
    pool = pure_runtime._pool
    return {"pid": os.getpid(),
            "backend": pure_runtime.backend.value,
            "pool": pool.snapshot() if pool is not None else None,
            "last_app": runner.last_app}


def worker_entry(conn, config: dict) -> None:
    """Process target: serve jobs from ``conn`` until shutdown."""
    _apply_config_env(config)
    if hasattr(signal, "SIGINT"):
        # The server coordinates shutdown over the pipe; a terminal
        # Ctrl-C must not take the fleet down mid-job.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.diagnostics import auto as diagnostics_auto
    interval = config.get("watchdog_interval")
    if interval:
        for runtime in _runtimes():
            diagnostics_auto.arm(
                runtime, watchdog_interval=float(interval),
                report_path=config.get("report_path"), flight=False)
    runner = _JobRunner(config)
    try:
        _warm(config)
    except Exception:  # noqa: BLE001 - a cold worker still serves
        pass
    try:
        conn.send({"op": "ready", "worker_id": config.get("worker_id"),
                   **_state_payload(runner)})
    except (BrokenPipeError, OSError):
        # The supervisor is gone (shutdown raced the spawn): exit
        # quietly instead of tracebacking into the server's stderr.
        runner.attached.close_all()
        return
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message.get("op") if isinstance(message, dict) else None
            if op == "job":
                message["worker_id"] = config.get("worker_id")
                reply = runner.run(message)
                reply["state"] = _state_payload(runner)
                conn.send(reply)
            elif op == "ping":
                conn.send({"op": "pong",
                           "worker_id": config.get("worker_id"),
                           **_state_payload(runner)})
            elif op == "shutdown":
                conn.send({"op": "bye",
                           "worker_id": config.get("worker_id")})
                break
    except (BrokenPipeError, OSError):
        pass
    finally:
        runner.attached.close_all()
