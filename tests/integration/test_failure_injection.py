"""Failure injection: errors in regions, tasks, and worksharing must
surface cleanly and never poison the runtime for later work."""

import pytest

from repro import Mode, transform
from repro.cruntime import cruntime
from repro.errors import OmpRuntimeError
from repro.runtime import pure_runtime


def failing_in_loop(n, bomb_at):
    from repro import omp
    total = 0
    with omp("parallel for reduction(+:total) num_threads(3)"):
        for i in range(n):
            if i == bomb_at:
                raise ValueError(f"bomb at {i}")
            total += 1
    return total


def failing_in_task(n):
    from repro import omp
    with omp("parallel num_threads(2)"):
        with omp("single"):
            with omp("task"):
                raise RuntimeError("task bomb")
            omp("taskwait")


def failing_in_single(n):
    from repro import omp
    with omp("parallel num_threads(3)"):
        with omp("single"):
            raise KeyError("single bomb")


def healthy_sum(n):
    from repro import omp
    total = 0
    with omp("parallel for reduction(+:total) num_threads(3)"):
        for i in range(n):
            total += i
    return total


@pytest.fixture(params=["pure", "hybrid"])
def mode(request):
    return request.param


class TestErrorSurfacing:
    def test_loop_body_error_reraises_with_cause(self, mode):
        fn = transform(failing_in_loop, mode)
        with pytest.raises(OmpRuntimeError) as excinfo:
            fn(100, 50)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_task_error_reraises_at_join(self, mode):
        fn = transform(failing_in_task, mode)
        with pytest.raises(OmpRuntimeError) as excinfo:
            fn(0)
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_single_error_does_not_deadlock_team(self, mode):
        fn = transform(failing_in_single, mode)
        with pytest.raises(OmpRuntimeError):
            fn(0)


class TestRuntimeRecovery:
    def test_runtime_healthy_after_loop_error(self, mode):
        bomb = transform(failing_in_loop, mode)
        healthy = transform(healthy_sum, mode)
        with pytest.raises(OmpRuntimeError):
            bomb(100, 10)
        assert healthy(100) == sum(range(100))

    def test_runtime_healthy_after_task_error(self, mode):
        bomb = transform(failing_in_task, mode)
        healthy = transform(healthy_sum, mode)
        for _round in range(3):
            with pytest.raises(OmpRuntimeError):
                bomb(0)
            assert healthy(50) == sum(range(50))

    def test_contexts_unwound_after_errors(self, mode):
        rt = pure_runtime if mode == "pure" else cruntime
        bomb = transform(failing_in_single, mode)
        with pytest.raises(OmpRuntimeError):
            bomb(0)
        # The initial thread's context must be back to serial state.
        assert rt.get_level() == 0
        assert not rt.in_parallel()
        assert rt.get_num_threads() == 1

    def test_repeated_failures_leak_no_threads(self, mode):
        import threading
        bomb = transform(failing_in_loop, mode)
        baseline = threading.active_count()
        for _round in range(5):
            with pytest.raises(OmpRuntimeError):
                bomb(30, 0)
        assert threading.active_count() <= baseline + 1


def failing_before_copyprivate(n):
    from repro import omp
    value = None
    with omp("parallel num_threads(3) private(value)"):
        with omp("single copyprivate(value)"):
            raise ValueError("died before publishing")
        _ = value


def failing_inside_ordered(n):
    from repro import omp
    out = []
    with omp("parallel for ordered num_threads(3) schedule(dynamic, 1)"):
        for i in range(n):
            with omp("ordered"):
                if i == 2:
                    raise RuntimeError("ordered bomb")
                out.append(i)
    return out


def failing_dependence_producer(n):
    from repro import omp
    cell = [0]
    with omp("parallel num_threads(2)"):
        with omp("single"):
            with omp("task depend(out: cell)"):
                raise ValueError("producer bomb")
            with omp("task depend(in: cell)"):
                cell[0] = 1
    return cell[0]


class TestSynchronizationTeardown:
    """A dying thread must never strand peers in any waiting
    construct (broken-team semantics)."""

    def test_copyprivate_publisher_dies(self, mode):
        fn = transform(failing_before_copyprivate, mode)
        with pytest.raises(OmpRuntimeError):
            fn(0)

    def test_ordered_producer_dies(self, mode):
        fn = transform(failing_inside_ordered, mode)
        with pytest.raises(OmpRuntimeError):
            fn(10)

    def test_dependence_producer_dies(self, mode):
        fn = transform(failing_dependence_producer, mode)
        with pytest.raises(OmpRuntimeError):
            fn(0)

    def test_all_teardowns_leave_runtime_healthy(self, mode):
        healthy = transform(healthy_sum, mode)
        for bomb_source in (failing_before_copyprivate,
                            failing_inside_ordered,
                            failing_dependence_producer):
            bomb = transform(bomb_source, mode)
            with pytest.raises(OmpRuntimeError):
                bomb(10)
            assert healthy(40) == sum(range(40))
