"""Runtime support namespace for vectorized kernels.

Generated CompiledDT code references this module through the injected
``__omp_k__`` handle.  It deliberately re-exports NumPy plus a few
helpers whose Python spellings do not map one-to-one onto ufuncs.
"""

from __future__ import annotations

import numpy as np

#: Re-export so generated code writes ``__omp_k__.np.add.reduce(...)``.
np = np


def arange(start, stop, step=1):
    """Iteration vector of a chunk; int64 like a C loop counter."""
    return np.arange(start, stop, step, dtype=np.int64)


def asarray(values):
    """Array view of a load base (no copy for ndarrays)."""
    return np.asarray(values)


def size(vector) -> int:
    return int(np.size(vector))


def cast_int(values):
    """``int(x)`` semantics: truncation toward zero."""
    if np.isscalar(values):
        return int(values)
    return np.trunc(values).astype(np.int64)


def cast_float(values):
    if np.isscalar(values):
        return float(values)
    return np.asarray(values, dtype=np.float64)


def logical_and(left, right):
    return np.logical_and(left, right)


def logical_or(left, right):
    return np.logical_or(left, right)
