"""The *Compiled*/*CompiledDT* pipeline (the paper's Cython stage).

``optimize`` receives the already-directive-lowered AST of a function or
class and returns a faster equivalent:

* untyped (*Compiled*) — AST optimization passes that remove interpreter
  dispatch overhead (builtin/global localization, constant folding,
  runtime-call binding), mirroring what Cython achieves on unannotated
  code;
* typed (*CompiledDT*) — additionally, ``int``/``float`` annotations
  seed a type inference over worksharing chunk loops, and loops that
  type-check as numeric kernels are lowered to NumPy vector code
  evaluated per chunk, mirroring the native loops typed Cython emits.
"""

from repro.compiler.pipeline import optimize

__all__ = ["optimize"]
