"""``python -m repro.explain`` end-to-end, plus the property that on
real traces the critical path is bracketed by wall/nthreads and wall."""

import json

import pytest

from repro.explain.cli import explain_app, main
from repro.modes import Mode


class TestExplainAppProperty:
    @pytest.mark.parametrize("app", ["qsort", "bfs"])
    def test_critical_path_bracketed_by_wall(self, app):
        threads = 4
        report = explain_app(app, Mode.PURE, threads=threads,
                             profile="test")
        wall = report["wall_s"]
        critical = report["critical_path_s"]
        assert wall > 0
        # The DAG invariant: no schedule beats perfect parallelism,
        # and the realized timeline never exceeds the recording.
        assert critical <= wall * 1.15
        assert critical >= wall / threads / 1.15
        assert critical <= report["span_s"] + 1e-9
        # A dominant bottleneck is named at a user source line.
        assert report["dominant"] is not None
        assert report["dominant"]["location"]
        json.dumps(report)  # report is JSON-serializable

    def test_instrumentation_removed_afterwards(self):
        from repro.runtime import pure_runtime
        old_capacity = pure_runtime.tracer.capacity
        explain_app("pi", Mode.PURE, threads=2, profile="test")
        assert pure_runtime.tool is None
        assert not pure_runtime.tracer.enabled
        assert pure_runtime.tracer.capacity == old_capacity


class TestCliMain:
    def test_list_prints_apps(self, capsys):
        assert main(["--list"]) == 0
        assert "pi" in capsys.readouterr().out.split()

    def test_missing_target_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_report_json_and_check(self, tmp_path, capsys):
        out = tmp_path / "explain.json"
        code = main(["qsort", "--mode", "pure", "--threads", "4",
                     "--profile", "test", "--json", str(out),
                     "--check", "--strict"])
        printed = capsys.readouterr().out
        assert "[explain] qsort:" in printed
        assert "dominant bottleneck" in printed
        report = json.loads(out.read_text())
        assert report["schema"] == "omp4py-explain/1"
        assert report["run"]["threads"] == 4
        assert report["bottlenecks"]
        assert code == 0, printed

    def test_strict_fails_on_dropped_events(self, capsys):
        code = main(["qsort", "--mode", "pure", "--threads", "2",
                     "--profile", "test", "--strict",
                     "--trace-capacity", "4"])
        assert code == 1
        assert "STRICT" in capsys.readouterr().err

    def test_sweep_fits_models(self, capsys):
        code = main(["pi", "--mode", "pure", "--threads", "2",
                     "--profile", "test", "--sweep", "1,2"])
        assert code == 0
        assert "speedup ceiling" in capsys.readouterr().out

    def test_script_target(self, tmp_path, capsys):
        script = tmp_path / "tiny.py"
        script.write_text(
            "from repro import omp\n"
            "\n"
            "@omp(mode='pure')\n"
            "def work():\n"
            "    total = 0\n"
            "    with omp('parallel num_threads(2)'):\n"
            "        with omp('critical'):\n"
            "            total += 1\n"
            "    return total\n"
            "\n"
            "print('result:', work())\n",
            encoding="utf-8")
        code = main([str(script)])
        printed = capsys.readouterr().out
        assert code == 0
        assert "tiny.py" in printed
        assert "critical path" in printed


class TestProfileStrict:
    def test_profile_strict_fails_on_truncation(self, tmp_path,
                                                capsys):
        from repro.ompt.cli import main as profile_main
        code = profile_main(["pi", "--mode", "pure", "--threads", "2",
                             "--profile", "test", "--out",
                             str(tmp_path), "--trace-capacity", "2",
                             "--strict"])
        assert code == 1
        assert "STRICT" in capsys.readouterr().err

    def test_profile_strict_passes_when_complete(self, tmp_path):
        from repro.ompt.cli import main as profile_main
        code = profile_main(["pi", "--mode", "pure", "--threads", "2",
                             "--profile", "test", "--out",
                             str(tmp_path), "--strict"])
        assert code == 0


class TestChromeTraceAnchor:
    def test_exported_trace_carries_epoch_and_backend(self):
        import time

        from repro.ompt.exporters import chrome_trace
        from repro.runtime import pure_runtime

        tracer = pure_runtime.tracer
        tracer.start()
        tracer.record("region_fork", 0, 2, 1, "app.py", 3)
        tracer.record("region_join", 0, 2, 1)
        events = tracer.stop()
        trace = chrome_trace(events, metadata={"threads": 2})
        other = trace["otherData"]
        assert other["backend"] in ("gil", "nogil")
        assert other["threads_observed"] == 1
        assert other["threads"] == 2
        offset = other["monotonic_to_unix_offset_s"]
        # Rebasing the monotonic anchor by the offset lands on "now".
        anchored = events.anchor[1] + offset
        assert abs(anchored - time.time()) < 60.0
        assert other["epoch_start_unix_s"] == pytest.approx(
            events[0].timestamp + offset)
