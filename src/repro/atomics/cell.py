"""Lock-striped emulation of C ``stdatomic`` cells.

``AtomicLong`` mirrors ``atomic_long``; ``AtomicRef`` mirrors
``_Atomic(void *)``.  Both hash onto one of ``_NUM_STRIPES`` pre-created
locks, so cells are independent (operations on different cells contend
only on hash collisions) and allocation-free after import.
"""

from __future__ import annotations

import threading

_NUM_STRIPES = 64
_STRIPES = tuple(threading.Lock() for _ in range(_NUM_STRIPES))
_COUNTER = iter(range(10**18))
_COUNTER_LOCK = threading.Lock()


def _next_stripe() -> threading.Lock:
    with _COUNTER_LOCK:
        index = next(_COUNTER)
    return _STRIPES[index % _NUM_STRIPES]


class AtomicLong:
    """An integer cell with the C ``stdatomic`` operation set."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0):
        self._value = value
        self._lock = _next_stripe()

    def load(self) -> int:
        return self._value

    def store(self, value: int) -> None:
        with self._lock:
            self._value = value

    def swap(self, value: int) -> int:
        with self._lock:
            old = self._value
            self._value = value
            return old

    def fetch_add(self, delta: int = 1) -> int:
        """Atomically add ``delta``; return the *previous* value."""
        with self._lock:
            old = self._value
            self._value = old + delta
            return old

    def compare_exchange(self, expected: int, desired: int) -> bool:
        """CAS: install ``desired`` iff the cell holds ``expected``."""
        with self._lock:
            if self._value == expected:
                self._value = desired
                return True
            return False


class AtomicRef:
    """An object-reference cell with ``swap``/``compare_exchange``.

    Comparison is by identity (``is``), matching pointer CAS semantics.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value=None):
        self._value = value
        self._lock = _next_stripe()

    def load(self):
        return self._value

    def store(self, value) -> None:
        with self._lock:
            self._value = value

    def swap(self, value):
        with self._lock:
            old = self._value
            self._value = value
            return old

    def compare_exchange(self, expected, desired) -> bool:
        with self._lock:
            if self._value is expected:
                self._value = desired
                return True
            return False


def cas_attr(obj, name: str, expected, desired) -> bool:
    """Compare-exchange on an object attribute (identity comparison).

    Emulates a pointer CAS on a struct field — the operation the paper's
    cruntime uses to link task nodes without locking.  The stripe lock is
    selected by the object's identity, so unrelated CAS sites do not
    contend.
    """
    lock = _STRIPES[id(obj) % _NUM_STRIPES]
    with lock:
        if getattr(obj, name) is expected:
            setattr(obj, name, desired)
            return True
        return False


def atomic_setdefault(table: dict, key, value):
    """Atomic-swap-style slot creation in a shared table.

    ``dict.setdefault`` is a single C-level operation under the GIL: the
    first caller installs its value, every later caller gets the winner
    and discards its own — exactly the paper's "counter creation is done
    with an atomic swap" protocol.
    """
    return table.setdefault(key, value)
