"""PyOMP-style public API: ``@njit`` and the ``openmp`` marker."""

from __future__ import annotations

import ast

from repro.decorator import _get_source_tree, transform
from repro.errors import OmpError
from repro.modes import Mode
from repro.pyomp.envelope import EnvelopeViolation, check_function


class PyOMPCompileError(OmpError, TypeError):
    """Numba rejected the function (simulated nopython-mode failure)."""


class PyOMPInternalError(OmpError, RuntimeError):
    """A simulated Numba-internal failure at execution time.

    The paper reports one for the bfs benchmark: "an error is raised
    during execution of the PyOMP code related to Numba".
    """


class _OpenmpMarker:
    """``with openmp("...")`` context, inert outside compiled code."""

    __slots__ = ("directive",)

    def __init__(self, directive: str):
        self.directive = directive

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


def openmp(directive: str) -> _OpenmpMarker:
    return _OpenmpMarker(directive)


def njit(target=None, **_options):
    """Decorator: envelope-check, then compile via the typed pipeline.

    Programs inside the Numba envelope run through the same native
    kernel lowering as OMP4Py's *CompiledDT* — the substitution that
    makes the baseline's performance comparable, per DESIGN.md.
    """
    if target is None:
        return lambda func: njit(func, **_options)
    tree = _get_source_tree(target)
    node = tree.body[0]
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise PyOMPCompileError("@njit can only compile functions")
    try:
        check_function(node)
    except EnvelopeViolation as violation:
        raise PyOMPCompileError(str(violation)) from None
    return transform(target, Mode.COMPILED_DT)
