"""Per-region fork/join overhead: hot-team pool vs spawn-per-region.

Drives many empty parallel regions through ``parallel_run`` twice —
once with the persistent worker pool (the default) and once with
``hot_teams`` off, the pre-pool spawn-a-``threading.Thread``-per-member
path — and reports the per-region wall time of each.  An empty body
makes the whole region fork/join overhead, which is exactly what the
hot-team pool exists to cut (the cost the OMP4Py preprint flags for
fine-grained regions like the Fig. 7 scheduling sweeps).

Each configuration is measured as the **minimum over repeats** of the
mean region time: the minimum estimates the intrinsic cost with the
scheduler-noise tail removed, symmetrically for both paths.  With
``--check`` the script exits non-zero unless hot teams are at least
``--min-ratio`` times faster; the gate takes the best ratio over up to
three attempts (stopping at the first passing one).  A descheduling
burst landing in a hot batch depresses the ratio and min-of-repeats
cannot always filter it on a loaded runner, while an inflated-cold
false pass would need *every* cold batch disturbed at once, which
min-of-repeats does filter — so best-of-attempts guards the gate
against its realistic failure mode without loosening the bound.

Usage::

    python benchmarks/bench_region_overhead.py [--threads 4]
        [--regions 200] [--repeats 5] [--check] [--min-ratio 2.0]
        [--out results]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.runtime import pure_runtime  # noqa: E402

#: Regions run before measuring, so the pool is hot and code paths warm.
WARMUP_REGIONS = 30


def _nothing() -> None:
    """The region body: empty, so the region is pure fork/join."""


def measure_once(runtime, threads: int, regions: int) -> float:
    """Mean seconds per region over one batch of ``regions`` regions."""
    begin = time.perf_counter()
    for _ in range(regions):
        runtime.parallel_run(_nothing, num_threads=threads)
    return (time.perf_counter() - begin) / regions


def measure(runtime, threads: int, regions: int, repeats: int) -> float:
    """Minimum-of-repeats per-region time for the current pool mode."""
    for _ in range(WARMUP_REGIONS):
        runtime.parallel_run(_nothing, num_threads=threads)
    return min(measure_once(runtime, threads, regions)
               for _ in range(repeats))


def run_bench(threads: int = 4, regions: int = 200, repeats: int = 5,
              runtime=pure_runtime) -> dict:
    """Measure hot vs cold and return the comparison record."""
    prior = runtime.hot_teams
    try:
        runtime.hot_teams = True
        hot_s = measure(runtime, threads, regions, repeats)
        runtime.hot_teams = False
        cold_s = measure(runtime, threads, regions, repeats)
    finally:
        runtime.hot_teams = prior
    pool = runtime.pool().snapshot()
    return {
        "threads": threads,
        "regions": regions,
        "repeats": repeats,
        "hot_s": hot_s,
        "cold_s": cold_s,
        "ratio": cold_s / hot_s if hot_s > 0 else float("inf"),
        "pool_spawned": pool["spawned"],
        "pool_reused": pool["reused"],
    }


def best_of(attempts: int, min_ratio: float, *, threads: int,
            regions: int, repeats: int) -> dict:
    """Best-ratio result over up to ``attempts`` measurements.

    Stops at the first attempt whose ratio clears ``min_ratio``; see
    the module docstring for why the gate keeps the best, not the
    last, measurement.
    """
    best = run_bench(threads=threads, regions=regions, repeats=repeats)
    for _ in range(attempts - 1):
        if best["ratio"] >= min_ratio:
            break
        again = run_bench(threads=threads, regions=regions,
                          repeats=repeats)
        if again["ratio"] > best["ratio"]:
            best = again
    return best


def smoke_records(threads: int = 4, regions: int = 200,
                  repeats: int = 5) -> tuple[list[str], list[dict]]:
    """Entry point for ``reproduce.py --smoke``.

    Returns ``(failures, records)`` in the smoke harness's shape: one
    ``BENCH_smoke.json`` kernel per pool mode plus the ratio, and a
    failure when hot teams fail the 2x acceptance bound (best of three
    attempts, as in ``--check``).
    """
    result = best_of(3, 2.0, threads=threads, regions=regions,
                     repeats=repeats)
    line = (f"region-overhead: hot {result['hot_s'] * 1e6:.1f}us vs "
            f"cold {result['cold_s'] * 1e6:.1f}us per region at "
            f"{threads} threads ({result['ratio']:.2f}x)")
    print(f"[reproduce] {line}")
    failures = []
    # The 2x bound characterizes the disarmed dispatch path.  With the
    # tracer recording (OMP4PY_TRACE / OMP4PY_METRICS_PORT armed for
    # the whole smoke process) or the sampling profiler maintaining
    # directive stacks (OMP4PY_PROFILE) every region pays a constant
    # per-event cost on top, which compresses the hot/cold ratio
    # without saying anything about the pool — so armed runs keep the
    # measurement but skip the ratio verdict.
    if pure_runtime.tracer.enabled or pure_runtime.sampler is not None:
        print("[reproduce] region-overhead: ratio gate skipped "
              "(instrumentation armed)")
    elif result["ratio"] < 2.0:
        failures.append(
            f"region-overhead: hot teams only {result['ratio']:.2f}x "
            f"faster than spawn-per-region (need >= 2x)")
    records = [
        {"kernel": "region-overhead/hot",
         "wall_s": result["hot_s"] * regions,
         "threads": threads, "mode": "pure",
         "per_region_s": result["hot_s"],
         "ratio_vs_cold": result["ratio"]},
        {"kernel": "region-overhead/cold",
         "wall_s": result["cold_s"] * regions,
         "threads": threads, "mode": "pure",
         "per_region_s": result["cold_s"]},
    ]
    return failures, records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--regions", type=int, default=200,
                        help="regions per measurement batch")
    parser.add_argument("--repeats", type=int, default=5,
                        help="batches per configuration (minimum wins)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless hot/cold ratio >= --min-ratio")
    parser.add_argument("--min-ratio", type=float, default=2.0)
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also write bench_region_overhead.json")
    args = parser.parse_args(argv)

    attempts = 3 if args.check else 1
    result = best_of(attempts, args.min_ratio, threads=args.threads,
                     regions=args.regions, repeats=args.repeats)

    print(f"[region-overhead] threads={args.threads} "
          f"regions={args.regions} repeats={args.repeats}")
    print(f"  hot teams   : {result['hot_s'] * 1e6:10.1f} us/region")
    print(f"  spawn/region: {result['cold_s'] * 1e6:10.1f} us/region")
    print(f"  ratio       : {result['ratio']:10.2f}x "
          f"(pool spawned {result['pool_spawned']}, "
          f"reused {result['pool_reused']})")

    if args.out:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / "bench_region_overhead.json"
        path.write_text(json.dumps(result, indent=2) + "\n",
                        encoding="utf-8")
        print(f"[region-overhead] wrote {path}")

    if args.check and result["ratio"] < args.min_ratio:
        print(f"[region-overhead] FAIL: hot teams must be at least "
              f"{args.min_ratio}x faster, measured {result['ratio']:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
