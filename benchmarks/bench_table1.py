"""Table I — static characteristics (regeneration benchmark).

The table itself is static analysis; this benchmark times the extractor
over the seven numerical kernels and checks the rows match the paper.
"""

from repro.analysis.features import table1_rows


def test_table1_extraction(benchmark):
    rows = benchmark(table1_rows)
    by_name = {row.name: row for row in rows}
    assert by_name["pi"].features == "parallel for reduction(+)"
    assert by_name["jacobi"].synchronization == "Explicit barrier"
    assert "task with if clause" in by_name["qsort"].features
    assert "multiple for loops" in by_name["lu"].features
