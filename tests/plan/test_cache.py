"""Plan-cache tests: identity keying, weak-key collection, counters,
and the OMPT plan callback stream."""

import gc

import pytest

from repro.ompt.hooks import ToolHooks
from repro.ompt.metrics import MetricsTool
from repro.plan import (Map, clear_plan_cache, plan_cache_stats,
                        plan_for)
from repro.runtime.engine import OmpRuntime
from repro.runtime.lowlevel import PureLowLevel


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _map(name="cache-map", n=12):
    return Map(name, [(i, i + 1) for i in range(n)])


class TestCacheKeying:
    def test_same_map_and_size_hits(self):
        m = _map()
        first = plan_for(m, 3)
        second = plan_for(m, 3)
        assert first is second
        stats = plan_cache_stats()
        assert stats["builds"] == 1
        assert stats["hits"] == 1

    def test_partition_size_is_part_of_the_key(self):
        m = _map()
        assert plan_for(m, 3) is not plan_for(m, 4)
        assert plan_cache_stats()["builds"] == 2

    def test_equal_but_distinct_maps_build_separately(self):
        # Identity keying: equality of contents is irrelevant, which is
        # what makes the cache sound without hashing entry tuples.
        assert plan_for(_map(), 3) is not plan_for(_map(), 3)
        assert plan_cache_stats()["builds"] == 2

    def test_clear_resets_counters(self):
        plan_for(_map(), 2)
        clear_plan_cache()
        stats = plan_cache_stats()
        assert stats == {"builds": 0, "hits": 0, "maps": 0, "plans": 0}


class TestWeakCollection:
    def test_dropping_the_map_drops_its_plans(self):
        m = _map()
        plan_for(m, 2)
        plan_for(m, 3)
        assert plan_cache_stats()["plans"] == 2
        del m
        gc.collect()
        stats = plan_cache_stats()
        assert stats["maps"] == 0
        assert stats["plans"] == 0

    def test_plan_does_not_reference_its_map(self):
        # The invariant the weak cache rests on: a cached value must
        # not keep its key alive.
        import weakref
        m = _map()
        ref = weakref.ref(m)
        plan = plan_for(m, 2)
        del m
        gc.collect()
        assert ref() is None
        assert plan.total == 12  # the plan itself stays usable


class _RecordingTool(ToolHooks):
    def __init__(self):
        self.events = []

    def plan(self, thread, event, payload):
        self.events.append((thread, event, dict(payload)))


class TestPlanCallbacks:
    def _runtime_with(self, tool):
        runtime = OmpRuntime(PureLowLevel())
        runtime.attach_tool(tool)
        return runtime

    def test_build_then_hit_events(self):
        tool = _RecordingTool()
        runtime = self._runtime_with(tool)
        m = _map()
        plan_for(m, 3, runtime=runtime)
        plan_for(m, 3, runtime=runtime)
        kinds = [event for _, event, _ in tool.events]
        assert kinds == ["build", "cache_hit"]
        payload = tool.events[0][2]
        assert payload["source"] == "cache-map"
        assert payload["partition_size"] == 3
        assert payload["partitions"] == 4
        assert payload["colors"] == 2
        assert payload["conflict_edges"] == 3

    def test_no_runtime_means_no_events(self):
        plan_for(_map(), 3)  # must not raise without a tool

    def test_metrics_tool_counts_cache_traffic(self):
        tool = MetricsTool()
        runtime = self._runtime_with(tool)
        m = _map()
        plan_for(m, 3, runtime=runtime)
        plan_for(m, 3, runtime=runtime)
        plan_for(m, 3, runtime=runtime)
        registry = tool.registry
        assert registry.counter("omp_plan_builds_total",
                                source="cache-map").sample() == 1
        assert registry.counter("omp_plan_cache_hits_total",
                                source="cache-map").sample() == 2

    def test_metrics_tool_records_execution_shape(self):
        from repro.plan import execute
        tool = MetricsTool()
        runtime = self._runtime_with(tool)
        m = _map()
        plan = plan_for(m, 3, runtime=runtime)
        execute(plan, lambda *a: None, threads=2, runtime=runtime)
        registry = tool.registry
        assert registry.counter("omp_plan_executions_total",
                                source="cache-map").sample() == 1
        assert registry.gauge("omp_plan_partitions",
                              source="cache-map").sample() == 4
        assert registry.gauge("omp_plan_colors",
                              source="cache-map").sample() == 2
        assert registry.gauge("omp_plan_conflict_edges",
                              source="cache-map").sample() == 3
