"""AST optimization passes for the *Compiled* simulation."""
