"""Static characteristics of benchmark kernels (regenerates Table I).

Walks a kernel's source AST, collects every directive, and summarizes
the OpenMP features and synchronization style the way the paper's
Table I does.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import textwrap

from repro.directives import parse_directive
from repro.directives.model import Directive
from repro.transform.rewriter import extract_directive_call


@dataclasses.dataclass
class StaticFeatures:
    """One benchmark's Table I row."""

    name: str
    directives: list[Directive]
    features: str
    synchronization: str


def directives_of(func) -> list[Directive]:
    """Every directive appearing in a function's source, in order."""
    source = textwrap.dedent(inspect.getsource(func))
    tree = ast.parse(source)
    found: list[Directive] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            try:
                text = extract_directive_call(node)
            except Exception:  # noqa: BLE001 - non-directive omp() use
                continue
            if text is not None:
                found.append(parse_directive(text))
    return found


def summarize(name: str, func) -> StaticFeatures:
    directives = directives_of(func)
    labels: list[str] = []
    explicit_barrier = False
    for directive in directives:
        if directive.name == "barrier":
            explicit_barrier = True
            continue
        if directive.name in ("section", "flush", "threadprivate",
                              "declare reduction", "ordered"):
            continue
        label = directive.name
        reduction = directive.clause("reduction")
        if reduction is not None:
            label += f" reduction({reduction.op})"
        if directive.name == "task" and directive.has_clause("if"):
            label += " with if clause"
        if label not in labels:
            labels.append(label)
    # Paper-style phrasing: several worksharing loops become "multiple
    # for loops"; a loop nested in a reducing parallel region becomes
    # "parallel reduction(op) with inner for".
    plain_fors = [d for d in directives if d.name == "for"
                  and d.clause("reduction") is None]
    for index, label in enumerate(labels):
        if label.startswith("parallel reduction") and "for" in labels:
            labels[index] = label + " with inner for"
            labels.remove("for")
            break
    if "for" in labels and len(plain_fors) >= 2:
        labels[labels.index("for")] = "multiple for loops"
    synchronization = ("Explicit barrier" if explicit_barrier
                       else "Implicit barriers")
    return StaticFeatures(name=name, directives=directives,
                          features=", ".join(labels),
                          synchronization=synchronization)


def table1_rows() -> list[StaticFeatures]:
    """Rows of Table I, extracted from the seven numerical kernels."""
    from repro.apps import get_app
    rows = []
    for name in ("fft", "jacobi", "lu", "md", "pi", "qsort", "bfs"):
        spec = get_app(name)
        rows.append(summarize(name, spec.kernel))
    return rows
