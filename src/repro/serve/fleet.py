"""Worker-fleet supervision: spawn, dispatch, crash recovery, respawn.

The fleet owns N spawned worker processes (:mod:`repro.serve.worker`),
one control pipe and one response slab each.  A reader thread per
worker turns pipe messages into callbacks; a supervisor tick thread
enforces job deadlines (a request stuck past its deadline gets its
worker killed — the armed in-worker watchdog has by then written a
structured doctor report, which the crash path collects and surfaces
through ``/state`` and ``repro.doctor serve``) and respawns dead
workers with warm hot-team pools.

Crash semantics: when a worker dies with a job in flight the fleet
reports the job back through ``on_crash`` — the server requeues the
batch at the front of the admission queue (bounded retries) so an
accepted request survives a worker kill, the acceptance property the
chaos test exercises.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import signal
import threading
import time

from repro.serve.worker import worker_entry

#: Response slab size per worker: 1 MiB of float64 result values.
SLAB_FLOATS = 131_072

#: Seconds a spawned worker gets to report ready before it is
#: declared stillborn and respawned.
READY_TIMEOUT = 60.0


class WorkerHandle:
    """One fleet slot: process + pipe + slab + in-flight job."""

    def __init__(self, worker_id: int, slab_handle):
        self.id = worker_id
        self.generation = 0
        self.slab_handle = slab_handle
        self.process = None
        self.conn = None
        self.reader: threading.Thread | None = None
        self.state = "starting"
        self.pid: int | None = None
        self.backend: str | None = None
        self.last_state: dict | None = None
        self.last_report: dict | None = None
        self.restarts = 0
        self.job_doc: dict | None = None
        self.job_requests: list | None = None
        self.job_started: float | None = None
        self.job_deadline: float | None = None
        self.started_at = time.monotonic()

    def describe(self) -> dict:
        job = None
        if self.job_doc is not None:
            job = {"app": self.job_doc.get("app"),
                   "tenant": self.job_doc.get("tenant"),
                   "batch": len(self.job_requests or []),
                   "running_s": round(
                       time.monotonic() - (self.job_started or 0), 3)}
        return {"id": self.id, "pid": self.pid, "state": self.state,
                "generation": self.generation,
                "restarts": self.restarts, "backend": self.backend,
                "pool": (self.last_state or {}).get("pool"),
                "last_app": (self.last_state or {}).get("last_app"),
                "job": job, "last_report": self.last_report}


class Fleet:
    """Spawn/supervise the worker processes behind the dispatcher."""

    def __init__(self, *, workers: int, registry, report_dir,
                 warm_apps=(), warm_threads: int = 2,
                 watchdog_interval: float | None = 5.0,
                 job_timeout: float = 60.0,
                 debug_apps: bool = False,
                 on_result=None, on_crash=None, on_idle=None):
        self.registry = registry
        self.report_dir = pathlib.Path(report_dir)
        self.report_dir.mkdir(parents=True, exist_ok=True)
        self.warm_apps = tuple(warm_apps)
        self.warm_threads = warm_threads
        self.watchdog_interval = watchdog_interval
        self.job_timeout = job_timeout
        self.debug_apps = debug_apps
        self.on_result = on_result or (lambda worker, message: None)
        self.on_crash = on_crash or (lambda worker, doc, reqs: None)
        self.on_idle = on_idle or (lambda: None)
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._workers: dict[int, WorkerHandle] = {}
        self._shutting_down = False
        self._ready = threading.Event()
        self._tick: threading.Thread | None = None
        self.restarts_total = 0
        for worker_id in range(workers):
            slab = registry.create_slab(SLAB_FLOATS)
            self._workers[worker_id] = WorkerHandle(worker_id, slab)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "Fleet":
        for worker in self._workers.values():
            self._spawn(worker)
        self._tick = threading.Thread(target=self._tick_loop,
                                      name="omp4py-serve-supervisor",
                                      daemon=True)
        self._tick.start()
        return self

    def _worker_config(self, worker: WorkerHandle) -> dict:
        report = self.report_dir / f"worker-{worker.id}.json"
        return {"worker_id": worker.id,
                "slab": worker.slab_handle.to_wire(),
                "report_path": str(report),
                "watchdog_interval": self.watchdog_interval,
                "warm_apps": list(self.warm_apps),
                "warm_threads": self.warm_threads,
                "debug_apps": self.debug_apps,
                "env": {}}

    def _spawn(self, worker: WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_entry,
            args=(child_conn, self._worker_config(worker)),
            name=f"omp4py-serve-worker-{worker.id}", daemon=True)
        worker.generation += 1
        worker.process = process
        worker.conn = parent_conn
        worker.state = "starting"
        worker.pid = None
        worker.started_at = time.monotonic()
        report = self.report_dir / f"worker-{worker.id}.json"
        if report.exists():
            report.unlink()
        process.start()
        child_conn.close()
        worker.reader = threading.Thread(
            target=self._read_loop, args=(worker, worker.generation),
            name=f"omp4py-serve-reader-{worker.id}", daemon=True)
        worker.reader.start()

    # -- pipe handling --------------------------------------------------

    def _read_loop(self, worker: WorkerHandle, generation: int) -> None:
        conn = worker.conn
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(message, dict):
                continue
            op = message.get("op")
            if op == "ready":
                with self._lock:
                    worker.pid = message.get("pid")
                    worker.backend = message.get("backend")
                    worker.last_state = {
                        "pool": message.get("pool"),
                        "last_app": message.get("last_app")}
                    worker.state = "idle"
                self._ready.set()
                self.on_idle()
            elif op == "result":
                with self._lock:
                    doc, requests = worker.job_doc, worker.job_requests
                    worker.job_doc = None
                    worker.job_requests = None
                    worker.job_started = None
                    worker.job_deadline = None
                    worker.last_state = message.get("state") or \
                        worker.last_state
                message["_dispatched"] = (doc, requests)
                # The callback drains the response slab, so the worker
                # must not become dispatchable until it returns.
                self.on_result(worker, message)
                with self._lock:
                    if worker.state == "busy":
                        worker.state = "idle"
                self.on_idle()
            elif op == "pong":
                with self._lock:
                    worker.last_state = {
                        "pool": message.get("pool"),
                        "last_app": message.get("last_app")}
            elif op == "bye":
                break
        self._handle_exit(worker, generation)

    def _handle_exit(self, worker: WorkerHandle, generation: int) -> None:
        with self._lock:
            if worker.generation != generation or self._shutting_down:
                return
            doc, requests = worker.job_doc, worker.job_requests
            worker.job_doc = None
            worker.job_requests = None
            worker.job_started = None
            worker.job_deadline = None
            worker.state = "dead"
            worker.restarts += 1
            self.restarts_total += 1
        report_path = self.report_dir / f"worker-{worker.id}.json"
        if report_path.exists():
            try:
                import json
                worker.last_report = json.loads(
                    report_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                worker.last_report = None
        if worker.process is not None:
            worker.process.join(timeout=5)
        if doc is not None:
            self.on_crash(worker, doc, requests or [])
        with self._lock:
            if self._shutting_down:
                return
        self._spawn(worker)

    def _tick_loop(self) -> None:
        while not self._shutting_down:
            time.sleep(0.2)
            now = time.monotonic()
            victims = []
            with self._lock:
                for worker in self._workers.values():
                    if worker.state == "busy" and worker.job_deadline \
                            and now > worker.job_deadline:
                        victims.append(worker)
                    elif worker.state == "starting" and \
                            now - worker.started_at > READY_TIMEOUT:
                        victims.append(worker)
            for worker in victims:
                self.kill_worker(worker.id)

    # -- dispatch -------------------------------------------------------

    def wait_ready(self, timeout: float = READY_TIMEOUT) -> bool:
        """Block until at least one worker is idle."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.idle_workers():
                return True
            self._ready.wait(timeout=0.2)
            self._ready.clear()
        return bool(self.idle_workers())

    def idle_workers(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers.values()
                       if w.state == "idle")

    def acquire_idle(self) -> WorkerHandle | None:
        with self._lock:
            for worker in self._workers.values():
                if worker.state == "idle":
                    worker.state = "busy"
                    return worker
        return None

    def dispatch(self, worker: WorkerHandle, job_doc: dict,
                 requests: list, *, timeout: float | None = None) -> bool:
        """Send one job to an acquired worker; ``False`` on a dead pipe
        (the caller's crash path will fire via the reader thread)."""
        now = time.monotonic()
        with self._lock:
            worker.job_doc = job_doc
            worker.job_requests = requests
            worker.job_started = now
            worker.job_deadline = now + (timeout or self.job_timeout)
        try:
            worker.conn.send(job_doc)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False

    def release_idle(self, worker: WorkerHandle) -> None:
        """Return an acquired-but-unused worker to the idle pool."""
        with self._lock:
            if worker.state == "busy" and worker.job_doc is None:
                worker.state = "idle"

    def kill_worker(self, worker_id: int) -> bool:
        """SIGKILL one worker (deadline enforcement / chaos tests)."""
        with self._lock:
            worker = self._workers.get(worker_id)
            pid = worker.pid if worker else None
        if worker is None or worker.process is None:
            return False
        try:
            if pid:
                os.kill(pid, signal.SIGKILL)
            else:
                worker.process.terminate()
        except (ProcessLookupError, OSError):
            return False
        return True

    def pids(self) -> dict[int, int | None]:
        with self._lock:
            return {w.id: w.pid for w in self._workers.values()}

    def snapshot(self) -> list[dict]:
        with self._lock:
            return [w.describe()
                    for w in sorted(self._workers.values(),
                                    key=lambda w: w.id)]

    def shutdown(self, timeout: float = 10.0) -> None:
        with self._lock:
            self._shutting_down = True
            workers = list(self._workers.values())
        for worker in workers:
            try:
                worker.conn.send({"op": "shutdown"})
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + timeout
        for worker in workers:
            if worker.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            worker.process.join(timeout=remaining)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5)
        for worker in workers:
            self.registry.release(worker.slab_handle.segment)
