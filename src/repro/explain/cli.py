"""``python -m repro.explain`` — why doesn't this app scale?

Runs a registered app (or an arbitrary ``@omp`` script) under the
tracer, reconstructs the causal DAG, computes the critical path, and
names the dominant bottleneck at a user source line.  With ``--sweep``
it also runs the kernel at several thread counts and fits Amdahl/USL
speedup models predicting the app's ceiling.

Usage::

    python -m repro.explain qsort --threads 4 --mode pure
    python -m repro.explain bfs --threads 4 --sweep 1,2,4 --json out.json
    python -m repro.explain examples/faults/lock_convoy.py
    python -m repro.explain --list
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.explain.bottlenecks import classify
from repro.explain.dag import build_dag, summarize
from repro.explain.model import fit_models

#: Acceptance band for --check: the reconstructed critical path must
#: bracket the measured wall within this relative tolerance.
CHECK_TOLERANCE = 0.15


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explain",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("target", nargs="?",
                        help="registered app name (see --list) or a "
                             "path to a python script to trace")
    parser.add_argument("script_args", nargs="*",
                        help="arguments passed through to a script "
                             "target")
    parser.add_argument("--list", action="store_true",
                        help="list registered apps and exit")
    parser.add_argument("--mode", default="hybrid",
                        help="execution mode (pure/hybrid/compiled/"
                             "compileddt)")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--profile", default="test",
                        choices=("test", "default", "paper"),
                        help="problem-size profile")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--sweep", default=None,
                        help="comma-separated thread counts for the "
                             "Amdahl/USL model fits (e.g. 1,2,4)")
    parser.add_argument("--json", default=None,
                        help="write the full report to this path")
    parser.add_argument("--trace-capacity", type=int, default=1_000_000,
                        help="tracer event-buffer bound")
    parser.add_argument("--sample", action="store_true",
                        help="arm the sampling profiler during the "
                             "run; feeds directive-attributed hot "
                             "frames into the findings")
    parser.add_argument("--sample-hz", type=float, default=None,
                        help="sampling rate for --sample "
                             "(default: OMP4PY_PROFILE_HZ or 200)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless wall/threads <= "
                             "critical path <= wall (within "
                             f"{CHECK_TOLERANCE:.0%})")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero when trace events were "
                             "dropped")
    return parser


def explain_app(app: str, mode, threads: int, profile: str,
                repeats: int = 1,
                trace_capacity: int = 1_000_000,
                sample_hz: float | None = None) -> dict:
    """Trace one registered app and build its explain report.

    ``sample_hz`` additionally arms the sampling profiler for the
    run, attaching directive-attributed hot frames to the findings.
    """
    from repro.analysis.timing import measure
    from repro.apps import get_app
    from repro.decorator import runtime_for
    from repro.ompt.metrics import MetricsTool

    from repro.modes import Mode

    spec = get_app(app)
    variant = spec.variant(mode)
    runtime = runtime_for(mode)
    tool = MetricsTool()
    tracer = runtime.tracer
    old_capacity = tracer.capacity
    tracer.capacity = trace_capacity
    runtime.attach_tool(tool)
    sampler = None
    if sample_hz is not None:
        from repro.sampling.sampler import Sampler
        sampler = Sampler(runtime, interval=1.0 / sample_hz).start()
    tracer.start()
    try:
        def make_args():
            inputs = spec.inputs(profile,
                                 dt=(mode is Mode.COMPILED_DT))
            inputs["threads"] = threads
            return (), inputs

        measurement = measure(variant, runtime=runtime,
                              repeats=repeats, make_args=make_args)
    finally:
        events = tracer.stop()
        tracer.capacity = old_capacity
        runtime.detach_tool(tool)
        if sampler is not None:
            sampler.stop()
    samples = sampler.report() if sampler is not None else None
    analysis = build_dag(events)
    findings = classify(analysis, nthreads=threads,
                        wall=measurement.wall,
                        measurement=measurement, events=events,
                        samples=samples)
    report = _report(analysis, findings, target=app, kind="app")
    if samples is not None:
        report["samples"] = {
            "hz": sample_hz,
            "total": samples["samples"],
            "by_state": samples["by_state"],
            "directives": samples["directives"],
            "hot_frames": samples["hot_frames"],
        }
    report["run"] = {
        "app": app, "mode": mode.value, "threads": threads,
        "profile": profile, "repeats": repeats,
        "backend": measurement.backend,
    }
    report["wall_s"] = measurement.wall
    report["projected_s"] = measurement.projected
    report["model_projected_s"] = measurement.model_projected
    return report


def explain_script(path: str, script_args: list[str],
                   trace_capacity: int = 1_000_000) -> dict:
    """Trace an arbitrary script (both runtimes armed) and build its
    explain report from whichever runtime recorded the region work."""
    import runpy

    from repro.cruntime import cruntime
    from repro.runtime import pure_runtime

    runtimes = [pure_runtime, cruntime]
    old = []
    for runtime in runtimes:
        old.append(runtime.tracer.capacity)
        runtime.tracer.capacity = trace_capacity
        runtime.tracer.start()
    old_argv = sys.argv
    old_path = list(sys.path)
    script_dir = str(pathlib.Path(path).resolve().parent)
    begin = time.perf_counter()
    try:
        sys.argv = [path, *script_args]
        if script_dir not in sys.path:
            sys.path.insert(0, script_dir)
        runpy.run_path(path, run_name="__main__")
    finally:
        wall = time.perf_counter() - begin
        sys.argv = old_argv
        sys.path[:] = old_path
        logs = []
        for runtime, capacity in zip(runtimes, old):
            logs.append(runtime.tracer.stop())
            runtime.tracer.capacity = capacity
    events = max(logs, key=len)
    analysis = build_dag(events)
    threads = max((meta["size"] for meta in
                   analysis.regions.values()), default=1)
    findings = classify(analysis, nthreads=threads, wall=wall,
                        events=events)
    report = _report(analysis, findings, target=path, kind="script")
    report["run"] = {"script": path, "threads": threads,
                     "args": script_args}
    report["wall_s"] = wall
    return report


def _report(analysis, findings, *, target: str, kind: str) -> dict:
    report = {
        "schema": "omp4py-explain/1",
        "target": target,
        "kind": kind,
        "span_s": analysis.span_s,
        "critical_path_s": analysis.critical_path_s,
        "trace": {"events": analysis.events_count,
                  "dropped": analysis.dropped},
        "analysis": summarize(analysis),
        "bottlenecks": [finding.as_dict() for finding in findings],
        "dominant": findings[0].as_dict() if findings else None,
    }
    return report


def _print_report(report: dict, out=None) -> None:
    out = out if out is not None else sys.stdout
    wall = report.get("wall_s")
    critical = report["critical_path_s"]
    span = report["span_s"]
    print(f"[explain] {report['target']}: "
          + (f"wall {wall:.4f}s, " if wall is not None else "")
          + f"span {span:.4f}s, critical path {critical:.4f}s",
          file=out)
    breakdown = report["analysis"]["path_breakdown_s"]
    if breakdown:
        parts = ", ".join(f"{cat} {sec:.4f}s"
                          for cat, sec in breakdown.items())
        print(f"[explain] critical path composition: {parts}",
              file=out)
    dominant = report.get("dominant")
    if dominant is None:
        print("[explain] no significant bottleneck found "
              "(well balanced)", file=out)
    else:
        where = f" at {dominant['location']}" if dominant["location"] \
            else ""
        print(f"[explain] dominant bottleneck: "
              f"{dominant['category']}{where} — {dominant['message']}",
              file=out)
    for finding in report["bottlenecks"][1:4]:
        where = f" at {finding['location']}" if finding["location"] \
            else ""
        print(f"[explain]   also: {finding['category']}{where} "
              f"({finding['lost_s']:.4f}s lost)", file=out)
    model = report.get("model")
    if model and model.get("speedup_ceiling") is not None:
        ceiling = model["speedup_ceiling"]
        rendered = f"{ceiling:.2f}x" if ceiling != float("inf") \
            else "unbounded"
        print(f"[explain] fitted speedup ceiling: {rendered}",
              file=out)
    if report["trace"]["dropped"]:
        print(f"[explain] WARNING: trace truncated — "
              f"{report['trace']['dropped']} event(s) dropped; raise "
              f"--trace-capacity", file=out)


def _check(report: dict) -> list[str]:
    problems: list[str] = []
    wall = report.get("wall_s")
    critical = report["critical_path_s"]
    threads = report.get("run", {}).get("threads", 1) or 1
    if wall is None or wall <= 0:
        return ["no wall-time measurement to check against"]
    if critical > wall * (1 + CHECK_TOLERANCE):
        problems.append(
            f"critical path {critical:.4f}s exceeds wall "
            f"{wall:.4f}s by more than {CHECK_TOLERANCE:.0%}")
    if critical < wall / threads / (1 + CHECK_TOLERANCE):
        problems.append(
            f"critical path {critical:.4f}s below wall/threads "
            f"({wall:.4f}s/{threads}) by more than "
            f"{CHECK_TOLERANCE:.0%}")
    if abs(critical - wall) / wall > CHECK_TOLERANCE:
        problems.append(
            f"critical path {critical:.4f}s deviates from wall "
            f"{wall:.4f}s by "
            f"{abs(critical - wall) / wall:.0%} (> "
            f"{CHECK_TOLERANCE:.0%})")
    return problems


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        from repro.apps import list_apps
        print("\n".join(list_apps()))
        return 0
    if not args.target:
        build_parser().error("target required (app name or script "
                             "path, or --list)")

    is_script = args.target.endswith(".py") \
        or pathlib.Path(args.target).exists()
    if is_script:
        report = explain_script(args.target, args.script_args,
                                trace_capacity=args.trace_capacity)
    else:
        from repro.modes import Mode
        mode = Mode.parse(args.mode)
        sample_hz = None
        if args.sample or args.sample_hz is not None:
            from repro import env
            sample_hz = args.sample_hz or env.profile_hz()
        report = explain_app(args.target, mode, args.threads,
                             args.profile, repeats=args.repeats,
                             trace_capacity=args.trace_capacity,
                             sample_hz=sample_hz)
        if args.sweep:
            counts = sorted({int(part) for part in
                             args.sweep.split(",") if part.strip()})
            report["model"] = _sweep_models(
                args.target, mode, counts, args.profile, args.repeats)

    _print_report(report)
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, default=str),
                        encoding="utf-8")
        print(f"[explain] report written to {path}")
    status = 0
    if args.strict and report["trace"]["dropped"]:
        print(f"[explain] STRICT: {report['trace']['dropped']} "
              f"dropped event(s)", file=sys.stderr)
        status = 1
    if args.check:
        problems = _check(report)
        for problem in problems:
            print(f"[explain] CHECK FAILED: {problem}",
                  file=sys.stderr)
        if problems:
            status = 1
        else:
            print("[explain] check OK: wall/threads <= critical path "
                  "<= wall (within tolerance)")
    return status


def _sweep_models(app: str, mode, counts, profile: str,
                  repeats: int) -> dict | None:
    """Untraced timed runs at each thread count, fitted to the
    speedup models (projection-aware via Measurement.projected)."""
    from repro.analysis.timing import measure
    from repro.apps import get_app
    from repro.decorator import runtime_for
    from repro.modes import Mode

    spec = get_app(app)
    variant = spec.variant(mode)
    runtime = runtime_for(mode)
    points = []
    for threads in counts:
        def make_args(threads=threads):
            inputs = spec.inputs(profile,
                                 dt=(mode is Mode.COMPILED_DT))
            inputs["threads"] = threads
            return (), inputs

        measurement = measure(variant, runtime=runtime,
                              repeats=repeats, make_args=make_args)
        points.append((threads, measurement.projected))
    return fit_models(points)


if __name__ == "__main__":
    sys.exit(main())
