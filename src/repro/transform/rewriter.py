"""Directive discovery and dispatch: the transformer's main loop.

``transform_statements`` walks a statement list; every ``with
omp("...")`` block and standalone ``omp("...")`` call is parsed,
validated against the spec, and handed to the construct's lowering
function; all other compound statements are traversed recursively so
directives work at any nesting depth.
"""

from __future__ import annotations

import ast

from repro.directives import parse_directive
from repro.directives.model import Directive
from repro.directives.spec import DIRECTIVES
from repro.errors import OmpSyntaxError
from repro.transform import scope
from repro.transform.api_map import OMP_API_METHODS
from repro.transform.astutil import rt_attr
from repro.transform.context import TransformContext

#: Attribute used to pass pre-parsed directives on synthesized nodes
#: (combined ``parallel for`` / ``parallel sections`` splitting).
PARSED_ATTR = "_omp_parsed_directive"


def extract_directive_call(node: ast.expr) -> str | None:
    """Return the directive text if ``node`` is an ``omp("...")`` call."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    # "omp" is OMP4Py's marker, "openmp" is PyOMP's (both papers use the
    # with-statement convention).
    is_omp = (isinstance(func, ast.Name) and func.id in ("omp", "openmp")) \
        or (isinstance(func, ast.Attribute) and func.attr in ("omp",
                                                              "openmp"))
    if not is_omp:
        return None
    if len(node.args) != 1 or node.keywords:
        raise OmpSyntaxError(
            "omp() takes exactly one directive string")
    argument = node.args[0]
    if not isinstance(argument, ast.Constant) or not isinstance(
            argument.value, str):
        raise OmpSyntaxError(
            "the omp() directive must be a string literal")
    return argument.value


def _directive_of_with(node: ast.With) -> Directive | None:
    parsed = getattr(node, PARSED_ATTR, None)
    if parsed is not None:
        return parsed
    if len(node.items) != 1:
        for item in node.items:
            if extract_directive_call(item.context_expr) is not None:
                raise OmpSyntaxError(
                    "omp() may not share a with statement with other "
                    "context managers")
        return None
    item = node.items[0]
    text = extract_directive_call(item.context_expr)
    if text is None:
        return None
    if item.optional_vars is not None:
        raise OmpSyntaxError("omp() does not support 'as' bindings",
                             directive=text)
    return parse_directive(text)


def transform_statements(stmts: list[ast.stmt],
                         ctx: TransformContext) -> list[ast.stmt]:
    # Imported here to avoid a cycle (construct modules use this
    # function for their recursive descent).
    from repro.transform.constructs import dispatch_standalone, \
        dispatch_structured

    output: list[ast.stmt] = []
    for stmt in stmts:
        if isinstance(stmt, ast.With):
            directive = _directive_of_with(stmt)
            if directive is not None:
                spec = DIRECTIVES[directive.name]
                if spec.standalone:
                    raise OmpSyntaxError(
                        f"{directive.name!r} is a standalone directive; "
                        f"call it as omp({directive.source!r}) without "
                        f"'with'", directive=directive.source)
                output.extend(dispatch_structured(stmt, directive, ctx))
                continue
        elif isinstance(stmt, ast.Expr):
            text = extract_directive_call(stmt.value)
            if text is not None:
                directive = parse_directive(text)
                spec = DIRECTIVES[directive.name]
                if not spec.standalone:
                    raise OmpSyntaxError(
                        f"{directive.name!r} requires a structured block; "
                        f"use 'with omp(...)'", directive=directive.source)
                output.extend(dispatch_standalone(stmt, directive, ctx))
                continue
        output.append(_recurse(stmt, ctx))
    return output


def _recurse(stmt: ast.stmt, ctx: TransformContext) -> ast.stmt:
    """Transform directives inside compound statements."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        ctx.push_scope(scope.function_params(stmt), stmt.body)
        try:
            stmt.body = transform_statements(stmt.body, ctx)
        finally:
            ctx.pop_scope()
        return stmt
    if isinstance(stmt, ast.ClassDef):
        stmt.body = transform_statements(stmt.body, ctx)
        return stmt
    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
        stmt.body = transform_statements(stmt.body, ctx)
        stmt.orelse = transform_statements(stmt.orelse, ctx)
        return stmt
    if isinstance(stmt, ast.If):
        stmt.body = transform_statements(stmt.body, ctx)
        stmt.orelse = transform_statements(stmt.orelse, ctx)
        return stmt
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        stmt.body = transform_statements(stmt.body, ctx)
        return stmt
    if isinstance(stmt, ast.Try):
        stmt.body = transform_statements(stmt.body, ctx)
        for handler in stmt.handlers:
            handler.body = transform_statements(handler.body, ctx)
        stmt.orelse = transform_statements(stmt.orelse, ctx)
        stmt.finalbody = transform_statements(stmt.finalbody, ctx)
        return stmt
    return stmt


class ApiRewriter(ast.NodeTransformer):
    """Rebinds ``omp_*`` API references to the ``__omp__`` handle."""

    def __init__(self, rt_name: str):
        self.rt_name = rt_name

    def visit_Name(self, node: ast.Name):
        method = OMP_API_METHODS.get(node.id)
        if method is not None and isinstance(node.ctx, ast.Load):
            return ast.copy_location(rt_attr(self.rt_name, method), node)
        return node


def transform_function_def(funcdef: ast.FunctionDef,
                           ctx: TransformContext) -> ast.FunctionDef:
    """Transform one function definition (decorators already stripped)."""
    ctx.push_scope(scope.function_params(funcdef), funcdef.body)
    try:
        funcdef.body = transform_statements(funcdef.body, ctx)
    finally:
        ctx.pop_scope()
    rewriter = ApiRewriter(ctx.rt_name)
    for index, stmt in enumerate(funcdef.body):
        funcdef.body[index] = rewriter.visit(stmt)
    if ctx.threadprivate:
        from repro.transform.constructs.threadprivate import \
            ThreadprivateRewriter
        tp_rewriter = ThreadprivateRewriter(ctx)
        funcdef.body = [tp_rewriter.rewrite(stmt) for stmt in funcdef.body]
    ast.fix_missing_locations(funcdef)
    return funcdef
