"""Sweep runner: modes × thread counts over the benchmark apps."""

from __future__ import annotations

import dataclasses

from repro.analysis.timing import Measurement, measure
from repro.errors import OmpError
from repro.modes import ALL_MODES, Mode


@dataclasses.dataclass
class SweepPoint:
    """One (app, series, threads) measurement."""

    app: str
    series: str          # mode value or "pyomp" / "seq"
    threads: int
    measurement: Measurement | None
    verified: bool | None
    error: str | None = None

    @property
    def wall(self) -> float | None:
        return self.measurement.wall if self.measurement else None

    @property
    def projected(self) -> float | None:
        return self.measurement.projected if self.measurement else None


def run_point(spec, mode: Mode, threads: int, profile: str,
              repeats: int = 1, reference=None, **overrides) -> SweepPoint:
    """Measure one app variant; inputs are rebuilt per repetition."""
    dt = mode is Mode.COMPILED_DT
    variant = spec.variant(mode)

    def make_args():
        inputs = spec.inputs(profile, dt=dt, **overrides)
        inputs["threads"] = threads
        return (), inputs

    measurement = measure(variant, repeats=repeats, make_args=make_args)
    verified = (bool(spec.verify(measurement.value, reference))
                if reference is not None else None)
    return SweepPoint(app=spec.name, series=mode.value, threads=threads,
                      measurement=measurement, verified=verified)


def run_pyomp_point(spec, threads: int, profile: str, repeats: int = 1,
                    reference=None, **overrides) -> SweepPoint:
    """Measure the PyOMP baseline, or record its documented failure."""
    from repro.cruntime import cruntime
    try:
        variant = spec.pyomp_variant()
    except OmpError as error:
        return SweepPoint(app=spec.name, series="pyomp", threads=threads,
                          measurement=None, verified=None,
                          error=f"{type(error).__name__}: {error}")

    def make_args():
        inputs = spec.inputs(profile, dt=True, **overrides)
        inputs["threads"] = threads
        return (), inputs

    measurement = measure(variant, runtime=cruntime, repeats=repeats,
                          make_args=make_args)
    verified = (bool(spec.verify(measurement.value, reference))
                if reference is not None else None)
    return SweepPoint(app=spec.name, series="pyomp", threads=threads,
                      measurement=measurement, verified=verified)


def sweep(spec, thread_counts, profile: str = "default",
          modes=ALL_MODES, include_pyomp: bool = True,
          repeats: int = 1, verify: bool = True,
          **overrides) -> list[SweepPoint]:
    """The Fig. 5/6 grid for one app."""
    reference = None
    if verify:
        reference = spec.sequential(**spec.inputs(profile, **overrides))
    points: list[SweepPoint] = []
    for mode in modes:
        for threads in thread_counts:
            points.append(run_point(spec, mode, threads, profile,
                                    repeats=repeats, reference=reference,
                                    **overrides))
    if include_pyomp:
        for threads in thread_counts:
            point = run_pyomp_point(spec, threads, profile,
                                    repeats=repeats, reference=reference,
                                    **overrides)
            points.append(point)
            if point.error is not None:
                break  # one failure row is enough, as in the paper
    return points


def schedule_sweep(spec, thread_counts, policies, chunk: int,
                   profile: str = "default", modes=ALL_MODES,
                   repeats: int = 1) -> dict[str, list[SweepPoint]]:
    """The Fig. 7 grid: scheduling policies via the runtime ICV.

    Kernels written with ``schedule(runtime)`` pick the policy up from
    ``omp_set_schedule`` on their bound runtime.
    """
    from repro.cruntime import cruntime
    from repro.runtime import pure_runtime
    results: dict[str, list[SweepPoint]] = {}
    for policy in policies:
        for rt in (pure_runtime, cruntime):
            rt.set_schedule(policy, chunk)
        try:
            results[policy] = sweep(spec, thread_counts, profile,
                                    modes=modes, include_pyomp=False,
                                    repeats=repeats)
        finally:
            for rt in (pure_runtime, cruntime):
                rt.set_schedule("static")
    return results
