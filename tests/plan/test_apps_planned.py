"""Correctness of the planned (inspector–executor) app kernels against
their sequential references and critical-section baselines."""

import pytest

from repro.apps import get_app, md, wordcount
from repro.plan import clear_plan_cache, plan_cache_stats


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestWordcountPlanned:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_matches_sequential(self, threads):
        spec = get_app("wordcount")
        inputs = spec.inputs("test")
        expected = wordcount.sequential(**inputs)
        result = wordcount.kernel_planned(threads=threads, **inputs)
        assert result == expected

    def test_merge_plan_is_one_color(self):
        from repro.plan import build_plan
        plan = build_plan(wordcount.shard_map(16), 1)
        assert plan.ncolors == 1
        assert plan.conflict_edges == 0

    def test_empty_corpus(self):
        assert wordcount.kernel_planned([], 0, 4) == {}


class TestMdPlanned:
    def _inputs(self):
        return md.make_input(n=24, steps=3)

    def test_matches_sequential(self):
        inputs = self._inputs()
        expected = md.sequential(**self._inputs())
        result = md.kernel_planned(threads=4, **inputs)
        assert result == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_matches_critical_baseline(self):
        inputs = self._inputs()
        baseline = md.kernel_pairs_critical(threads=4, **self._inputs())
        result = md.kernel_planned(threads=4, **inputs)
        assert result == pytest.approx(baseline, rel=1e-9, abs=1e-9)

    def test_timestep_loop_hits_the_plan_cache(self):
        """Step one builds the plan; every later force evaluation is a
        cache hit — the inspector cost amortizes across timesteps."""
        inputs = self._inputs()
        steps = inputs["steps"]
        md.kernel_planned(threads=2, **inputs)
        stats = plan_cache_stats()
        assert stats["builds"] == 1
        # _verlet evaluates forces once up front plus once per step.
        assert stats["hits"] == steps

    def test_pair_block_map_covers_the_triangle(self):
        the_map = md.pair_block_map(10, 3)
        nblocks = 4
        assert len(the_map) == nblocks * (nblocks + 1) // 2
        assert the_map.elements() == set(range(nblocks))


class TestBfsPlannedCache:
    def test_one_plan_serves_every_level(self):
        from repro.apps import bfs
        grid = bfs.make_maze(21)
        expected = bfs.sequential(grid, 21)
        assert bfs.kernel_planned(grid, 21, 3) == expected
        stats = plan_cache_stats()
        # The plan is fetched once before the region forks, not once
        # per BFS level.
        assert stats["builds"] == 1
        assert stats["hits"] == 0
