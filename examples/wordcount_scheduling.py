"""Non-numerical workload with scheduling policies (paper Figs. 6–7).

Counts words of a synthetic Zipf corpus with per-thread dictionaries —
code PyOMP/Numba cannot compile, but OMP4Py runs natively. The loop is
declared ``schedule(runtime)``, so ``omp_set_schedule`` switches the
policy without retransforming, and the heavy-tailed line lengths make
the policies measurably different.

Run with::

    python examples/wordcount_scheduling.py [lines] [threads]
"""

import sys
import time

from repro import omp, omp_set_schedule
from repro.apps.wordcount import make_corpus


@omp
def wordcount(corpus, count, threads):
    counts = {}
    with omp("parallel num_threads(threads)"):
        local = {}
        with omp("for schedule(runtime) nowait"):
            for index in range(count):
                for word in corpus[index].split():
                    local[word] = local.get(word, 0) + 1
        with omp("critical"):
            for word in local:
                counts[word] = counts.get(word, 0) + local[word]
    return counts


def main() -> None:
    lines = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    threads = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    corpus = make_corpus(lines)
    reference = None
    print(f"{lines} lines, {threads} threads")
    print(f"{'policy':<16}{'time [s]':>10}{'distinct words':>16}")
    for policy, chunk in (("static", None), ("static", 300),
                          ("dynamic", 300), ("guided", 300)):
        omp_set_schedule(policy, chunk)
        begin = time.perf_counter()
        counts = wordcount(corpus, len(corpus), threads)
        elapsed = time.perf_counter() - begin
        label = policy if chunk is None else f"{policy},{chunk}"
        print(f"{label:<16}{elapsed:>10.3f}{len(counts):>16}")
        if reference is None:
            reference = counts
        assert counts == reference, "policies must agree on the counts"
    omp_set_schedule("static")


if __name__ == "__main__":
    main()
