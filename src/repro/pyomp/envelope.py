"""Numba-envelope checks for the PyOMP baseline.

The checker rejects, at decoration time, the constructs the paper's
PyOMP v0.2.0 cannot compile.  The rules are deliberately the *documented
observable envelope* rather than a Numba reimplementation:

* Python ``dict``/``set`` literals, comprehensions, and constructors —
  "lacks support for compiling Python dictionaries" (Section IV-B);
* string method calls and string iteration targets;
* attribute calls on modules/objects other than ``math`` and
  ``numpy``/``np`` — Numba "restricts the use of functions from
  libraries that are not optimized for Numba" (NetworkX et al.);
* non-static loop schedules and ``nowait`` — "PyOMP supports
  approximately 90% of the OpenMP Common Core, with notable omissions
  such as the nowait clause and the dynamic scheduling policy";
* the ``if`` clause on tasks — the reason qsort "cannot be implemented
  in PyOMP".
"""

from __future__ import annotations

import ast

from repro.directives import parse_directive
from repro.transform.rewriter import extract_directive_call

_ALLOWED_MODULES = ("math", "np", "numpy")

_STR_METHODS = frozenset({
    "split", "lower", "upper", "strip", "join", "replace", "startswith",
    "endswith", "casefold", "splitlines", "encode", "decode", "format",
})


class EnvelopeViolation(Exception):
    """Raised internally with a Numba-style message."""


def check_function(tree: ast.FunctionDef) -> None:
    """Raise :class:`EnvelopeViolation` on the first unsupported use."""
    _Checker().check(tree)


class _Checker(ast.NodeVisitor):
    def check(self, tree: ast.FunctionDef) -> None:
        for stmt in tree.body:
            self.visit(stmt)

    @staticmethod
    def _fail(node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", "?")
        raise EnvelopeViolation(
            f"Failed in nopython mode pipeline (line {lineno}): {message}")

    # -- untypable containers -------------------------------------------

    def visit_Dict(self, node: ast.Dict) -> None:
        self._fail(node, "Use of unsupported reflected dict type")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._fail(node, "Use of unsupported reflected dict type")

    def visit_Set(self, node: ast.Set) -> None:
        self._fail(node, "Use of unsupported reflected set type")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._fail(node, "Use of unsupported reflected set type")

    # -- calls ------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if extract_directive_call(node) is not None:
            self._check_directive(node)
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("dict", "set"):
            self._fail(node, f"Untyped {func.id}() constructor")
        if isinstance(func, ast.Attribute):
            if func.attr in _STR_METHODS:
                self._fail(node,
                           f"Unknown attribute '{func.attr}' of type "
                           f"unicode_type (str methods are unsupported)")
            base = func.value
            if isinstance(base, ast.Name) \
                    and base.id not in _ALLOWED_MODULES:
                self._fail(
                    node,
                    f"Cannot determine Numba type of "
                    f"'{base.id}.{func.attr}' (external library objects "
                    f"such as NetworkX graphs cannot be compiled)")
        self.generic_visit(node)

    # -- directives --------------------------------------------------------

    def _check_directive(self, node: ast.Call) -> None:
        directive = parse_directive(extract_directive_call(node))
        schedule = directive.clause("schedule")
        if schedule is not None and schedule.op != "static":
            self._fail(node,
                       f"schedule({schedule.op}) is not supported by "
                       f"PyOMP (static only)")
        if directive.has_clause("nowait"):
            self._fail(node, "the nowait clause is not supported by PyOMP")
        if directive.name == "task" and directive.has_clause("if"):
            self._fail(node,
                       "the if clause on tasks is not supported by PyOMP")
