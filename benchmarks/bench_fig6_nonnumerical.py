"""Fig. 6 — clustering coefficient and wordcount across OMP4Py modes.

The expected shape (paper Section IV-B): all four modes close together
— native compilation cannot reach inside NetworkX or reshape str/dict
operations — and PyOMP cannot run either app at all (asserted here).
"""

import pytest

from repro.apps import get_app
from repro.modes import ALL_MODES
from repro.pyomp import PyOMPCompileError

from conftest import BENCH_THREADS

PROFILE = "test"


@pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("app", ("clustering", "wordcount"))
def test_fig6_omp4py(benchmark, app, mode):
    spec = get_app(app)
    benchmark.group = f"fig6:{app}"
    variant = spec.variant(mode)

    def setup():
        inputs = spec.inputs(PROFILE)
        inputs["threads"] = BENCH_THREADS
        return (), inputs

    benchmark.pedantic(variant, setup=setup, rounds=3)


@pytest.mark.parametrize("app", ("clustering", "wordcount"))
def test_fig6_pyomp_cannot_run(app):
    spec = get_app(app)
    with pytest.raises(PyOMPCompileError):
        spec.pyomp_variant()
