"""Task-parallel maze pathfinding via BFS (the paper's *bfs*).

Paper configuration: 2100×2100 grid, entrance top-left, exit
bottom-right, zeros are paths and ones are walls, one task per feasible
move; constructs: ``parallel``, ``single``, ``task`` (Table I).

For PyOMP the paper reports "an error is raised during execution of the
PyOMP code related to Numba"; the baseline spec reproduces that as a
runtime error.
"""

from __future__ import annotations

import random
from collections import deque

from repro.apps.base import AppSpec
from repro.api import omp


def make_maze(n: int, seed: int = 31, wall_density: float = 0.3):
    """Random maze with a guaranteed monotone path."""
    rng = random.Random(seed)
    grid = [[1 if rng.random() < wall_density else 0 for _ in range(n)]
            for _ in range(n)]
    row = col = 0
    grid[0][0] = 0
    while row < n - 1 or col < n - 1:
        if row == n - 1:
            col += 1
        elif col == n - 1:
            row += 1
        elif rng.random() < 0.5:
            row += 1
        else:
            col += 1
        grid[row][col] = 0
    return grid


def make_input(n: int, seed: int = 31) -> dict:
    return {"grid": make_maze(n, seed), "n": n}


def sequential(grid, n):
    """Reference BFS: (exit reached, number of reachable cells)."""
    visited = [[False] * n for _ in range(n)]
    visited[0][0] = True
    frontier = deque([(0, 0)])
    count = 1
    while frontier:
        row, col = frontier.popleft()
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nr, nc = row + dr, col + dc
            if 0 <= nr < n and 0 <= nc < n and grid[nr][nc] == 0 \
                    and not visited[nr][nc]:
                visited[nr][nc] = True
                count += 1
                frontier.append((nr, nc))
    return visited[n - 1][n - 1], count


def kernel(grid, n, threads):
    visited = [[False] * n for _ in range(n)]
    visited[0][0] = True
    state = {"count": 1, "reached": False}

    def explore(row, col):
        if row == n - 1 and col == n - 1:
            with omp("critical(bfs_state)"):
                state["reached"] = True
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nr = row + dr
            nc = col + dc
            if 0 <= nr < n and 0 <= nc < n and grid[nr][nc] == 0:
                claimed = False
                with omp("critical(bfs_visited)"):
                    if not visited[nr][nc]:
                        visited[nr][nc] = True
                        state["count"] += 1
                        claimed = True
                if claimed:
                    # Each feasible move spawns a task (paper IV-A).
                    with omp("task firstprivate(nr, nc)"):
                        explore(nr, nc)

    with omp("parallel num_threads(threads)"):
        with omp("single"):
            explore(0, 0)
    return state["reached"], state["count"]


def kernel_frontier(grid, n, threads):
    """Level-synchronous BFS, the critical-section baseline.

    Each level expands the current frontier under a single
    ``critical``: the visited check, the claim, and the next-frontier
    append are one atomic step.  Splitting them across two criticals
    (check under one, append under another) is the classic
    check-then-act race — two threads both pass the visited check and
    enqueue the vertex twice; ``tests/plan/test_bfs_frontier.py``
    guards the single-critical invariant with a duplicate count on a
    diamond graph.
    """
    visited = [[False] * n for _ in range(n)]
    visited[0][0] = True
    state = {"count": 1, "reached": n == 1,
             "frontier": [(0, 0)], "next": []}

    with omp("parallel num_threads(threads)"):
        while state["frontier"]:
            frontier = state["frontier"]
            with omp("for schedule(static)"):
                for index in range(len(frontier)):
                    row, col = frontier[index]
                    for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                        nr = row + dr
                        nc = col + dc
                        if 0 <= nr < n and 0 <= nc < n \
                                and grid[nr][nc] == 0:
                            # Claim and enqueue under ONE critical:
                            # the atomicity of check+append is what
                            # keeps the next frontier duplicate-free.
                            with omp("critical(bfs_frontier)"):
                                if not visited[nr][nc]:
                                    visited[nr][nc] = True
                                    state["count"] += 1
                                    state["next"].append((nr, nc))
                                    if nr == n - 1 and nc == n - 1:
                                        state["reached"] = True
            with omp("single"):
                state["frontier"] = state["next"]
                state["next"] = []
    return state["reached"], state["count"]


#: Neighbor offsets shared by the planned kernel's bodies.
_DIRS = ((1, 0), (-1, 0), (0, 1), (0, -1))


def rows_map(n: int):
    """The planned kernel's indirection map: iteration = grid row,
    element = that row.  The planned kernel is *owner-computes*: a
    row's body claims only cells of its own row (reading the neighbor
    rows' frontier lists, which the level before froze), so the
    inspector finds an empty conflict graph and the plan is a single
    color — every row block runs with zero synchronization and one
    barrier per BFS level."""
    from repro.plan import Map
    return Map("bfs-rows", [(row,) for row in range(n)])


def kernel_planned(grid, n, threads, runtime=None):
    """Inspector–executor BFS: the owner-computes row plan replaces
    the frontier/visited criticals.

    The frontier is kept per row in two parity buffers; each level
    reads one buffer and writes the other.  The body for row ``r``
    scans the frontier cells of rows ``r-1``, ``r`` and ``r+1`` but
    claims only the moves that *land in row r* — exactly the writes
    the map declares — so visited claims and next-frontier appends are
    single-writer by construction and the hot path has zero locks.
    One plan serves every level through the (map, partition size)
    cache, one parallel region serves the whole search via
    :func:`repro.plan.execute_member`, and the level's trailing
    barrier doubles as the termination consensus: the next level never
    mutates the buffer it decides on, so every thread scans the new
    frontier race-free and reaches the same verdict.
    """
    from repro.atomics import PaddedAccumulator
    from repro.plan import execute_member, plan_for

    if runtime is None:
        from repro.runtime import pure_runtime as runtime
    nthreads = max(1, threads)
    visited = [[False] * n for _ in range(n)]
    visited[0][0] = True
    buffers = ([[] for _ in range(n)], [[] for _ in range(n)])
    buffers[0][0].append(0)
    the_map = rows_map(n)
    partition = max(1, n // (4 * nthreads))
    # One plan serves every level; a second kernel call with the same
    # map object would be a plan-cache hit (md's timestep loop is the
    # per-step cache workout — see md.kernel_planned).
    plan = plan_for(the_map, partition, runtime=runtime)
    counts = PaddedAccumulator(nthreads)
    reached = [n == 1] * nthreads

    def make_body(src, dst):
        def body(lo, hi, thread_num):
            for row in range(lo, hi):
                mine = dst[row]
                if mine:
                    # Stale two-levels-old entries; every read of them
                    # finished before the last level's barrier.
                    mine.clear()
                grow = grid[row]
                vrow = visited[row]
                if row > 0:
                    for col in src[row - 1]:
                        if grow[col] == 0 and not vrow[col]:
                            vrow[col] = True
                            mine.append(col)
                if row + 1 < n:
                    for col in src[row + 1]:
                        if grow[col] == 0 and not vrow[col]:
                            vrow[col] = True
                            mine.append(col)
                for col in src[row]:
                    left = col - 1
                    if left >= 0 and grow[left] == 0 \
                            and not vrow[left]:
                        vrow[left] = True
                        mine.append(left)
                    right = col + 1
                    if right < n and grow[right] == 0 \
                            and not vrow[right]:
                        vrow[right] = True
                        mine.append(right)
                if mine:
                    counts.add(thread_num, len(mine))
                    if row == n - 1 and vrow[n - 1]:
                        reached[thread_num] = True
        return body

    bodies = (make_body(buffers[0], buffers[1]),
              make_body(buffers[1], buffers[0]))

    def member():
        parity = 0
        while True:
            execute_member(plan, bodies[parity], runtime=runtime)
            # The trailing barrier froze this level's writes and the
            # next level only reads the buffer being decided on, so
            # this scan is race-free and every thread agrees.
            if not any(buffers[1 - parity]):
                break
            parity ^= 1

    runtime.parallel_run(member, num_threads=nthreads)
    return any(reached), 1 + int(counts.total())


# The maze explorer is symbolic work (tuples, bounds tests, dict state):
# exactly the kind of code native compilation cannot reshape, so the
# typed pipeline shares the untyped source and falls back gracefully.
kernel_dt = kernel

#: The paper: PyOMP raises a Numba-internal error while executing bfs.
PYOMP_STATUS = ("runtime_error: Numba internal error while lowering "
                "task region (paper Section IV-A)")


def verify(result, reference) -> bool:
    return tuple(result) == tuple(reference)


SPEC = AppSpec(
    name="bfs",
    title="Maze pathfinding (BFS)",
    make_input=make_input,
    sequential=sequential,
    kernel=kernel,
    kernel_dt=kernel_dt,
    pyomp=PYOMP_STATUS,
    verify=verify,
    sizes={
        "test": {"n": 31},
        "default": {"n": 101},
        "paper": {"n": 2100},
    },
    table1=("parallel, single, task", "Implicit barriers"),
)
