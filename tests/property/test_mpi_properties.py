"""Property tests: mini-MPI collectives agree with their sequential
definitions for arbitrary rank counts and payloads."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.mpi import mpirun

rank_counts = st.integers(1, 5)
payloads = st.lists(st.integers(-1000, 1000), min_size=5, max_size=5)


class TestCollectiveProperties:
    @settings(max_examples=25, deadline=None)
    @given(nprocs=rank_counts, values=payloads)
    def test_allgather_is_rank_ordered(self, nprocs, values):
        def main(comm):
            return comm.allgather(values[comm.rank])

        expected = values[:nprocs]
        for result in mpirun(nprocs, main):
            assert result == expected

    @settings(max_examples=25, deadline=None)
    @given(nprocs=rank_counts, values=payloads)
    def test_allreduce_sum(self, nprocs, values):
        def main(comm):
            return comm.allreduce(values[comm.rank])

        expected = sum(values[:nprocs])
        assert mpirun(nprocs, main) == [expected] * nprocs

    @settings(max_examples=25, deadline=None)
    @given(nprocs=rank_counts, values=payloads,
           root=st.integers(0, 4))
    def test_bcast_from_any_root(self, nprocs, values, root):
        root = root % nprocs

        def main(comm):
            payload = values if comm.rank == root else None
            return comm.bcast(payload, root=root)

        assert mpirun(nprocs, main) == [values] * nprocs

    @settings(max_examples=25, deadline=None)
    @given(nprocs=rank_counts, values=payloads)
    def test_scatter_gather_roundtrip(self, nprocs, values):
        def main(comm):
            blocks = ([values[rank] for rank in range(comm.size)]
                      if comm.rank == 0 else None)
            mine = comm.scatter(blocks, root=0)
            return comm.gather(mine, root=0)

        results = mpirun(nprocs, main)
        assert results[0] == values[:nprocs]
        assert all(r is None for r in results[1:])

    @settings(max_examples=20, deadline=None)
    @given(nprocs=rank_counts,
           block=st.integers(1, 4),
           seed=st.integers(0, 1000))
    def test_Allgather_equals_concatenation(self, nprocs, block, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(nprocs, block))

        def main(comm):
            out = np.empty(nprocs * block)
            comm.Allgather(np.ascontiguousarray(data[comm.rank]), out)
            return out

        expected = data.ravel()
        for result in mpirun(nprocs, main):
            np.testing.assert_allclose(result, expected)

    @settings(max_examples=20, deadline=None)
    @given(nprocs=rank_counts, seed=st.integers(0, 1000))
    def test_Allreduce_equals_numpy_sum(self, nprocs, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(nprocs, 6))

        def main(comm):
            out = np.empty(6)
            comm.Allreduce(np.ascontiguousarray(data[comm.rank]), out)
            return out

        expected = data.sum(axis=0)
        for result in mpirun(nprocs, main):
            np.testing.assert_allclose(result, expected)

    @settings(max_examples=15, deadline=None)
    @given(nprocs=st.integers(2, 5), rounds=st.integers(1, 4))
    def test_repeated_collectives_stay_consistent(self, nprocs, rounds):
        def main(comm):
            history = []
            for round_index in range(rounds):
                history.append(
                    comm.allreduce(comm.rank * 10 + round_index))
            return history

        base = sum(rank * 10 for rank in range(nprocs))
        expected = [base + nprocs * r for r in range(rounds)]
        assert mpirun(nprocs, main) == [expected] * nprocs
