"""Reduction operators: the OpenMP 3.0 built-ins plus ``declare
reduction`` (OpenMP 4.0, included per the paper).

Each operator supplies an identity (the value private copies start from)
and a combiner.  The registry of user-declared reductions is shared by
both runtimes — a declared name means the same thing everywhere, just as
a ``declare reduction`` in a C translation unit does.
"""

from __future__ import annotations

import math
import threading

from repro.errors import OmpRuntimeError


class ReductionOp:
    __slots__ = ("name", "initializer", "combiner")

    def __init__(self, name, initializer, combiner):
        self.name = name
        self.initializer = initializer
        self.combiner = combiner


class _ExtremeIdentity:
    """Order-extreme identity for ``min``/``max``.

    ``math.inf`` identities silently promote all-integer reductions to
    float (``min(inf, 3) == 3`` but ``min(inf, inf) == inf`` leaks a
    float, and any arithmetic on the identity floats the result).  This
    sentinel compares like ±infinity — so ``min(identity, x)`` and
    ``max(identity, x)`` return ``x`` unchanged, preserving its type —
    but is not a number: a private copy that never met a value folds
    back out of the combine instead of contaminating the result.  It
    still compares equal to the matching ``math.inf`` so existing
    identity checks hold.
    """

    __slots__ = ("_sign",)

    def __init__(self, sign: int) -> None:
        self._sign = sign  # +1: greater than everything (min identity)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<omp min identity>" if self._sign > 0 \
            else "<omp max identity>"

    def _value(self) -> float:
        return math.inf if self._sign > 0 else -math.inf

    def __lt__(self, other):
        if isinstance(other, _ExtremeIdentity):
            return self._value() < other._value()
        return self._sign < 0

    def __le__(self, other):
        if isinstance(other, _ExtremeIdentity):
            return self._value() <= other._value()
        return self._sign < 0

    def __gt__(self, other):
        if isinstance(other, _ExtremeIdentity):
            return self._value() > other._value()
        return self._sign > 0

    def __ge__(self, other):
        if isinstance(other, _ExtremeIdentity):
            return self._value() >= other._value()
        return self._sign > 0

    def __eq__(self, other):
        if isinstance(other, _ExtremeIdentity):
            return self._sign == other._sign
        return other == self._value()

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash(self._value())


#: ``min`` identity: greater than every value, equal to ``math.inf``.
MIN_IDENTITY = _ExtremeIdentity(+1)
#: ``max`` identity: less than every value, equal to ``-math.inf``.
MAX_IDENTITY = _ExtremeIdentity(-1)


class _Omitted:
    """Identity of a declared reduction with a defaulted initializer.

    A thread that receives zero iterations folds its untouched private
    copy into the shared result; with a defaulted initializer there is
    no identity value to fold, so this sentinel stands in and
    ``reduction_combine`` drops it before the user combiner ever sees
    it — the combiner is only called on real values.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<omp omitted identity>"


#: Shared sentinel returned by defaulted declared initializers.
OMITTED = _Omitted()


_BUILTINS: dict[str, ReductionOp] = {}


def _builtin(name, initializer, combiner):
    _BUILTINS[name] = ReductionOp(name, initializer, combiner)


_builtin("+", lambda: 0, lambda out, value: out + value)
# OpenMP reduces "-" with addition of the partial sums: each private
# copy accumulates subtractions from 0, and partials are summed.
_builtin("-", lambda: 0, lambda out, value: out + value)
_builtin("*", lambda: 1, lambda out, value: out * value)
_builtin("&", lambda: -1, lambda out, value: out & value)
_builtin("|", lambda: 0, lambda out, value: out | value)
_builtin("^", lambda: 0, lambda out, value: out ^ value)
_builtin("&&", lambda: True, lambda out, value: bool(out and value))
_builtin("||", lambda: False, lambda out, value: bool(out or value))
_builtin("and", lambda: True, lambda out, value: bool(out and value))
_builtin("or", lambda: False, lambda out, value: bool(out or value))
# Sentinel-first-value identities: the first real value replaces the
# sentinel outright, so an all-int reduction stays int (math.inf here
# would promote it to float).
_builtin("min", lambda: MIN_IDENTITY, min)
_builtin("max", lambda: MAX_IDENTITY, max)


_declared: dict[str, ReductionOp] = {}
_declared_lock = threading.Lock()


def declare_reduction(name: str, combiner, initializer=None) -> None:
    """Register a user reduction (API form of ``declare reduction``).

    ``combiner`` is ``f(omp_out, omp_in) -> new omp_out``;
    ``initializer`` is a zero-argument callable producing the identity.
    When omitted, private copies start from the :data:`OMITTED`
    sentinel and the first real value becomes the partial result — the
    combiner is never called with the sentinel, so a thread that
    receives zero iterations folds out of the reduction harmlessly
    instead of crashing the combiner with a bogus identity.
    """
    if not name.isidentifier():
        raise OmpRuntimeError(f"invalid reduction name {name!r}")
    if name in _BUILTINS:
        raise OmpRuntimeError(f"cannot redeclare built-in reduction {name!r}")
    if initializer is None:
        initializer = lambda: OMITTED  # noqa: E731 - shared sentinel
    with _declared_lock:
        _declared[name] = ReductionOp(name, initializer, combiner)


def lookup(name: str) -> ReductionOp:
    op = _BUILTINS.get(name) or _declared.get(name)
    if op is None:
        raise OmpRuntimeError(f"unknown reduction operator {name!r}")
    return op


def reduction_init(name: str):
    """Identity value for private reduction copies."""
    return lookup(name).initializer()


def reduction_combine(name: str, out, value):
    """Combine a private partial result into the shared variable.

    Sentinel-first-value rule: an :data:`OMITTED` operand (a defaulted
    declared identity that never met a value) is dropped without
    calling the combiner, so user combiners only ever see real values.
    """
    if value is OMITTED:
        return out
    if out is OMITTED:
        return value
    return lookup(name).combiner(out, value)
