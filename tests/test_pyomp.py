"""Tests of the PyOMP baseline: envelope rejection and execution."""

import pytest

from repro.pyomp import PyOMPCompileError, njit, openmp


def pyomp_pi(n, threads):
    total: float = 0.0
    w: float = 1.0 / n
    with openmp("parallel for reduction(+:total) num_threads(threads)"):
        for i in range(n):
            x = (i + 0.5) * w
            total += 4.0 / (1.0 + x * x)
    return total * w


def uses_dict(n):
    counts = {}
    with openmp("parallel"):
        counts["x"] = n
    return counts


def uses_dict_constructor(n):
    counts = dict()
    return counts


def uses_set_literal(n):
    return {1, 2, n}


def uses_networkx_like_object(graph):
    with openmp("parallel"):
        return graph.number_of_nodes()


def uses_str_methods(text):
    with openmp("parallel"):
        return text.split()


def uses_dynamic_schedule(n):
    total: float = 0.0
    with openmp("parallel for reduction(+:total) schedule(dynamic, 4)"):
        for i in range(n):
            total += i
    return total


def uses_nowait(n):
    with openmp("parallel"):
        with openmp("for nowait"):
            for i in range(n):
                pass


def uses_task_if(n):
    with openmp("parallel"):
        with openmp("single"):
            with openmp("task if(n > 10)"):
                pass


def uses_math_and_numpy(n):
    import math
    total: float = 0.0
    with openmp("parallel for reduction(+:total) num_threads(2)"):
        for i in range(n):
            total += math.sqrt(i)
    return total


class TestSupportedPrograms:
    def test_pi_compiles_and_runs(self):
        import math
        compiled = njit(pyomp_pi)
        assert compiled(200000, 2) == pytest.approx(math.pi, abs=1e-8)

    def test_math_calls_allowed(self):
        compiled = njit(uses_math_and_numpy)
        expected = sum(i ** 0.5 for i in range(100))
        assert compiled(100) == pytest.approx(expected)

    def test_njit_with_options(self):
        compiled = njit(nogil=True)(pyomp_pi)
        assert callable(compiled)


class TestEnvelopeRejections:
    def test_dict_literal(self):
        with pytest.raises(PyOMPCompileError, match="dict"):
            njit(uses_dict)

    def test_dict_constructor(self):
        with pytest.raises(PyOMPCompileError, match="dict"):
            njit(uses_dict_constructor)

    def test_set_literal(self):
        with pytest.raises(PyOMPCompileError, match="set"):
            njit(uses_set_literal)

    def test_external_library_object(self):
        with pytest.raises(PyOMPCompileError, match="Numba type"):
            njit(uses_networkx_like_object)

    def test_str_methods(self):
        with pytest.raises(PyOMPCompileError, match="unicode"):
            njit(uses_str_methods)

    def test_dynamic_schedule(self):
        with pytest.raises(PyOMPCompileError, match="static only"):
            njit(uses_dynamic_schedule)

    def test_nowait(self):
        with pytest.raises(PyOMPCompileError, match="nowait"):
            njit(uses_nowait)

    def test_task_if_clause(self):
        with pytest.raises(PyOMPCompileError, match="if clause"):
            njit(uses_task_if)

    def test_error_message_mentions_nopython_pipeline(self):
        with pytest.raises(PyOMPCompileError, match="nopython"):
            njit(uses_dict)
