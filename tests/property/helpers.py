"""Shared helpers for property tests (no test definitions here)."""

import importlib.util
import itertools
import sys

from repro import transform

_COUNTER = itertools.count()


def compile_from_source(source: str, name: str, tmp_dir, mode):
    """Write ``source`` to a real file, import it, transform ``name``."""
    index = next(_COUNTER)
    module_name = f"omp_prop_module_{index}"
    path = tmp_dir / f"{module_name}.py"
    path.write_text("from repro import *\n\n" + source, encoding="utf-8")
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
        return transform(getattr(module, name), mode)
    finally:
        sys.modules.pop(module_name, None)
