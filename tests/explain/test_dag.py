"""DAG builder / critical path on hand-built synthetic traces.

Each scenario has a known answer: a pure serial chain's critical path
equals its span; a perfect fan-out's equals one member's work, not the
sum; a lock convoy threads through both hold intervals; an imbalanced
barrier charges the early arrivals' idle time to the barrier site.
"""

from repro.explain.bottlenecks import classify
from repro.explain.dag import build_dag
from repro.runtime.trace import TraceEvent


def ev(ts, kind, thread, *detail):
    return TraceEvent(ts, kind, thread, tuple(detail))


SITE = ("app.py", 3)


def region(events, *, size, region_id=1, begin=0.0, end=1.0,
           master=0):
    """Append the fork/join skeleton of one parallel region."""
    events.append(ev(begin, "region_fork", master, size, region_id,
                     *SITE))
    events.append(ev(end, "region_join", master, size, region_id))


class TestSerialChain:
    def test_critical_path_equals_span(self):
        events = [
            ev(0.00, "region_fork", 0, 1, 1, *SITE),
            ev(0.01, "itask_begin", 0, 1),
            ev(1.01, "join_enter", 0, 1),
            ev(1.01, "itask_end", 0, 1),
            ev(1.02, "region_join", 0, 1, 1),
        ]
        analysis = build_dag(events)
        assert abs(analysis.span_s - 1.02) < 1e-9
        assert abs(analysis.critical_path_s - 1.02) < 1e-6
        # The 1.0 s between itask_begin and join_enter is compute.
        assert analysis.path_breakdown.get("compute", 0.0) >= 1.0 - 1e-9
        assert analysis.regions[1]["size"] == 1
        assert analysis.regions[1]["site"] == SITE

    def test_empty_trace(self):
        analysis = build_dag([])
        assert analysis.critical_path_s == 0.0
        assert analysis.span_s == 0.0
        assert analysis.steps == []


class TestPerfectFanOut:
    def make(self):
        events = [ev(0.00, "region_fork", 0, 4, 1, *SITE)]
        for t in range(4):
            events.append(ev(0.01, "itask_begin", t, 1))
            events.append(ev(1.01, "join_enter", t, 1))
            events.append(ev(1.01, "itask_end", t, 1))
        events.append(ev(1.02, "region_join", 0, 4, 1))
        return sorted(events, key=lambda e: e.timestamp)

    def test_critical_path_is_one_member_not_the_sum(self):
        analysis = build_dag(self.make())
        # Each member computes 1.0 s concurrently: the critical path is
        # one member's chain (~1.02 s), nowhere near the 4 s total.
        assert 1.0 <= analysis.critical_path_s <= 1.02 + 1e-9
        assert analysis.critical_path_s <= analysis.span_s + 1e-12
        assert analysis.threads == [0, 1, 2, 3]

    def test_no_significant_findings(self):
        analysis = build_dag(self.make())
        findings = classify(analysis, nthreads=4)
        assert all(f.category != "lock-convoy" for f in findings)


class TestLockConvoy:
    def make(self):
        handle = ("critical", "hot")
        lock_site = ("app.py", 7)
        events = [
            ev(0.00, "region_fork", 0, 2, 1, *SITE),
            ev(0.01, "itask_begin", 0, 1),
            ev(0.01, "itask_begin", 1, 1),
            ev(0.10, "mutex_acquired", 0, *handle, 0.0, *lock_site),
            ev(0.60, "mutex_released", 0, *handle),
            # Thread 1 entered at ~0.10 and waited 0.5 s for thread 0.
            ev(0.60, "mutex_acquired", 1, *handle, 0.5, *lock_site),
            ev(1.10, "mutex_released", 1, *handle),
            ev(0.61, "join_enter", 0, 1),
            ev(1.11, "join_enter", 1, 1),
            ev(1.11, "itask_end", 0, 1),
            ev(1.11, "itask_end", 1, 1),
            ev(1.12, "region_join", 0, 2, 1),
        ]
        return sorted(events, key=lambda e: e.timestamp)

    def test_path_threads_through_both_holds(self):
        analysis = build_dag(self.make())
        assert abs(analysis.critical_path_s - 1.12) < 1e-6
        handle = ("critical", "hot")
        assert abs(analysis.mutexes[handle]["wait_s"] - 0.5) < 1e-9
        assert analysis.mutexes[handle]["contended"] == 1
        assert analysis.mutexes[handle]["count"] == 2
        assert analysis.mutexes[handle]["site"] == ("app.py", 7)

    def test_classify_names_the_lock_and_what_if_gain(self):
        events = self.make()
        analysis = build_dag(events)
        findings = classify(analysis, nthreads=2, events=events)
        convoy = [f for f in findings if f.category == "lock-convoy"]
        assert convoy, findings
        top = convoy[0]
        assert top.directive == "critical"
        assert top.location and "app.py:7" in top.location
        assert abs(top.lost_s - 0.5) < 1e-9
        # Freeing the lock lets both holds overlap: the dependency
        # chain shortens by ~0.5 s.
        gain = top.extra["what_if_critical_path_gain_s"]
        assert gain is not None and gain >= 0.45

    def test_free_mutex_elides_the_wait(self):
        events = self.make()
        handle = ("critical", "hot")
        freed = build_dag(events, free_mutexes={handle},
                          causal_elapsed=False)
        baseline = build_dag(events, causal_elapsed=False)
        assert freed.critical_path_s < baseline.critical_path_s
        assert freed.mutexes[handle]["wait_s"] == 0.0


class TestImbalancedBarrier:
    def make(self):
        bar_site = ("app.py", 9)
        events = [ev(0.00, "region_fork", 0, 4, 1, *SITE)]
        arrivals = (0.10, 0.20, 0.30, 1.00)
        for t, at in enumerate(arrivals):
            events.append(ev(0.01, "itask_begin", t, 1))
            events.append(ev(at, "barrier_enter", t, 1, *bar_site))
            events.append(ev(1.00, "barrier_release", t,
                             1.00 - at, 1))
            events.append(ev(1.10, "join_enter", t, 1))
            events.append(ev(1.10, "itask_end", t, 1))
        events.append(ev(1.11, "region_join", 0, 4, 1))
        return sorted(events, key=lambda e: e.timestamp)

    def test_barrier_wait_charged_to_site(self):
        analysis = build_dag(self.make())
        assert abs(analysis.barrier_wait_s - (0.9 + 0.8 + 0.7)) < 1e-9
        entry = analysis.barrier_sites[("app.py", 9)]
        assert abs(entry["spread_s"] - 0.9) < 1e-9
        assert entry["count"] == 1
        assert abs(entry["wait_s"] - 2.4) < 1e-9

    def test_classify_dominant_is_barrier_imbalance(self):
        analysis = build_dag(self.make())
        findings = classify(analysis, nthreads=4)
        assert findings
        assert findings[0].category == "barrier-imbalance"
        assert findings[0].location \
            and "app.py:9" in findings[0].location
        assert findings[0].directive == "barrier"

    def test_critical_path_follows_the_late_arrival(self):
        analysis = build_dag(self.make())
        # The slow thread computes until 1.0; everyone else idles.
        assert 0.99 <= analysis.critical_path_s \
            <= analysis.span_s + 1e-12


class TestBounds:
    def test_critical_path_never_exceeds_span(self):
        # Adversarial mix: tasks, mutexes, and barriers interleaved.
        handle = ("lock", 42)
        events = [
            ev(0.00, "region_fork", 0, 4, 1, *SITE),
            ev(0.01, "itask_begin", 0, 1),
            ev(0.02, "itask_begin", 1, 1),
            ev(0.03, "task_submit", 0, 900, 0, *SITE),
            ev(0.04, "task_start", 1, 900),
            ev(0.05, "mutex_acquired", 1, *handle, 0.0, *SITE),
            ev(0.20, "mutex_released", 1, *handle),
            ev(0.21, "mutex_acquired", 0, *handle, 0.15, *SITE),
            ev(0.30, "mutex_released", 0, *handle),
            ev(0.35, "task_finish", 1, 900),
            ev(0.40, "taskwait_enter", 0, 0),
            ev(0.41, "taskwait_release", 0, 0.01, 0),
            ev(0.50, "join_enter", 0, 1),
            ev(0.55, "join_enter", 1, 1),
            ev(0.55, "itask_end", 0, 1),
            ev(0.55, "itask_end", 1, 1),
            ev(0.56, "region_join", 0, 4, 1),
        ]
        for causal_elapsed in (True, False):
            analysis = build_dag(events,
                                 causal_elapsed=causal_elapsed)
            assert analysis.critical_path_s \
                <= analysis.span_s + 1e-12
        assert build_dag(events).tasks_submitted == 1
        assert build_dag(events).tasks_started == 1
