"""Stress tests: sustained region churn, wide teams, task storms, and
mixed-runtime workloads."""

import threading

import pytest

from repro import Mode, transform
from repro.cruntime import cruntime
from repro.errors import OmpTransformError
from repro.runtime import pure_runtime

pytestmark = pytest.mark.slow


def small_region(n):
    from repro import omp
    total = 0
    with omp("parallel for reduction(+:total) num_threads(2)"):
        for i in range(n):
            total += 1
    return total


def wide_team():
    from repro import omp, omp_get_thread_num
    seen = []
    with omp("parallel num_threads(16)"):
        with omp("critical"):
            seen.append(omp_get_thread_num())
    return sorted(seen)


def task_storm(count):
    from repro import omp
    done = []
    with omp("parallel num_threads(4)"):
        with omp("single"):
            for i in range(count):
                with omp("task firstprivate(i)"):
                    with omp("critical"):
                        done.append(i)
    return len(done)


class TestRegionChurn:
    def test_hundreds_of_sequential_regions(self, runtime_mode):
        fn = transform(small_region, runtime_mode)
        for _round in range(150):
            assert fn(10) == 10

    def test_no_thread_leak_across_regions(self, runtime_mode):
        fn = transform(small_region, runtime_mode)
        fn(10)
        baseline = threading.active_count()
        for _round in range(50):
            fn(10)
        assert threading.active_count() <= baseline + 1


class TestWideTeams:
    def test_sixteen_member_team(self, runtime_mode):
        fn = transform(wide_team, runtime_mode)
        assert fn() == list(range(16))


class TestTaskStorm:
    def test_thousand_tasks_complete(self, runtime_mode):
        fn = transform(task_storm, runtime_mode)
        assert fn(1000) == 1000


class TestMixedRuntimeUse:
    def test_pure_and_hybrid_interleaved(self):
        pure_fn = transform(small_region, Mode.PURE)
        hybrid_fn = transform(small_region, Mode.HYBRID)
        for _round in range(20):
            assert pure_fn(25) == 25
            assert hybrid_fn(25) == 25
        # Both runtimes recorded their own regions independently.
        pure_runtime.stats.reset()
        cruntime.stats.reset()
        pure_fn(5)
        hybrid_fn(5)
        assert len(pure_runtime.stats.snapshot()) == 1
        assert len(cruntime.stats.snapshot()) == 1

    def test_concurrent_external_threads_using_one_runtime(self):
        fn = transform(small_region, Mode.HYBRID)
        results = []
        lock = threading.Lock()

        def worker():
            value = fn(200)
            with lock:
                results.append(value)

        workers = [threading.Thread(target=worker) for _ in range(4)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert results == [200] * 4


class TestAsyncFunctions:
    def test_async_functions_transform_and_run(self, omp_compile):
        """An async def with directives works: the parallel region runs
        synchronously within the coroutine (the paper's external-thread
        rule covers event-loop threads as initial threads)."""
        import asyncio
        fn = omp_compile(
            "async def subject(n):\n"
            "    total = 0\n"
            "    with omp('parallel for reduction(+:total) "
            "num_threads(2)'):\n"
            "        for i in range(n):\n"
            "            total += 1\n"
            "    return total\n",
            "subject")
        assert asyncio.run(fn(37)) == 37
