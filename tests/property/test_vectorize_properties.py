"""Property tests: vectorized kernels compute exactly what the
interpreted loops compute, over randomized expressions and data."""

import ast

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.compiler.vectorize import KERNEL_HANDLE, VectorizePass
from repro.transform.context import TransformContext


def build_and_run(source: str, name: str, *args):
    """Return (interpreted result, vectorized result)."""
    plain: dict = {}
    exec(compile(source, "<plain>", "exec"), plain)
    interpreted = plain[name](*[_copy(a) for a in args])

    tree = ast.parse(source)
    ctx = TransformContext("__omp0__", set(), set())
    vectorizer = VectorizePass(ctx)
    node = vectorizer.run(tree.body[0])
    module = ast.Module(body=[node], type_ignores=[])
    ast.fix_missing_locations(module)
    from repro.compiler import kernels
    namespace = {KERNEL_HANDLE: kernels, "math": __import__("math")}
    exec(compile(module, "<vec>", "exec"), namespace)
    vectorized = namespace[name](*[_copy(a) for a in args])
    outcomes = [o for _l, o in vectorizer.report]
    return interpreted, vectorized, outcomes


def _copy(value):
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, list):
        return list(value)
    return value


@st.composite
def polynomial_bodies(draw):
    """Random straight-line numeric loop bodies over i and a scalar."""
    coefficient = draw(st.floats(-4, 4, allow_nan=False))
    offset = draw(st.floats(-4, 4, allow_nan=False))
    power = draw(st.integers(1, 3))
    divisor = draw(st.floats(0.5, 4, allow_nan=False))
    expr = (f"({coefficient!r} * i ** {power} + {offset!r}) "
            f"/ {divisor!r}")
    if draw(st.booleans()):
        expr = f"abs({expr})"
    if draw(st.booleans()):
        expr = f"({expr}) if i % 2 == 0 else -({expr})"
    return expr


class TestExpressionEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(expr=polynomial_bodies(), n=st.integers(0, 60))
    def test_sum_reduction_equivalence(self, expr, n):
        source = (
            "def f(n):\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            f"        total += {expr}\n"
            "    return total\n")
        interpreted, vectorized, outcomes = build_and_run(source, "f", n)
        assert "vectorized" in outcomes
        assert vectorized == pytest.approx(interpreted, rel=1e-9,
                                           abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(data=st.lists(st.floats(-100, 100, allow_nan=False),
                         min_size=1, max_size=50),
           scale=st.floats(-3, 3, allow_nan=False))
    def test_elementwise_store_equivalence(self, data, scale):
        source = (
            "def f(out, a, s: float, n):\n"
            "    for i in range(n):\n"
            "        out[i] = a[i] * s + i\n"
            "    return out\n")
        arr = np.array(data)
        interpreted, vectorized, outcomes = build_and_run(
            source, "f", np.zeros(len(data)), arr, scale, len(data))
        assert "vectorized" in outcomes
        np.testing.assert_allclose(vectorized, interpreted)

    @settings(max_examples=30, deadline=None)
    @given(data=st.lists(st.floats(-50, 50, allow_nan=False),
                         min_size=2, max_size=40))
    def test_min_max_equivalence(self, data):
        source = (
            "def f(a, n):\n"
            "    low: float = 1e30\n"
            "    high: float = -1e30\n"
            "    for i in range(n):\n"
            "        low = min(low, a[i])\n"
            "        high = max(high, a[i])\n"
            "    return low, high\n")
        arr = np.array(data)
        interpreted, vectorized, outcomes = build_and_run(
            source, "f", arr, len(data))
        assert "vectorized" in outcomes
        assert vectorized == interpreted

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(0, 40), start=st.integers(-20, 20),
           step=st.integers(1, 5))
    def test_strided_ranges(self, n, start, step):
        source = (
            "def f(start, stop, step):\n"
            "    total: int = 0\n"
            "    for i in range(start, stop, step):\n"
            "        total += i * i - i\n"
            "    return total\n")
        interpreted, vectorized, outcomes = build_and_run(
            source, "f", start, start + n, step)
        assert "vectorized" in outcomes
        assert vectorized == interpreted

    @settings(max_examples=25, deadline=None)
    @given(data=st.lists(st.floats(0.1, 100, allow_nan=False),
                         min_size=1, max_size=30))
    def test_math_sqrt_log_equivalence(self, data):
        source = (
            "import math\n"
            "def f(a, n):\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            "        total += math.sqrt(a[i]) + math.log(a[i])\n"
            "    return total\n")
        plain: dict = {}
        exec(compile(source, "<plain>", "exec"), plain)
        arr = np.array(data)
        interpreted = plain["f"](arr, len(data))

        tree = ast.parse(source)
        ctx = TransformContext("__omp0__", set(), set())
        vectorizer = VectorizePass(ctx)
        node = vectorizer.run(tree.body[1])
        module = ast.Module(body=[node], type_ignores=[])
        ast.fix_missing_locations(module)
        from repro.compiler import kernels
        namespace = {KERNEL_HANDLE: kernels}
        exec(compile(module, "<vec>", "exec"), namespace)
        assert namespace["f"](arr, len(data)) == pytest.approx(
            interpreted, rel=1e-12)
