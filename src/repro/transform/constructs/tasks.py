"""Lowering of the ``task`` directive.

Structurally identical to ``parallel`` (paper Section III-E): the task
body moves into an inner function so any team thread can run it, and the
generated call is ``__omp__.task_submit`` instead of ``parallel_run``.
Data sharing follows OMP4Py's rule (variables assigned in the body that
exist outside are shared via ``nonlocal`` — this is what makes the
paper's Fig. 4 Fibonacci work); ``firstprivate`` captures values at task
*creation* time through inner-function argument defaults, which is the
clause to use for loop variables captured by tasks.
"""

from __future__ import annotations

import ast

from repro.directives.model import Directive
from repro.transform import astutil, datasharing
from repro.transform.context import TransformContext


def handle_task(node: ast.With, directive: Directive,
                ctx: TransformContext) -> list[ast.stmt]:
    from repro.transform.rewriter import transform_statements

    body = node.body
    astutil.check_no_escape(body, directive.source)
    ds = datasharing.classify(body, directive, ctx)

    fn_name = ctx.symbols.fresh("task")
    generated_locals = set(ds.privates) | set(ds.firstprivates)
    ctx.push_scope(generated_locals, body)
    try:
        with ctx.enter_construct("task"):
            new_body = transform_statements(body, ctx)
    finally:
        ctx.pop_scope()

    inner: list[ast.stmt] = []
    inner.extend(datasharing.sharing_declarations(ds))
    inner.extend(datasharing.sentinel_inits(ds, ctx))
    inner.extend(new_body)
    if not inner:
        inner.append(ast.Pass())
    fndef = ast.FunctionDef(
        name=fn_name, args=datasharing.firstprivate_params(ds),
        body=inner, decorator_list=[], returns=None)

    keywords: list[tuple[str, ast.expr]] = []
    if_clause = directive.clause("if")
    if if_clause is not None:
        keywords.append(("if_", astutil.parse_expression(
            if_clause.expr, directive.source)))
    depends_in: list[str] = []
    depends_out: list[str] = []
    for clause in directive.all_clauses("depend"):
        bucket = depends_in if clause.op == "in" else depends_out
        bucket.extend(clause.vars)
    if depends_in:
        keywords.append(("depends_in", ast.Tuple(
            elts=[astutil.name_load(v) for v in depends_in],
            ctx=ast.Load())))
    if depends_out:
        keywords.append(("depends_out", ast.Tuple(
            elts=[astutil.name_load(v) for v in depends_out],
            ctx=ast.Load())))
    # The untied clause is accepted and ignored: Python threads cannot
    # migrate a suspended frame, so every task is tied (documented).
    submit = astutil.rt_call_stmt(
        ctx.rt_name, "task_submit", [astutil.name_load(fn_name)], keywords)
    result = [fndef, submit]
    for stmt in result:
        astutil.fix_locations(stmt, node)
    return result
