"""Exporters: Chrome trace-event JSON, Prometheus text, JSON report.

Three output formats, one per consumer:

* :func:`chrome_trace` — the Trace Event Format consumed by Perfetto
  and ``chrome://tracing``: parallel regions, barriers, and tasks as
  duration (``B``/``E``) events, chunk dispatches and task submissions
  as instant events, per-thread name metadata.
* :func:`prometheus_text` — the text exposition format for a
  :class:`~repro.ompt.metrics.MetricsRegistry` snapshot.
* :func:`metrics_report` — the structured JSON block merged into the
  benchmark harness rows and written by ``python -m repro.profile``.
"""

from __future__ import annotations

import json

#: Phase codes accepted by the trace-event schema validator.
_KNOWN_PHASES = frozenset("BEXiIMCbensftPNOD")

#: Trace event kinds that open/close a duration slice, per thread.
_DURATION_NAMES = {
    "region_fork": ("B", "parallel region"),
    "region_join": ("E", "parallel region"),
    "barrier_enter": ("B", "barrier"),
    "barrier_release": ("E", "barrier"),
    "task_start": ("B", "task"),
    "task_finish": ("E", "task"),
}


def chrome_trace_events(events, *, pid: int = 1) -> list[dict]:
    """Convert :class:`~repro.runtime.trace.TraceEvent` records to
    trace-event dicts (timestamps in µs, rebased to the first event)."""
    if not events:
        return []
    base = min(event.timestamp for event in events)
    rows: list[dict] = []
    threads = sorted({event.thread for event in events})
    for thread in threads:
        rows.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": thread, "ts": 0,
                     "args": {"name": f"omp thread {thread}"}})
    for event in events:
        ts = (event.timestamp - base) * 1e6
        duration = _DURATION_NAMES.get(event.kind)
        if duration is not None:
            phase, name = duration
            row = {"name": name, "cat": "omp", "ph": phase, "ts": ts,
                   "pid": pid, "tid": event.thread}
            if event.kind == "region_fork" and event.detail:
                row["args"] = {"team_size": event.detail[0]}
            elif event.kind == "barrier_release" and event.detail:
                row["args"] = {"wait_s": event.detail[0]}
            elif event.kind in ("task_start", "task_finish") \
                    and event.detail:
                row["args"] = {"task": event.detail[0]}
            rows.append(row)
        elif event.kind == "chunk":
            low, high = (event.detail[:2] if len(event.detail) >= 2
                         else (0, 0))
            rows.append({"name": "chunk", "cat": "omp", "ph": "i",
                         "s": "t", "ts": ts, "pid": pid,
                         "tid": event.thread,
                         "args": {"low": low, "high": high}})
        else:  # task_submit and any future instant kinds
            row = {"name": event.kind, "cat": "omp", "ph": "i", "s": "t",
                   "ts": ts, "pid": pid, "tid": event.thread}
            if event.detail:
                row["args"] = {"detail": list(event.detail)}
            rows.append(row)
    return rows


def chrome_trace(events, *, dropped: int = 0, metadata=None) -> dict:
    """Full Perfetto-loadable trace document (JSON object format).

    ``otherData`` carries enough to correlate the trace with the world
    outside the process: the execution backend, the number of distinct
    threads observed, and — when the event log has an epoch anchor
    (:attr:`repro.runtime.trace.TraceLog.anchor`) — the monotonic→unix
    offset plus the absolute start time, so trace timestamps can be
    lined up against wall-clock logs and Prometheus scrapes.
    """
    other = {"producer": "repro.ompt",
             "events": len(events),
             "dropped_events": dropped,
             "threads_observed":
                 len({event.thread for event in events})}
    from repro.runtime.gilstate import current_backend
    other["backend"] = current_backend().value
    anchor = getattr(events, "anchor", None)
    if anchor is not None:
        unix_s, monotonic_s = anchor
        offset = unix_s - monotonic_s
        other["monotonic_to_unix_offset_s"] = offset
        if events:
            base = min(event.timestamp for event in events)
            other["epoch_start_unix_s"] = base + offset
    payload = {
        "traceEvents": chrome_trace_events(events),
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    if metadata:
        payload["otherData"].update(metadata)
    return payload


def write_chrome_trace(path, events, *, dropped: int = 0,
                       metadata=None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(events, dropped=dropped,
                               metadata=metadata), handle)


def validate_chrome_trace(payload) -> list[str]:
    """Schema-check a trace document; returns problems ([] == valid).

    Checks the JSON object format: a ``traceEvents`` list whose rows
    carry ``name``/``ph``/``ts``/``pid``/``tid`` with sane types, known
    phase codes, scoped instant events, and per-thread ``B``/``E``
    nesting discipline.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    stacks: dict[tuple, list[str]] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for field, types in (("name", str), ("ph", str),
                             ("ts", (int, float)), ("pid", int),
                             ("tid", int)):
            if not isinstance(event.get(field), types):
                problems.append(f"{where}: missing/invalid {field!r}")
        phase = event.get("ph")
        if isinstance(phase, str) and phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
        if isinstance(event.get("ts"), (int, float)) and event["ts"] < 0:
            problems.append(f"{where}: negative timestamp")
        if phase == "i" and event.get("s") not in (None, "g", "p", "t"):
            problems.append(f"{where}: invalid instant scope "
                            f"{event.get('s')!r}")
        key = (event.get("pid"), event.get("tid"))
        if phase == "B":
            stacks.setdefault(key, []).append(event.get("name", ""))
        elif phase == "E":
            stack = stacks.setdefault(key, [])
            if not stack:
                problems.append(f"{where}: E without matching B on "
                                f"pid/tid {key}")
            else:
                stack.pop()
    for key, stack in stacks.items():
        if stack:
            problems.append(f"unclosed B event(s) {stack!r} on "
                            f"pid/tid {key}")
    return problems


def merge_chrome_traces(payloads) -> dict:
    """Union per-rank trace documents into one timeline.

    Each input is a full trace document (typically the per-rank
    ``trace.rank<k>.json`` files :mod:`repro.ompt.auto` writes under
    MPI).  Ranks become processes: payload ``k`` keeps its events with
    ``pid`` remapped to ``k`` (or its recorded ``otherData.rank``) and
    gains a ``process_name`` metadata row.  When every payload carries
    an ``epoch_start_unix_s`` anchor, timestamps are shifted onto a
    common base (the earliest rank's start) so cross-rank ordering is
    real; anchorless payloads are merged unshifted with a note in
    ``otherData.unaligned_ranks``.
    """
    rows: list[dict] = []
    other: dict = {"producer": "repro.ompt.merge",
                   "ranks": len(payloads), "unaligned_ranks": []}
    anchors = [payload.get("otherData", {}).get("epoch_start_unix_s")
               for payload in payloads]
    known = [anchor for anchor in anchors if anchor is not None]
    base = min(known) if known else None
    dropped = 0
    for number, payload in enumerate(payloads):
        data = payload.get("otherData", {})
        rank = data.get("rank", number)
        dropped += data.get("dropped_events", 0)
        shift_us = 0.0
        if base is not None and anchors[number] is not None:
            shift_us = (anchors[number] - base) * 1e6
        elif base is not None:
            other["unaligned_ranks"].append(rank)
        rows.append({"name": "process_name", "ph": "M", "pid": rank,
                     "tid": 0, "ts": 0,
                     "args": {"name": f"mpi rank {rank}"}})
        for event in payload.get("traceEvents", []):
            row = dict(event)
            row["pid"] = rank
            if row.get("ph") != "M":
                row["ts"] = row.get("ts", 0) + shift_us
            rows.append(row)
    other["events"] = len(rows)
    other["dropped_events"] = dropped
    if base is not None:
        other["epoch_start_unix_s"] = base
    backends = {payload.get("otherData", {}).get("backend")
                for payload in payloads}
    backends.discard(None)
    if len(backends) == 1:
        other["backend"] = backends.pop()
    return {"traceEvents": rows, "displayTimeUnit": "ms",
            "otherData": other}


# ---------------------------------------------------------------------------
# Prometheus text exposition


def _format_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for key in sorted(merged):
        value = str(merged[key]).replace("\\", r"\\").replace(
            '"', r'\"').replace("\n", r"\n")
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}"


def prometheus_text(registry) -> str:
    """Text exposition format dump of a metrics registry."""
    lines: list[str] = []
    seen: set[str] = set()
    for name, labels, instrument in registry.collect():
        if name not in seen:
            seen.add(name)
            help_text = registry.help_text(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {instrument.kind}")
        if instrument.kind == "histogram":
            cumulative = 0
            for bound, count in zip((*instrument.bounds, "+Inf"),
                                    instrument.buckets):
                cumulative += count
                lines.append(
                    f"{name}_bucket"
                    f"{_format_labels(labels, {'le': bound})} "
                    f"{cumulative}")
            lines.append(f"{name}_sum{_format_labels(labels)} "
                         f"{instrument.total}")
            lines.append(f"{name}_count{_format_labels(labels)} "
                         f"{instrument.count}")
        else:
            value = instrument.value
            rendered = repr(value) if isinstance(value, float) \
                and not value.is_integer() else str(int(value))
            lines.append(f"{name}{_format_labels(labels)} {rendered}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Structured JSON report


def _histogram_summary(registry, name: str) -> dict:
    families = [instr for metric, _labels, instr in registry.collect()
                if metric == name]
    count = sum(h.count for h in families)
    total = sum(h.total for h in families)
    maxima = [h.max for h in families if h.max is not None]
    return {"count": count, "sum_s": total,
            "mean_s": (total / count) if count else 0.0,
            "max_s": max(maxima) if maxima else None}


def _per_thread_counter(registry, name: str) -> dict:
    totals: dict[str, float] = {}
    for metric, labels, instrument in registry.collect():
        if metric == name and "thread" in labels:
            key = str(labels["thread"])
            totals[key] = totals.get(key, 0) + instrument.value
    return {thread: int(value) for thread, value in sorted(
        totals.items(), key=lambda item: int(item[0]))}


def metrics_report(registry=None, stats_records=(),
                   trace_summary=None) -> dict:
    """The structured observability block (profile CLI + bench rows).

    Always contains the acceptance-relevant keys — per-thread chunks
    and iterations, barrier wait, task latency, and per-region
    projection imbalance — even when a section is empty.
    """
    report: dict = {
        "per_thread": {"chunks": {}, "iterations": {}, "tasks": {}},
        "barrier_wait": {"count": 0, "sum_s": 0.0, "mean_s": 0.0,
                         "max_s": None, "per_thread_s": {}},
        "task_latency": {"count": 0, "sum_s": 0.0, "mean_s": 0.0,
                         "max_s": None},
        "task_duration": {"count": 0, "sum_s": 0.0, "mean_s": 0.0,
                          "max_s": None},
        "mutex": {"acquisitions": {}, "contended": {},
                  "wait_s": {}},
        "regions": [],
        "imbalance": {"max": None, "mean": None},
    }
    if registry is not None:
        report["per_thread"]["chunks"] = _per_thread_counter(
            registry, "omp_chunks_total")
        report["per_thread"]["iterations"] = _per_thread_counter(
            registry, "omp_iterations_total")
        report["per_thread"]["tasks"] = _per_thread_counter(
            registry, "omp_tasks_executed_total")
        report["task_latency"] = _histogram_summary(
            registry, "omp_task_latency_seconds")
        report["task_duration"] = _histogram_summary(
            registry, "omp_task_duration_seconds")
        barrier = _histogram_summary(registry, "omp_sync_wait_seconds")
        per_thread_wait: dict[str, float] = {}
        for metric, labels, instrument in registry.collect():
            if metric == "omp_sync_wait_seconds" and "thread" in labels:
                key = str(labels["thread"])
                per_thread_wait[key] = per_thread_wait.get(key, 0.0) \
                    + instrument.total
        barrier["per_thread_s"] = dict(sorted(
            per_thread_wait.items(), key=lambda item: int(item[0])))
        report["barrier_wait"] = barrier
        for metric, labels, instrument in registry.collect():
            kind = labels.get("kind")
            if kind is None:
                continue
            if metric == "omp_mutex_acquisitions_total":
                report["mutex"]["acquisitions"][kind] = int(
                    instrument.value)
            elif metric == "omp_mutex_contended_total":
                report["mutex"]["contended"][kind] = int(instrument.value)
            elif metric == "omp_mutex_wait_seconds":
                report["mutex"]["wait_s"][kind] = instrument.total
        report["metrics"] = registry.as_dict()
    if trace_summary is not None:
        per_thread = report["per_thread"]
        if not per_thread["chunks"]:
            per_thread["chunks"] = {
                str(thread): count for thread, count
                in sorted(trace_summary.chunks_per_thread().items())}
        if not per_thread["iterations"]:
            per_thread["iterations"] = {
                str(thread): count for thread, count
                in sorted(trace_summary.iterations_per_thread().items())}
        if not per_thread["tasks"]:
            per_thread["tasks"] = {
                str(thread): count for thread, count
                in sorted(trace_summary.task_executors().items())}
        report["trace"] = {"events": len(trace_summary.events),
                           "dropped": trace_summary.dropped}
    records = list(stats_records)
    if records:
        report["regions"] = [
            {"size": record.size, "sum_cpu_s": record.sum_cpu,
             "max_cpu_s": record.max_cpu,
             "imbalance": record.imbalance}
            for record in records]
        imbalances = [record.imbalance for record in records]
        report["imbalance"] = {
            "max": max(imbalances),
            "mean": sum(imbalances) / len(imbalances)}
    return report
