"""The sampler core: a daemon thread over ``sys._current_frames()``.

Two kinds of state meet here:

* **Directive stacks** — the runtime's instrumented sites
  (``parallel_run`` members, ``for_init``/``for_end``, explicit task
  execution) push and pop ``<omp kind @ file:line>`` markers on a
  per-thread stack via :meth:`Sampler.region_enter` /
  :meth:`Sampler.region_exit` / the loop variants.  Each thread only
  ever writes its own stack, so the hot-path cost is an attribute read,
  a list append, and a truncate — no locks.  Region exit truncates to a
  depth marker captured at entry, so an exception that skips an inner
  ``for_end`` can never leak markers past its region.

* **Samples** — the sampler thread wakes every ``interval`` seconds,
  snapshots every thread's frame, classifies it as ``cpu`` (running
  user or generated code), ``wait`` (its innermost diagnostics
  :class:`~repro.diagnostics.state.BlockRecord` has ``sleeping`` set),
  and folds the stack: runtime-internal and stdlib frames are dropped,
  generated ``<omp4py:...>`` frames are resolved to user coordinates
  through the origin registry, and the thread's directive markers are
  spliced between the user's calling frames and the frames executing
  inside the region.

The reads on the sampling side are deliberately racy (frame objects,
directive stacks and blocking records can mutate mid-walk); a torn
read mislabels at most one sample, which aggregation absorbs.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter, deque

from repro.diagnostics.origin import resolve

#: The installed package root (``.../repro``): frames inside it are
#: runtime internals, never user code a sample should be charged to.
_PACKAGE_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: The stdlib directory (``threading.__file__``'s home): bootstrap and
#: ``Event.wait`` frames are infrastructure, not user code.
_STDLIB_DIR = os.path.dirname(os.path.abspath(threading.__file__))
_GENERATED_PREFIX = "<omp4py:"

#: Thread-name prefixes the sampler never samples (its own thread, the
#: watchdog, the live metrics server).
_SKIP_PREFIXES = ("omp-sampler", "omp-watchdog", "omp4py-metrics-server")

#: Default sampling interval: 5 ms (200 Hz).
DEFAULT_INTERVAL = 0.005

#: Sample states.
STATES = ("cpu", "wait")


def _frame_label(filename: str, lineno: int, func: str) -> str:
    """One folded-stack frame: ``func (file:line)`` with the origin
    mapping applied and path noise trimmed."""
    resolved_file, resolved_line = resolve(filename, lineno)
    return (f"{func} ({os.path.basename(resolved_file)}:"
            f"{resolved_line})")


def directive_label(kind: str, site) -> str:
    """The synthetic directive frame: ``<omp kind @ file:line>``."""
    if not site or not site[0]:
        return f"<omp {kind}>"
    resolved_file, resolved_line = resolve(site[0], site[1])
    return (f"<omp {kind} @ {os.path.basename(resolved_file)}:"
            f"{resolved_line}>")


class FoldedStore:
    """Aggregated samples: folded stacks, per-directive tallies, and
    the per-directive hot-frame counters the explainer quotes.

    All writes come from the single sampler thread; readers (the
    ``/profile`` route, the doctor, exporters) read racily and only see
    slightly stale counts.
    """

    def __init__(self, max_stacks: int = 20_000,
                 max_samples: int = 200_000):
        #: (stack tuple, state) -> sample count.
        self.stacks: dict[tuple, int] = {}
        #: directive label -> {"self", "total", "wait"} sample counts.
        #: ``self`` counts on-CPU samples whose *innermost* directive
        #: this is; ``total`` counts on-CPU samples anywhere under it.
        self.directives: dict[str, dict[str, int]] = {}
        #: directive label -> Counter of innermost on-CPU frame labels.
        self.hot_frames: dict[str, Counter] = {}
        #: Raw timeline samples ``(t_rel_s, thread_key, state,
        #: stack tuple)`` for the Chrome-trace exporter, bounded.
        self.samples: list[tuple] = []
        self.max_stacks = max_stacks
        self.max_samples = max_samples
        self.dropped_stacks = 0
        self.dropped_samples = 0
        self.by_state: Counter = Counter()
        self.total = 0

    def add(self, directives: tuple, stack: tuple, state: str,
            t_rel: float, thread_key: int) -> None:
        """Record one sample.  ``stack`` is the fully composed folded
        stack (caller frames, then the ``directives`` markers, then the
        frames executing inside the innermost region)."""
        self.total += 1
        self.by_state[state] += 1
        key = (stack, state)
        count = self.stacks.get(key)
        if count is not None:
            self.stacks[key] = count + 1
        elif len(self.stacks) < self.max_stacks:
            self.stacks[key] = 1
        else:
            self.dropped_stacks += 1
        if directives:
            innermost = directives[-1]
            for label in directives:
                entry = self.directives.get(label)
                if entry is None:
                    entry = {"self": 0, "total": 0, "wait": 0}
                    self.directives[label] = entry
                if state == "cpu":
                    entry["total"] += 1
                else:
                    entry["wait"] += 1
            if state == "cpu":
                self.directives[innermost]["self"] += 1
                leaf = stack[-1] if stack else innermost
                hot = self.hot_frames.get(innermost)
                if hot is None:
                    hot = Counter()
                    self.hot_frames[innermost] = hot
                hot[leaf] += 1
        if len(self.samples) < self.max_samples:
            self.samples.append((t_rel, thread_key, state, stack))
        else:
            self.dropped_samples += 1

    def top_stacks(self, limit: int = 20) -> list[dict]:
        ranked = sorted(self.stacks.items(), key=lambda item: item[1],
                        reverse=True)
        return [{"stack": list(stack), "state": state, "count": count}
                for (stack, state), count in ranked[:limit]]

    def directive_summary(self, interval: float) -> dict[str, dict]:
        """Per-directive tallies with seconds attributed at ``count ×
        interval`` (the standard sampling estimator)."""
        summary = {}
        for label, entry in self.directives.items():
            summary[label] = {
                "self": entry["self"],
                "total": entry["total"],
                "wait": entry["wait"],
                "self_s": entry["self"] * interval,
                "total_s": entry["total"] * interval,
                "wait_s": entry["wait"] * interval,
            }
        return summary

    def hottest_frames(self, label: str, limit: int = 3) -> list[dict]:
        hot = self.hot_frames.get(label)
        if not hot:
            return []
        return [{"frame": frame, "count": count}
                for frame, count in hot.most_common(limit)]


class Sampler:
    """One runtime's sampling profiler.

    ``start()`` arms ``runtime.sampler`` (making the runtime's
    instrumented sites maintain directive stacks) and spawns the daemon
    sampling thread; ``stop()`` reverses both.  When the runtime has no
    :class:`~repro.diagnostics.state.DiagnosticsState`, ``start()``
    creates one — the blocking records are the on-CPU/waiting
    classifier — and ``stop()`` removes it again iff it still owns it.
    Both are idempotent.
    """

    def __init__(self, runtime, interval: float = DEFAULT_INTERVAL, *,
                 registry=None, recent: int = 8,
                 max_stacks: int = 20_000, max_samples: int = 200_000):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.runtime = runtime
        self.interval = interval
        #: Optional :class:`~repro.ompt.metrics.MetricsRegistry` fed
        #: ``omp_sample_*`` series while sampling runs.
        self.registry = registry
        self.store = FoldedStore(max_stacks=max_stacks,
                                 max_samples=max_samples)
        #: thread ident -> directive-marker stack [(kind, label), ...].
        self._active: dict[int, list] = {}
        #: thread ident -> deque of the last N folded-stack strings —
        #: the doctor's "what was the stuck thread executing" evidence.
        self._recent: dict[int, deque] = {}
        self._recent_limit = recent
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._created_diag = None
        #: ``(time.time(), time.perf_counter())`` at ``start()`` — the
        #: same epoch anchor the tracer records, for cross-run merging.
        self.anchor: tuple[float, float] | None = None
        self.ticks = 0

    # -- directive tracking (runtime hot paths; owner-thread only) ------

    def region_enter(self, kind: str, site) -> int:
        """Push a directive marker; returns the pre-push depth so the
        matching :meth:`region_exit` can truncate leaks away."""
        ident = threading.get_ident()
        stack = self._active.get(ident)
        if stack is None:
            stack = []
            self._active[ident] = stack
        mark = len(stack)
        stack.append((kind, directive_label(kind, site)))
        return mark

    def region_exit(self, mark: int) -> None:
        stack = self._active.get(threading.get_ident())
        if stack is not None:
            del stack[mark:]

    def loop_enter(self, site) -> None:
        self.region_enter("for", site)

    def loop_exit(self) -> None:
        """Pop the innermost ``for`` marker (worksharing loops end in
        their own ``for_end`` call, not a scoped block)."""
        stack = self._active.get(threading.get_ident())
        if not stack:
            return
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == "for":
                del stack[index:]
                return

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "Sampler":
        if self._thread is not None:
            return self
        if self.runtime.diag is None:
            from repro.diagnostics.state import DiagnosticsState
            self._created_diag = DiagnosticsState()
            self.runtime.diag = self._created_diag
        self.runtime.sampler = self
        self.anchor = (time.time(), time.perf_counter())
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run,
            name=f"omp-sampler-{self.runtime.name}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "Sampler":
        if self._thread is None:
            return self
        if getattr(self.runtime, "sampler", None) is self:
            self.runtime.sampler = None
        self._stop.set()
        thread = self._thread
        self._thread = None
        thread.join(timeout=max(1.0, self.interval * 10))
        if self._created_diag is not None \
                and self.runtime.diag is self._created_diag:
            self.runtime.diag = None
        self._created_diag = None
        return self

    # -- the sampling loop ----------------------------------------------

    def _run(self) -> None:
        base = time.perf_counter()
        while not self._stop.wait(self.interval):
            try:
                self._sample_once(time.perf_counter() - base)
            except Exception:  # noqa: BLE001 - never kill the workload
                pass

    def _sample_once(self, t_rel: float) -> None:
        self.ticks += 1
        frames = sys._current_frames()
        names = {thread.ident: thread.name
                 for thread in threading.enumerate()}
        own = threading.get_ident()
        diag = self.runtime.diag
        registry = self.registry
        for ident, frame in frames.items():
            if ident == own:
                continue
            name = names.get(ident, "")
            if name.startswith(_SKIP_PREFIXES):
                continue
            state = "cpu"
            if diag is not None:
                records = diag.blocked.get(ident)
                if records:
                    try:
                        if records[-1].sleeping:
                            state = "wait"
                    except IndexError:  # racy pop mid-read
                        pass
            directives = tuple(
                label for _kind, label in
                tuple(self._active.get(ident, ())))
            stack = tuple(self._fold(frame, directives))
            if not stack:
                continue  # parked infrastructure: nothing to charge
            self.store.add(directives, stack, state, t_rel, ident)
            recent = self._recent.get(ident)
            if recent is None:
                recent = deque(maxlen=self._recent_limit)
                self._recent[ident] = recent
            recent.append(f"[{state}] " + ";".join(stack))
            if registry is not None:
                registry.counter(
                    "omp_samples_total",
                    "Profiler samples taken, by classified state",
                    state=state).inc()
        if registry is not None and self.store.directives:
            # Re-publish the per-directive estimator gauges (cheap:
            # a handful of directives per workload).
            for label, entry in list(self.store.directives.items()):
                registry.gauge(
                    "omp_sample_self_seconds",
                    "Estimated on-CPU seconds with this directive "
                    "innermost (samples × interval)",
                    directive=label).set(entry["self"] * self.interval)
                registry.gauge(
                    "omp_sample_total_seconds",
                    "Estimated on-CPU seconds anywhere under this "
                    "directive (samples × interval)",
                    directive=label).set(entry["total"] * self.interval)

    def _fold(self, frame, directives: tuple) -> list[str]:
        """Fold one thread's frame chain into stack labels, outermost
        first: user frames outside the runtime, then the directive
        markers, then the frames executing inside the region."""
        chain = []
        hops = 0
        while frame is not None and hops < 128:
            chain.append(frame)
            frame = frame.f_back
            hops += 1
        chain.reverse()  # outermost first

        def is_runtime(code_filename: str) -> bool:
            return (code_filename.startswith(_PACKAGE_DIR)
                    and not code_filename.startswith(_GENERATED_PREFIX))

        def is_noise(code_filename: str) -> bool:
            return (code_filename.startswith(_STDLIB_DIR)
                    or code_filename.startswith("<frozen"))

        first_runtime = None
        last_runtime = None
        for index, entry in enumerate(chain):
            if is_runtime(entry.f_code.co_filename):
                if first_runtime is None:
                    first_runtime = index
                last_runtime = index
        if first_runtime is None:
            prefix, suffix = chain, []
        else:
            prefix = chain[:first_runtime]
            suffix = chain[last_runtime + 1:]

        labels: list[str] = []
        for entry in prefix:
            code = entry.f_code
            if is_noise(code.co_filename):
                continue
            labels.append(_frame_label(code.co_filename, entry.f_lineno,
                                       code.co_qualname))
        labels.extend(directives)
        for entry in suffix:
            code = entry.f_code
            if is_noise(code.co_filename):
                continue
            labels.append(_frame_label(code.co_filename, entry.f_lineno,
                                       code.co_qualname))
        return labels

    # -- reporting -------------------------------------------------------

    def status(self, recent: int = 5) -> dict:
        """Compact status block for watchdog/doctor reports."""
        names = {thread.ident: thread.name
                 for thread in threading.enumerate()}
        return {
            "armed": self.running,
            "interval_s": self.interval,
            "hz": round(1.0 / self.interval, 3),
            "ticks": self.ticks,
            "samples": self.store.total,
            "by_state": dict(self.store.by_state),
            "recent_stacks": {
                f"{names.get(ident, '?')} (ident {ident})":
                    list(stacks)[-recent:]
                for ident, stacks in sorted(self._recent.items())},
        }

    def report(self) -> dict:
        """Full profile payload (the ``/profile`` route body)."""
        payload = self.status()
        payload["directives"] = self.store.directive_summary(
            self.interval)
        payload["hot_frames"] = {
            label: self.store.hottest_frames(label)
            for label in self.store.directives}
        payload["top_stacks"] = self.store.top_stacks()
        payload["dropped_stacks"] = self.store.dropped_stacks
        payload["dropped_samples"] = self.store.dropped_samples
        return payload
