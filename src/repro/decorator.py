"""The ``@omp`` decorator driver: source → AST → transform → exec.

As described in the paper (Section III-A): the decorator extracts the
target's source with :mod:`inspect`, builds an AST, processes every
directive, strips the decorator (so the result is not reprocessed),
compiles the modified tree, and executes it so the transformed object
replaces the original.
"""

from __future__ import annotations

import ast
import hashlib
import inspect
import itertools
import os
import sys
import textwrap

from repro.errors import OmpTransformError
from repro.modes import Mode, default_mode
from repro.transform import transform_function_def
from repro.transform.context import TransformContext

_HANDLE_COUNTER = itertools.count()


def runtime_for(mode: Mode):
    """The runtime instance a mode binds as ``__omp__``.

    When the ``OMP4PY_TRACE`` / ``OMP4PY_METRICS`` /
    ``OMP4PY_METRICS_PORT`` environment knobs are set, the returned
    runtime is auto-instrumented on the way out
    (see :mod:`repro.ompt.auto`); likewise ``OMP4PY_FLIGHT`` /
    ``OMP4PY_WATCHDOG`` arm the hang diagnostics
    (:mod:`repro.diagnostics.auto`) and ``OMP4PY_PROFILE`` the
    sampling profiler (:mod:`repro.sampling.auto`).  Unset knobs cost
    a few environment reads, nothing more.
    """
    if mode is Mode.PURE:
        from repro.runtime import pure_runtime
        runtime = pure_runtime
    else:
        from repro.cruntime import cruntime
        runtime = cruntime
    from repro import env
    if env.trace_spec() is not None or env.metrics_spec() is not None \
            or env.metrics_port() is not None:
        from repro.ompt.auto import auto_instrument
        auto_instrument(runtime)
    if env.flight_spec() is not None or env.watchdog_spec() is not None:
        from repro.diagnostics.auto import auto_diagnose
        auto_diagnose(runtime)
    if env.profile_spec() is not None:
        from repro.sampling.auto import auto_sample
        auto_sample(runtime)
    return runtime


def _is_omp_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr == "omp"
    return isinstance(target, ast.Name) and target.id == "omp"


def _collect_identifiers(tree: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.arg):
            names.add(node.arg)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
    return names


def _get_source_tree(target) -> ast.AST:
    try:
        source = textwrap.dedent(inspect.getsource(target))
    except (TypeError, OSError) as error:
        raise OmpTransformError(
            f"cannot retrieve the source of {target!r}; the omp decorator "
            f"needs file-backed source code") from error
    return ast.parse(source)


def transform(target, mode: Mode | str | int | None = None, *,
              dump: bool = False, debug: bool = False,
              live_globals: bool = False, cache: str | None = None,
              force: bool = False, options: dict | None = None,
              lint: str | None = None):
    """Transform a function or class for the given execution mode.

    ``live_globals=True`` executes the result in the target's own module
    namespace (decorator behaviour); otherwise a snapshot namespace is
    used so several mode variants of one function can coexist.

    ``cache`` names a directory of generated sources, keyed by the
    original source text and mode: a hit skips the whole transformation
    (the paper's ``cache`` decorator option); ``force`` reprocesses and
    rewrites regardless.

    ``lint`` runs the static race/misuse detector (:mod:`repro.lint`)
    over the target first: ``"warn"`` turns findings into warnings,
    ``"strict"`` raises :class:`repro.errors.OmpLintError` on
    error-severity findings.
    """
    mode = Mode.parse(mode) if mode is not None else default_mode()
    if lint:
        from repro.lint import enforce
        enforce(target, lint)
    if inspect.isfunction(target):
        if target.__code__.co_freevars:
            raise OmpTransformError(
                f"{target.__qualname__} closes over "
                f"{target.__code__.co_freevars}; the omp decorator only "
                f"supports module-level functions and methods")
        globalns = target.__globals__
    elif inspect.isclass(target):
        globalns = sys.modules[target.__module__].__dict__
    else:
        raise OmpTransformError(
            f"omp can only decorate functions and classes, not {target!r}")

    if cache and not force:
        cached = _load_cache(cache, target, mode, globalns, live_globals)
        if cached is not None:
            return cached

    tree = _get_source_tree(target)
    node = tree.body[0]
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
        raise OmpTransformError(
            f"cannot transform {target!r}: its source is not a plain "
            f"def/class statement (lambdas are not supported)")
    node.decorator_list = []

    rt_name = f"__omp{next(_HANDLE_COUNTER)}__"
    ctx = TransformContext(
        rt_name=rt_name,
        module_globals=set(globalns),
        taken_names=_collect_identifiers(tree),
        filename=f"<omp4py:{getattr(target, '__qualname__', node.name)}>",
        module_name=getattr(target, "__module__", "__main__"))

    # The generated code object keeps the (dedented) original linenos,
    # so mapping a runtime frame back to the user's file only needs the
    # source file and the def's first line (see repro.diagnostics.origin).
    origin = None
    try:
        origin = (inspect.getsourcefile(target) or "<unknown>",
                  inspect.getsourcelines(target)[1])
    except (TypeError, OSError):  # pragma: no cover - source vanished
        pass
    if origin is not None:
        from repro.diagnostics.origin import register_origin
        register_origin(ctx.filename, *origin)

    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        transform_function_def(node, ctx)
    else:
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                transform_function_def(item, ctx)

    if mode.compiles_user_code:
        from repro.compiler import optimize
        node = optimize(node, ctx, typed=(mode is Mode.COMPILED_DT),
                        options=options or {}, debug=debug)

    module = ast.Module(body=[node], type_ignores=[])
    ast.fix_missing_locations(module)
    generated = ast.unparse(module)
    if dump:
        print(f"# --- omp4py generated code ({mode.value}) ---",
              file=sys.stderr)
        print(generated, file=sys.stderr)
    if cache:
        _write_cache(cache, target, mode, generated, force,
                     rt_name=rt_name,
                     needs_kernels=getattr(ctx, "needs_kernels", False))

    code = compile(module, filename=ctx.filename, mode="exec")
    namespace = globalns if live_globals else dict(globalns)
    namespace[rt_name] = runtime_for(mode)
    if getattr(ctx, "needs_kernels", False):
        from repro.compiler import kernels
        from repro.compiler.vectorize import KERNEL_HANDLE
        namespace[KERNEL_HANDLE] = kernels
    _MISSING = object()
    previous = namespace.get(node.name, _MISSING) if live_globals else None
    exec(code, namespace)  # noqa: S102 - the whole point of the decorator
    result = namespace[node.name]
    if live_globals:
        # Don't clobber the module binding here: the decorator statement
        # itself rebinds the name to our return value, and a plain
        # ``omp(fn)`` call must leave the original untouched.
        if previous is _MISSING:
            del namespace[node.name]
        else:
            namespace[node.name] = previous
    try:
        result.__omp_mode__ = mode
        result.__omp_source__ = generated
        result.__omp_origin__ = origin
    except (AttributeError, TypeError):  # pragma: no cover - exotic targets
        pass
    return result


def _cache_path(cache_dir: str, target, mode: Mode) -> str:
    """Key the cache on the original source, so edits invalidate."""
    try:
        source = inspect.getsource(target)
    except (TypeError, OSError):
        source = repr(target)
    digest = hashlib.sha256(
        f"{getattr(target, '__qualname__', '?')}:{mode.value}:"
        f"{source}".encode()).hexdigest()[:16]
    return os.path.join(cache_dir, f"omp4py_{digest}.py")


def _write_cache(cache_dir: str, target, mode: Mode, generated: str,
                 force: bool, *, rt_name: str,
                 needs_kernels: bool) -> None:
    """Persist the generated source (the decorator's ``cache`` option).

    The header records what the loader must rebind: the runtime handle
    name baked into the generated code and whether the kernel namespace
    is referenced.
    """
    os.makedirs(cache_dir, exist_ok=True)
    path = _cache_path(cache_dir, target, mode)
    if force or not os.path.exists(path):
        header = (f"# omp4py-cache rt={rt_name} "
                  f"kernels={int(needs_kernels)} mode={mode.value}\n")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(header + generated)


def _load_cache(cache_dir: str, target, mode: Mode, globalns: dict,
                live_globals: bool):
    """Rebuild the transformed object from a cached generated source."""
    path = _cache_path(cache_dir, target, mode)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    header, _newline, body = text.partition("\n")
    try:
        fields = dict(part.split("=", 1) for part in header.split()
                      if "=" in part)
        rt_name = fields["rt"]
        code = compile(body, filename=path, mode="exec")
    except (KeyError, ValueError, SyntaxError):
        return None  # corrupted cache entry: fall through to retransform
    namespace = globalns if live_globals else dict(globalns)
    namespace[rt_name] = runtime_for(mode)
    if fields.get("kernels") == "1":
        from repro.compiler import kernels
        from repro.compiler.vectorize import KERNEL_HANDLE
        namespace[KERNEL_HANDLE] = kernels
    name = getattr(target, "__name__", None)
    _MISSING = object()
    previous = namespace.get(name, _MISSING) if live_globals else None
    exec(code, namespace)  # noqa: S102
    result = namespace[name]
    if live_globals:
        if previous is _MISSING:
            del namespace[name]
        else:
            namespace[name] = previous
    try:
        result.__omp_mode__ = mode
        result.__omp_source__ = body
        result.__omp_cached__ = True
    except (AttributeError, TypeError):  # pragma: no cover
        pass
    return result
