"""Transformation state: symbol generation, scope frames, loop stack."""

from __future__ import annotations

import ast
import dataclasses
import itertools

from repro.errors import OmpSyntaxError


class SymbolGen:
    """Fresh ``__omp_``-prefixed names with collision avoidance.

    As in the paper: internal symbols use the ``__omp_`` prefix plus a
    numeric suffix; existing identifiers in the source are excluded so
    generated names never collide with user names.
    """

    def __init__(self, taken: set[str]):
        self._taken = set(taken)
        self._counter = itertools.count()

    def fresh(self, base: str) -> str:
        while True:
            name = f"__omp_{base}_{next(self._counter)}"
            if name not in self._taken:
                self._taken.add(name)
                return name


@dataclasses.dataclass
class ScopeFrame:
    """One Python function scope the rewriter is generating into.

    ``params`` are names bound unconditionally (parameters, generated
    privates/accumulators); ``stmts`` is the scope's statement list, so
    binding queries can *exclude* a directive block's subtree — a name
    assigned only inside the block moves into the generated inner
    function and is not a binding of this scope afterwards.
    """

    params: set[str]
    stmts: list

    def bound(self, exclude_ids: frozenset[int] = frozenset()) -> set[str]:
        from repro.transform import scope
        return self.params | scope.assigned_names(self.stmts, exclude_ids)


@dataclasses.dataclass
class LoopFrame:
    """Worksharing-loop state needed by nested ``ordered`` regions."""

    bounds_name: str
    index_name: str
    has_ordered: bool
    collapsed: bool


class TransformContext:
    """All state threaded through one function's transformation."""

    def __init__(self, rt_name: str, module_globals: set[str],
                 taken_names: set[str], filename: str = "<omp4py>",
                 module_name: str = "__main__"):
        #: Identifier the generated code uses for the runtime handle.
        self.rt_name = rt_name
        self.module_globals = module_globals
        #: Qualifies threadprivate storage keys.
        self.module_name = module_name
        self.symbols = SymbolGen(taken_names | {rt_name})
        self.scopes: list[ScopeFrame] = []
        self.construct_stack: list[str] = []
        self.loop_stack: list[LoopFrame] = []
        #: threadprivate variable name -> storage key.
        self.threadprivate: dict[str, str] = {}
        self.filename = filename
        #: ``int``/``float`` annotations harvested for CompiledDT.
        self.annotations: dict[str, str] = {}

    # Scope management --------------------------------------------------

    def push_scope(self, params: set[str], stmts: list) -> ScopeFrame:
        frame = ScopeFrame(set(params), stmts)
        self.scopes.append(frame)
        return frame

    def pop_scope(self) -> None:
        self.scopes.pop()

    def bound_in_enclosing_function(
            self, name: str,
            exclude_ids: frozenset[int] = frozenset()) -> bool:
        """Is ``name`` a local of any enclosing function scope, not
        counting bindings inside the excluded subtrees?"""
        return any(name in frame.bound(exclude_ids)
                   for frame in self.scopes)

    # Construct nesting --------------------------------------------------

    def enter_construct(self, name: str):
        self.construct_stack.append(name)
        return _ConstructGuard(self)

    def innermost_construct(self) -> str | None:
        return self.construct_stack[-1] if self.construct_stack else None

    def require_not_inside(self, directive: str,
                           forbidden: tuple[str, ...]) -> None:
        for construct in self.construct_stack:
            if construct in forbidden:
                raise OmpSyntaxError(
                    f"directive may not be nested inside {construct!r}",
                    directive=directive)

    # Errors ---------------------------------------------------------------

    @staticmethod
    def error(message: str, directive: str,
              node: ast.AST | None = None) -> OmpSyntaxError:
        lineno = getattr(node, "lineno", None)
        return OmpSyntaxError(message, directive=directive, lineno=lineno)


class _ConstructGuard:
    def __init__(self, ctx: TransformContext):
        self._ctx = ctx

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._ctx.construct_stack.pop()
        return False
