"""Scaling explainer: critical path, contention, and live metrics.

``python -m repro.explain`` reconstructs the region/task/sync DAG from
an OMPT trace (:mod:`repro.explain.dag`), computes the critical path,
attributes lost parallelism to named causes at user source lines
(:mod:`repro.explain.bottlenecks`), and fits Amdahl/USL speedup models
over multi-thread runs (:mod:`repro.explain.model`).  The live side
(:mod:`repro.explain.live`) serves ``/metrics`` and ``/explain`` over
HTTP while a workload runs, armed via ``OMP4PY_METRICS_PORT``.
"""

from repro.explain.bottlenecks import Finding, classify
from repro.explain.dag import DagAnalysis, build_dag

__all__ = ["DagAnalysis", "Finding", "build_dag", "classify"]
