"""Transform-layer edge cases: error paths, nested definitions,
runtime binding of the API rewrite, and class decoration."""

import pytest

from repro import Mode, transform
from repro.errors import OmpSyntaxError


# --- subjects ----------------------------------------------------------

def with_as_binding(n):
    from repro import omp
    with omp("parallel") as handle:
        pass


def with_two_managers(n):
    from repro import omp
    import io
    with omp("parallel"), io.StringIO() as fh:
        pass


def omp_non_literal(n):
    from repro import omp
    directive = "parallel"
    with omp(directive):
        pass


def omp_extra_args(n):
    from repro import omp
    with omp("parallel", 4):
        pass


def copyin_without_threadprivate(n):
    from repro import omp
    x = 1
    with omp("parallel copyin(x)"):
        pass


def firstprivate_unknown_var(n):
    from repro import omp
    with omp("parallel firstprivate(mystery)"):
        pass


def declare_reduction_no_initializer(items):
    from repro import omp
    omp("declare reduction(weird: omp_out + omp_in)")


def threadprivate_local_var(n):
    from repro import omp
    local_only = 1
    omp("threadprivate(local_only)")


def directive_inside_nested_def(n):
    from repro import omp

    def inner(m):
        total = 0
        with omp("parallel for reduction(+:total) num_threads(2)"):
            for i in range(m):
                total += i
        return total

    return inner(n)


def api_rewrite_subject(n):
    from repro import omp, omp_get_num_threads, omp_in_parallel
    values = []
    with omp("parallel num_threads(2)"):
        with omp("critical"):
            values.append((omp_get_num_threads(), omp_in_parallel()))
    return values


def empty_parallel_block(n):
    from repro import omp
    with omp("parallel num_threads(2)"):
        pass
    return "done"


def deeply_nested_directives(n):
    from repro import omp
    log = []
    with omp("parallel num_threads(2)"):
        with omp("single"):
            for _repeat in range(2):
                with omp("task"):
                    with omp("critical"):
                        log.append("leaf")
            omp("taskwait")
    return log


def directive_under_control_flow(n, enabled):
    from repro import omp
    total = 0
    if enabled:
        with omp("parallel for reduction(+:total) num_threads(2)"):
            for i in range(n):
                total += 1
    else:
        try:
            with omp("parallel for reduction(+:total) num_threads(2)"):
                for i in range(n):
                    total += 2
        finally:
            total += 100
    return total


class TestErrorPaths:
    def test_as_binding_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="as"):
            transform(with_as_binding, runtime_mode)

    def test_two_context_managers_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="share"):
            transform(with_two_managers, runtime_mode)

    def test_non_literal_directive_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="string literal"):
            transform(omp_non_literal, runtime_mode)

    def test_extra_arguments_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="exactly one"):
            transform(omp_extra_args, runtime_mode)

    def test_copyin_requires_threadprivate(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="threadprivate"):
            transform(copyin_without_threadprivate, runtime_mode)

    def test_firstprivate_requires_outer_binding(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="not defined"):
            transform(firstprivate_unknown_var, runtime_mode)

    def test_declare_reduction_requires_initializer(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="initializer"):
            transform(declare_reduction_no_initializer, runtime_mode)

    def test_threadprivate_must_be_module_level(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="module-level"):
            transform(threadprivate_local_var, runtime_mode)


class TestStructuralCases:
    def test_directive_in_nested_function(self, runtime_mode):
        fn = transform(directive_inside_nested_def, runtime_mode)
        assert fn(10) == sum(range(10))

    def test_api_calls_rebound_to_bound_runtime(self, runtime_mode):
        fn = transform(api_rewrite_subject, runtime_mode)
        values = fn(0)
        assert values == [(2, True), (2, True)]

    def test_api_rebinding_targets_correct_runtime(self):
        """Pure-mode code must see the pure runtime's team, even if the
        module-level API points at the cruntime."""
        from repro.runtime import pure_runtime
        fn = transform(api_rewrite_subject, Mode.PURE)
        pure_runtime.stats.reset()
        assert fn(0) == [(2, True), (2, True)]
        assert len(pure_runtime.stats.snapshot()) == 1

    def test_empty_parallel_block(self, runtime_mode):
        fn = transform(empty_parallel_block, runtime_mode)
        assert fn(0) == "done"

    def test_deeply_nested_directives(self, runtime_mode):
        fn = transform(deeply_nested_directives, runtime_mode)
        assert fn(0) == ["leaf", "leaf"]

    def test_directives_under_control_flow(self, runtime_mode):
        fn = transform(directive_under_control_flow, runtime_mode)
        assert fn(5, True) == 5
        assert fn(5, False) == 110


@pytest.mark.usefixtures("runtime_mode")
class TestClassDecoration:
    def test_methods_are_transformed(self, omp_compile, runtime_mode):
        source = '''
class Accumulator:
    """Counts with directives inside methods."""

    def __init__(self, bias):
        self.bias = bias

    def total(self, n, threads):
        acc = 0
        with omp("parallel for reduction(+:acc) num_threads(threads)"):
            for i in range(n):
                acc += i + self.bias
        return acc

    @staticmethod
    def double(x):
        return x * 2
'''
        cls = omp_compile(source, "Accumulator", runtime_mode)
        instance = cls(2)
        assert instance.total(10, 3) == sum(i + 2 for i in range(10))
        assert cls.double(5) == 10
        assert cls.__doc__ == "Counts with directives inside methods."
