"""Pass manager for the native-compilation simulation."""

from __future__ import annotations

import ast

from repro.transform.context import TransformContext


def optimize(node: ast.stmt, ctx: TransformContext, *, typed: bool,
             options: dict, debug: bool = False) -> ast.stmt:
    """Run the optimization pipeline over a transformed definition."""
    from repro.compiler.passes import fold, localize
    from repro.compiler.vectorize import VectorizePass

    if typed:
        vectorizer = VectorizePass(ctx, options=options, debug=debug)
        node = vectorizer.run(node)
    node = fold.FoldConstants().visit(node)
    node = localize.LocalizeGlobals(ctx).run(node)
    ast.fix_missing_locations(node)
    return node
