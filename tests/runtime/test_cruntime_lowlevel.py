"""Tests specific to the native-runtime simulation's primitives."""

import threading

import pytest

from repro.cruntime.lowlevel import CEvent, NativeLowLevel
from repro.runtime.lowlevel import PureLowLevel
from repro.runtime.tasking import TaskNode, TaskQueue


class TestCEvent:
    def test_initially_clear(self):
        assert not CEvent().is_set()

    def test_set_and_wait(self):
        event = CEvent()
        event.set()
        assert event.is_set()
        assert event.wait(timeout=0.01)

    def test_clear(self):
        event = CEvent()
        event.set()
        event.clear()
        assert not event.is_set()
        assert not event.wait(timeout=0.01)

    def test_wait_wakes_on_set(self):
        event = CEvent()
        results = []

        def waiter():
            results.append(event.wait(timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        event.set()
        thread.join(timeout=5.0)
        assert results == [True]

    def test_double_set_is_idempotent(self):
        event = CEvent()
        event.set()
        event.set()
        assert event.is_set()


class TestQueueAppendImplementations:
    """The two linking protocols must produce identical queues."""

    @pytest.mark.parametrize("lowlevel", [PureLowLevel(),
                                          NativeLowLevel()],
                             ids=["mutex", "cas"])
    def test_sequential_append_order(self, lowlevel):
        queue = TaskQueue(lowlevel)
        nodes = [TaskNode(None, None, lowlevel) for _ in range(10)]
        for node in nodes:
            queue.append(node)
        walked = []
        current = queue.head.next
        while current is not None:
            walked.append(current)
            current = current.next
        assert walked == nodes

    @pytest.mark.parametrize("lowlevel", [PureLowLevel(),
                                          NativeLowLevel()],
                             ids=["mutex", "cas"])
    def test_concurrent_appends_lose_nothing(self, lowlevel):
        queue = TaskQueue(lowlevel)
        per_thread = 300
        threads = 6

        def producer():
            for _ in range(per_thread):
                queue.append(TaskNode(None, None, lowlevel))

        workers = [threading.Thread(target=producer)
                   for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        count = 0
        current = queue.head.next
        while current is not None:
            count += 1
            current = current.next
        assert count == per_thread * threads


class TestSlotCreation:
    @pytest.mark.parametrize("lowlevel", [PureLowLevel(),
                                          NativeLowLevel()],
                             ids=["mutex", "swap"])
    def test_single_winner_under_contention(self, lowlevel):
        table: dict = {}
        lock = lowlevel.make_mutex()
        created = []
        results = []
        results_lock = threading.Lock()

        def factory():
            slot = object()
            created.append(slot)
            return slot

        def contender():
            slot = lowlevel.slot_get_or_create(table, lock, "key",
                                               factory)
            with results_lock:
                results.append(slot)

        workers = [threading.Thread(target=contender) for _ in range(12)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(slot is results[0] for slot in results)
        assert table["key"] is results[0]
