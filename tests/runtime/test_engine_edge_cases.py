"""Edge cases of the runtime engine: sentinels, threadprivate storage,
collapse divisors, serialized regions, orphaned constructs."""

import threading

import pytest

from repro.cruntime import cruntime
from repro.errors import OmpRuntimeError
from repro.runtime import pure_runtime
from repro.runtime.engine import UNDEFINED


@pytest.fixture(params=["pure", "cruntime"])
def rt(request):
    return pure_runtime if request.param == "pure" else cruntime


class TestUndefinedSentinel:
    def test_truthiness_raises(self):
        with pytest.raises(OmpRuntimeError, match="uninitialized"):
            bool(UNDEFINED)

    def test_arithmetic_fails_loudly(self):
        with pytest.raises(TypeError):
            UNDEFINED + 1

    def test_exported_on_runtimes(self):
        assert pure_runtime.UNDEFINED is UNDEFINED
        assert cruntime.UNDEFINED is UNDEFINED


class TestCollapseDivisors:
    def test_two_level(self, rt):
        bounds = rt.for_bounds([0, 3, 1, 0, 5, 1])
        assert rt.collapse_divisors(bounds) == (5,)

    def test_three_level(self, rt):
        bounds = rt.for_bounds([0, 2, 1, 0, 3, 1, 0, 4, 1])
        assert rt.collapse_divisors(bounds) == (12, 4)

    def test_single_level_empty(self, rt):
        bounds = rt.for_bounds([0, 9, 1])
        assert rt.collapse_divisors(bounds) == ()


class TestThreadprivateStorage:
    def test_load_initializes_from_globals(self, rt):
        key = f"tp_test_{rt.name}_a"
        assert rt.tp_load(key, "value", {"value": 41}) == 41

    def test_store_overrides(self, rt):
        key = f"tp_test_{rt.name}_b"
        rt.tp_store(key, 10)
        assert rt.tp_load(key, "value", {}) == 10

    def test_missing_initial_value_raises(self, rt):
        with pytest.raises(OmpRuntimeError, match="no initial value"):
            rt.tp_load(f"tp_test_{rt.name}_c", "ghost", {})

    def test_values_are_per_thread(self, rt):
        key = f"tp_test_{rt.name}_d"
        rt.tp_store(key, "main")
        seen = {}

        def other():
            seen["other"] = rt.tp_load(key, "value", {"value": "fresh"})

        worker = threading.Thread(target=other)
        worker.start()
        worker.join()
        assert seen["other"] == "fresh"
        assert rt.tp_load(key, "value", {}) == "main"


class TestSerializedRegions:
    def test_worksharing_in_serial_region_runs_everything(self, rt):
        """An orphaned worksharing loop on the implicit serial team."""
        seen = []
        bounds = rt.for_bounds([0, 7, 1])
        rt.for_init(bounds, kind="dynamic", chunk=2, nowait=True)
        while rt.for_next(bounds):
            seen.extend(range(bounds[0], bounds[1]))
        assert seen == list(range(7))

    def test_single_in_serial_region(self, rt):
        state = rt.single_begin()
        assert state.selected
        rt.single_end(state, nowait=True)

    def test_barrier_in_serial_region_is_noop(self, rt):
        rt.barrier()  # must not hang

    def test_task_in_serial_region_completes_at_barrier(self, rt):
        done = []
        rt.task_submit(lambda: done.append(1))
        rt.barrier()
        assert done == [1]

    def test_taskwait_in_serial_region(self, rt):
        done = []
        rt.task_submit(lambda: done.append(1))
        rt.task_wait()
        assert done == [1]


class TestTeamSizeDecisions:
    def test_num_threads_argument_wins_over_icv(self, rt):
        old = rt.get_max_threads()
        rt.set_num_threads(2)
        sizes = []
        try:
            rt.parallel_run(lambda: sizes.append(rt.get_num_threads()),
                            num_threads=3)
        finally:
            rt.set_num_threads(old)
        assert sizes[0] == 3

    def test_icv_used_when_no_clause(self, rt):
        old = rt.get_max_threads()
        rt.set_num_threads(2)
        sizes = []
        try:
            rt.parallel_run(lambda: sizes.append(rt.get_num_threads()))
        finally:
            rt.set_num_threads(old)
        assert sizes == [2, 2]

    def test_invalid_num_threads(self, rt):
        with pytest.raises(OmpRuntimeError):
            rt.parallel_run(lambda: None, num_threads=0)

    def test_set_num_threads_inside_region_affects_next_fork(self, rt):
        rt.set_nested(True)
        inner_sizes = []

        def outer():
            rt.set_num_threads(3)
            rt.parallel_run(
                lambda: inner_sizes.append(rt.get_num_threads()))

        try:
            rt.parallel_run(outer, num_threads=1)
        finally:
            rt.set_nested(False)
        assert inner_sizes == [3, 3, 3]


class TestMutexAPI:
    def test_mutex_is_per_team(self, rt):
        """The reduction mutex guards concurrent merges."""
        shared = {"value": 0}

        def region():
            for _ in range(100):
                rt.mutex_lock()
                try:
                    shared["value"] += 1
                finally:
                    rt.mutex_unlock()

        rt.parallel_run(region, num_threads=4)
        assert shared["value"] == 400
