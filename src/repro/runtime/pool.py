"""Persistent hot-team worker pool.

Real OpenMP runtimes keep their teams *hot*: the native threads that
served one parallel region park on a futex and are handed the next
region's implicit tasks without a pthread_create in between.  This
module is the reproduction's analogue — it is what turns
``engine.parallel_run`` from spawn-per-region (a fresh
``threading.Thread`` per member, the overhead the OMP4Py preprint
flags for fine-grained regions) into dispatch-per-region.

Design, in the same event-driven idiom as the PR 3 barrier:

* Each worker owns a private ``threading.Event`` (its *wake*) and
  parks on it between regions.  ``OMP_WAIT_POLICY=active`` spins
  briefly before parking; ``passive`` (default) parks immediately.
* ``run_helpers`` hands each reused worker a ``(member, index,
  ticket)`` job under the pool lock and sets its wake; the shortfall
  is covered by spawning new workers that start directly on a job.
* A worker finishing a region re-registers itself on the idle list
  *before* signalling the region ticket, so a master that forks the
  next region immediately always finds its helpers idle — back-to-back
  regions reuse instead of growing the pool.
* A worker whose wake stays unset for ``OMP4PY_POOL_IDLE_TIMEOUT``
  seconds removes itself from the idle list and retires (the *trim*),
  so bursty programs do not hold threads forever.
* Parked workers hold **no** runtime locks and write **no**
  diagnostics blocking records: they are invisible to the wait-for
  graph and the stall watchdog by construction, exactly like an idle
  thread in a native runtime's thread pool.

The pool is per-runtime (the pure and native runtimes each own one,
created lazily) and shared by every team the runtime forks, including
nested and externally-concurrent ones — ``run_helpers`` is safe to
call from any number of master threads at once.
"""

from __future__ import annotations

import threading
import time

from repro import env

#: Seconds ``OMP_WAIT_POLICY=active`` spins before parking on an event.
ACTIVE_SPIN_S = 0.001

#: Job sentinel telling a parked worker to retire (pool shutdown).
_RETIRE = object()


class _RegionTicket:
    """Join handle for one region's pool-served helpers.

    The master waits on ``done`` instead of ``Thread.join``; helpers
    call :meth:`member_done` after re-registering as idle.
    """

    __slots__ = ("_remaining", "_lock", "done")

    def __init__(self, count: int) -> None:
        self._remaining = count
        self._lock = threading.Lock()
        self.done = threading.Event()

    def member_done(self) -> None:
        with self._lock:
            self._remaining -= 1
            last = self._remaining == 0
        if last:
            self.done.set()


class _PoolWorker:
    """One parked-or-running pool thread: its wake event and job slot."""

    __slots__ = ("wake", "job", "thread")

    def __init__(self) -> None:
        self.wake = threading.Event()
        #: ``(member, index, ticket)`` set by the dispatcher before the
        #: wake, ``_RETIRE`` at shutdown, ``None`` while parked.
        self.job = None
        self.thread: threading.Thread | None = None


class WorkerPool:
    """Hot-team pool of one runtime's region helper threads."""

    def __init__(self, runtime, *, idle_timeout: float | None = None,
                 wait_policy: str | None = None) -> None:
        self.runtime = runtime
        self.idle_timeout = (idle_timeout if idle_timeout is not None
                             else env.pool_idle_timeout())
        self.wait_policy = (wait_policy if wait_policy is not None
                            else getattr(runtime, "_wait_policy",
                                         "passive"))
        #: The runtime's execution backend, surfaced in ``snapshot()``
        #: so doctor/``omp_display_env`` output shows whether these
        #: workers genuinely overlap (nogil) or interleave (gil).  The
        #: pool mechanics are backend-independent: parked workers hold
        #: no locks either way, and on a free-threaded interpreter the
        #: same dispatch path yields true parallelism unchanged.
        backend = getattr(runtime, "backend", None)
        self.backend = (backend.value if backend is not None
                        else "gil")
        self._lock = threading.Lock()
        self._idle: list[_PoolWorker] = []
        self._workers: list[_PoolWorker] = []
        self._serial = 0
        #: Lifetime accounting, mutated under :attr:`_lock`; surfaced
        #: through ``snapshot()`` → doctor/``omp_display_env`` verbose.
        self.spawned_total = 0
        self.reused_total = 0
        self.trimmed_total = 0

    # ------------------------------------------------------------------
    # Master side

    def run_helpers(self, member, count: int) -> _RegionTicket | None:
        """Dispatch ``member(1..count)`` onto pool workers.

        Idle workers are reused first; the shortfall is covered by
        spawning.  Returns the ticket :meth:`wait` joins on, or ``None``
        when ``count`` is zero.
        """
        if count <= 0:
            return None
        ticket = _RegionTicket(count)
        reused: list[_PoolWorker] = []
        spawned: list[_PoolWorker] = []
        with self._lock:
            index = 1
            while self._idle and index <= count:
                worker = self._idle.pop()
                worker.job = (member, index, ticket)
                reused.append(worker)
                index += 1
            self.reused_total += len(reused)
            while index <= count:
                worker = _PoolWorker()
                worker.job = (member, index, ticket)
                worker.thread = threading.Thread(
                    target=self._worker_loop, args=(worker,),
                    name=(f"omp-{self.runtime.name}-pool-"
                          f"{self._serial}"),
                    daemon=True)
                self._serial += 1
                self._workers.append(worker)
                spawned.append(worker)
                index += 1
            self.spawned_total += len(spawned)
        for worker in reused:
            worker.wake.set()
        for worker in spawned:
            worker.thread.start()
        return ticket

    def wait(self, ticket: _RegionTicket | None) -> None:
        """Join one region: block until every helper signalled done."""
        if ticket is None:
            return
        done = ticket.done
        if self.wait_policy == "active" and not done.is_set():
            deadline = time.monotonic() + ACTIVE_SPIN_S
            while not done.is_set() and time.monotonic() < deadline:
                time.sleep(0)
        done.wait()

    # ------------------------------------------------------------------
    # Worker side

    def _worker_loop(self, worker: _PoolWorker) -> None:
        runtime = self.runtime
        ident = threading.get_ident()
        tool = runtime.tool
        if tool is not None:
            tool.thread_begin("pool-worker", ident)
        job = worker.job
        worker.job = None
        while job is not None and job is not _RETIRE:
            member, index, ticket = job
            try:
                member(index)
            except BaseException:  # noqa: BLE001 - member() reports its
                pass               # own errors through the team record
            finally:
                # Idle-register BEFORE signalling done: a master forking
                # the next region the instant wait() returns must find
                # this worker reusable, or back-to-back regions would
                # grow the pool without bound.
                with self._lock:
                    self._idle.append(worker)
                tool = runtime.tool
                if tool is not None:
                    tool.thread_idle(ident, "begin")
                ticket.member_done()
            job = self._await_work(worker)
        with self._lock:
            if worker in self._workers:
                self._workers.remove(worker)
        tool = runtime.tool
        if tool is not None:
            tool.thread_end("pool-worker", ident)

    def _await_work(self, worker: _PoolWorker):
        """Park until dispatched, trimmed, or retired.

        Returns the next job, or ``None`` when the idle timeout elapsed
        and this worker removed itself from the idle list (the trim).
        """
        wake = worker.wake
        if self.wait_policy == "active" and not wake.is_set():
            deadline = time.monotonic() + ACTIVE_SPIN_S
            while not wake.is_set() and time.monotonic() < deadline:
                time.sleep(0)
        while not wake.wait(timeout=self.idle_timeout):
            with self._lock:
                if worker in self._idle:
                    self._idle.remove(worker)
                    self.trimmed_total += 1
                    return None
            # Lost the race with a dispatcher that already popped us:
            # the job is assigned and the wake set is imminent — loop.
        wake.clear()
        job = worker.job
        worker.job = None
        if job is not None and job is not _RETIRE:
            tool = self.runtime.tool
            if tool is not None:
                tool.thread_idle(threading.get_ident(), "end")
        return job

    # ------------------------------------------------------------------
    # Introspection / lifecycle

    def size(self) -> int:
        """Live pool workers (parked or running a member)."""
        with self._lock:
            return len(self._workers)

    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)

    def snapshot(self) -> dict:
        """Pool state for the doctor / verbose ``omp_display_env``."""
        with self._lock:
            return {"workers": len(self._workers),
                    "idle": len(self._idle),
                    "spawned": self.spawned_total,
                    "reused": self.reused_total,
                    "trimmed": self.trimmed_total,
                    "wait_policy": self.wait_policy,
                    "idle_timeout": self.idle_timeout,
                    "backend": self.backend}

    def shutdown(self, timeout: float = 5.0) -> None:
        """Retire every parked worker and join its thread.

        Only workers currently idle are retired — call between regions
        (there are no busy workers then).  The pool stays usable; the
        next region simply spawns fresh workers.
        """
        with self._lock:
            parked = list(self._idle)
            self._idle.clear()
            for worker in parked:
                worker.job = _RETIRE
        for worker in parked:
            worker.wake.set()
        for worker in parked:
            if worker.thread is not None:
                worker.thread.join(timeout)
