"""Typed model of parsed directives and clauses.

A parsed directive is immutable data; the transformer consumes it without
re-reading the original string.  Clause arguments come in three shapes,
mirroring the OpenMP grammar:

* variable lists — ``private(a, b)`` → ``vars=("a", "b")``
* expressions   — ``if(n > 10)`` → ``expr="n > 10"`` (raw Python text)
* structured    — ``reduction(+: x, y)`` → ``op="+", vars=("x", "y")``;
  ``schedule(dynamic, 4)`` → ``op="dynamic", expr="4"``;
  ``default(none)`` → ``op="none"``
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Clause:
    """One clause instance on a directive."""

    name: str
    #: Identifier-like selector: reduction operator, schedule kind, or
    #: default policy.  ``None`` when the clause has no selector.
    op: str | None = None
    #: Variable list, empty when the clause takes none.
    vars: tuple[str, ...] = ()
    #: Raw Python expression text, ``None`` when the clause takes none.
    expr: str | None = None

    def __str__(self) -> str:
        parts = []
        if self.op is not None:
            parts.append(self.op)
        if self.vars:
            inner = ", ".join(self.vars)
            parts.append(f"{inner}")
        if self.expr is not None:
            parts.append(self.expr)
        if not parts:
            return self.name
        if self.name == "reduction":
            return f"reduction({self.op}: {', '.join(self.vars)})"
        return f"{self.name}({', '.join(parts)})"


@dataclasses.dataclass(frozen=True)
class Directive:
    """A fully parsed and validated directive."""

    name: str
    clauses: tuple[Clause, ...] = ()
    #: Direct argument of directives like ``critical(name)`` or
    #: ``flush(a, b)``; a tuple of identifiers (possibly empty).
    arguments: tuple[str, ...] = ()
    #: The original directive string, for diagnostics.
    source: str = ""

    def clause(self, name: str) -> Clause | None:
        """First clause with the given name, or ``None``."""
        for clause in self.clauses:
            if clause.name == name:
                return clause
        return None

    def all_clauses(self, name: str) -> list[Clause]:
        return [c for c in self.clauses if c.name == name]

    def has_clause(self, name: str) -> bool:
        return self.clause(name) is not None

    def clause_vars(self, name: str) -> tuple[str, ...]:
        """Union of the variable lists of every clause with this name."""
        out: list[str] = []
        for clause in self.all_clauses(name):
            out.extend(clause.vars)
        return tuple(out)

    def __str__(self) -> str:
        parts = [self.name]
        if self.arguments:
            parts[0] += f"({', '.join(self.arguments)})"
        parts.extend(str(c) for c in self.clauses)
        return " ".join(parts)
