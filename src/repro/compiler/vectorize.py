"""Typed loop-to-NumPy lowering: the *CompiledDT* simulation.

Typed Cython turns annotated numeric loops into native loops.  The
Python-reachable equivalent of "native loop" is a NumPy kernel: this
pass finds ``for i in range(...)`` loops whose bodies type-check as
numeric element-wise code — every scalar either ``int``/``float``/
``complex``-annotated, a loop variable, or a generated reduction
accumulator — and replaces them with vector statements over the chunk's
iteration vector.  Worksharing drivers are untouched, so chunks still
flow through the OpenMP schedulers; only the per-chunk execution becomes
native.

The pass is conservative exactly where Cython is: one untyped scalar,
one unsupported statement, or one potentially-aliasing store makes the
loop fall back to interpreted execution (the measured gap between the
paper's *Compiled* and *CompiledDT* modes).
"""

from __future__ import annotations

import ast

from repro.transform.context import TransformContext

#: Injected module handle for :mod:`repro.compiler.kernels`.
KERNEL_HANDLE = "__omp_k__"

_SCALAR_TYPES = {"int", "float", "complex", "bool"}

_MATH_UFUNCS = {
    "sqrt": "sqrt", "sin": "sin", "cos": "cos", "tan": "tan",
    "exp": "exp", "log": "log", "log2": "log2", "log10": "log10",
    "floor": "floor", "ceil": "ceil", "fabs": "abs", "atan": "arctan",
    "asin": "arcsin", "acos": "arccos", "atan2": "arctan2",
    "sinh": "sinh", "cosh": "cosh", "tanh": "tanh", "pow": "power",
    "hypot": "hypot", "copysign": "copysign", "fmod": "fmod",
}

_REDUCIBLE_AUG = {ast.Add: "add", ast.Sub: "add", ast.Mult: "multiply",
                  ast.BitAnd: "bitwise_and", ast.BitOr: "bitwise_or",
                  ast.BitXor: "bitwise_xor"}

VEC = "vec"
SCALAR = "scalar"


class _Reject(Exception):
    """Internal: this loop cannot be vectorized; fall back."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class VectorizePass:
    """Per-definition driver: bottom-up loop vectorization."""

    def __init__(self, ctx: TransformContext, options: dict | None = None,
                 debug: bool = False):
        self.ctx = ctx
        self.debug = debug
        self.options = options or {}
        #: (loop lineno, outcome) diagnostics, for tests and reports.
        self.report: list[tuple[int, str]] = []

    def run(self, node: ast.stmt) -> ast.stmt:
        annotations = _collect_annotations(node)
        annotations.update(_collect_reduction_accumulators(
            node, self.ctx.rt_name))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            node.body = self._process_block(node.body, dict(annotations))
        else:
            self._process_scopes(node, annotations)
        return node

    def _process_scopes(self, node: ast.AST, env: dict[str, str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child.body = self._process_block(child.body, dict(env))
            else:
                self._process_scopes(child, env)

    def _process_block(self, stmts: list[ast.stmt],
                       env: dict[str, str]) -> list[ast.stmt]:
        out: list[ast.stmt] = []
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stmt.body = self._process_block(stmt.body, dict(env))
                out.append(stmt)
                continue
            if isinstance(stmt, ast.For) and _range_parts(stmt) is not None:
                out.extend(self._process_loop(stmt, env, ws_contract=False))
                continue
            if isinstance(stmt, ast.While) and self._is_chunk_driver(stmt):
                # The body of a worksharing chunk loop: its iterations
                # are independent by the OpenMP contract, so scatter
                # stores need not be provably one-to-one.
                new_body: list[ast.stmt] = []
                for inner in stmt.body:
                    if isinstance(inner, ast.For) and _range_parts(
                            inner) is not None:
                        new_body.extend(self._process_loop(
                            inner, env, ws_contract=True))
                    else:
                        new_body.append(inner)
                stmt.body = new_body
                out.append(stmt)
                continue
            for field in ("body", "orelse", "finalbody"):
                block = getattr(stmt, field, None)
                if isinstance(block, list) and block and isinstance(
                        block[0], ast.stmt):
                    setattr(stmt, field,
                            self._process_block(block, env))
            for handler in getattr(stmt, "handlers", []):
                handler.body = self._process_block(handler.body, env)
            out.append(stmt)
        return out

    def _process_loop(self, loop: ast.For, env: dict[str, str],
                      ws_contract: bool) -> list[ast.stmt]:
        if isinstance(loop.target, ast.Name):
            env[loop.target.id] = "int"
        loop.body = self._process_block(loop.body, env)
        replacement = self._try_vectorize(loop, env, ws_contract)
        if replacement is not None:
            self.report.append((getattr(loop, "lineno", 0), "vectorized"))
            return replacement
        return [loop]

    def _is_chunk_driver(self, stmt: ast.While) -> bool:
        test = stmt.test
        return (isinstance(test, ast.Call)
                and isinstance(test.func, ast.Attribute)
                and test.func.attr == "for_next"
                and isinstance(test.func.value, ast.Name)
                and test.func.value.id == self.ctx.rt_name)

    def _try_vectorize(self, loop: ast.For, env: dict[str, str],
                       ws_contract: bool = False) -> list[ast.stmt] | None:
        try:
            builder = _KernelBuilder(self.ctx, env, loop,
                                     ws_contract=ws_contract)
            return builder.build()
        except _Reject as reject:
            self.report.append((getattr(loop, "lineno", 0),
                                f"fallback: {reject.reason}"))
            if self.debug:
                print(f"[omp4py:vectorize] line {loop.lineno}: "
                      f"{reject.reason}")
            return None


def _range_parts(loop: ast.For):
    call = loop.iter
    if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)
            and call.func.id == "range" and not call.keywords
            and 1 <= len(call.args) <= 3 and not loop.orelse):
        return None
    args = call.args
    if len(args) == 1:
        return ast.Constant(value=0), args[0], ast.Constant(value=1)
    if len(args) == 2:
        return args[0], args[1], ast.Constant(value=1)
    return args[0], args[1], args[2]


def _collect_annotations(node: ast.AST) -> dict[str, str]:
    """Scalar types from ``x: float`` declarations, plus inferred types
    for names only ever assigned literals of one type (the counterpart
    of Cython's local type inference)."""
    annotations: dict[str, str] = {}
    inferred: dict[str, str] = {}
    disqualified: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.arg) and isinstance(
                child.annotation, ast.Name) \
                and child.annotation.id in _SCALAR_TYPES:
            # Parameter annotations (def f(s: float, n: int)).
            annotations[child.arg] = child.annotation.id
        elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name):
            label = None
            if isinstance(child.annotation, ast.Name):
                label = child.annotation.id
            elif isinstance(child.annotation, ast.Constant) and isinstance(
                    child.annotation.value, str):
                label = child.annotation.value
            if label in _SCALAR_TYPES:
                annotations[child.target.id] = label
        elif isinstance(child, ast.Assign) and len(child.targets) == 1 \
                and isinstance(child.targets[0], ast.Name):
            name = child.targets[0].id
            if isinstance(child.value, ast.Constant) and type(
                    child.value.value) in (int, float):
                label = type(child.value.value).__name__
                if inferred.setdefault(name, label) != label:
                    disqualified.add(name)
            elif not _is_self_minmax(child):
                disqualified.add(name)
    for name, label in inferred.items():
        if name not in disqualified and name not in annotations:
            annotations[name] = label
    return annotations


def _is_self_minmax(assign: ast.Assign) -> bool:
    """``x = min(x, ...)`` — the reduction shape; not a re-type."""
    value = assign.value
    target = assign.targets[0]
    return (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
            and value.func.id in ("min", "max") and value.args
            and isinstance(value.args[0], ast.Name)
            and isinstance(target, ast.Name)
            and value.args[0].id == target.id)


def _collect_reduction_accumulators(node: ast.AST,
                                    rt_name: str) -> dict[str, str]:
    """Generated accumulators (``acc = __omp__.reduction_init(op)``)."""
    accumulators: dict[str, str] = {}
    for child in ast.walk(node):
        if isinstance(child, ast.Assign) and len(child.targets) == 1 \
                and isinstance(child.targets[0], ast.Name) \
                and isinstance(child.value, ast.Call) \
                and isinstance(child.value.func, ast.Attribute) \
                and child.value.func.attr == "reduction_init" \
                and isinstance(child.value.func.value, ast.Name) \
                and child.value.func.value.id == rt_name:
            accumulators[child.targets[0].id] = "float"
    return accumulators


def _body_assigned_names(stmts: list[ast.stmt]) -> set[str]:
    names: set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


def _k_attr(path: str) -> ast.expr:
    node: ast.expr = ast.Name(id=KERNEL_HANDLE, ctx=ast.Load())
    for part in path.split("."):
        node = ast.Attribute(value=node, attr=part, ctx=ast.Load())
    return node


def _k_call(path: str, args, keywords=()) -> ast.Call:
    return ast.Call(func=_k_attr(path), args=list(args),
                    keywords=[ast.keyword(arg=k, value=v)
                              for k, v in keywords])


class _KernelBuilder:
    """Translates one range-loop body into vector statements."""

    def __init__(self, ctx: TransformContext, env: dict[str, str],
                 loop: ast.For, ws_contract: bool = False):
        self.ctx = ctx
        self.env = env
        self.loop = loop
        #: Iterations independent by the worksharing contract: scatter
        #: stores need not be provably one-to-one.
        self.ws_contract = ws_contract
        if not isinstance(loop.target, ast.Name):
            raise _Reject("tuple loop target")
        self.loop_var = loop.target.id
        self.vector_name = ctx.symbols.fresh("iv")
        #: body temp name -> (mangled name, kind)
        self.temps: dict[str, tuple[str, str]] = {}
        #: hoisted array bases: dump(base expr) -> local name
        self.bases: dict[str, str] = {}
        #: dump(base) -> set of dump(index) seen in vector loads.
        self.load_indices: dict[str, set[str]] = {}
        self.preamble: list[ast.stmt] = []
        self.statements: list[ast.stmt] = []
        self.finalizers: list[ast.stmt] = []
        #: arrays written in this body (stores must not alias loads).
        self.stored_arrays: set[str] = set()
        #: names assigned anywhere in the body; reading one before its
        #: in-body assignment is a loop-carried dependence.
        self.body_assigned = _body_assigned_names(loop.body)

    # -- public ----------------------------------------------------------

    def build(self) -> list[ast.stmt]:
        for stmt in self.loop.body:
            self._translate_statement(stmt)
        if not self.statements and not self.finalizers:
            raise _Reject("empty or effect-free body")
        lo, hi, step = _range_parts(self.loop)
        for part in (lo, hi, step):
            self._require_invariant(part, "loop bound")
        self.ctx.needs_kernels = True
        header = [ast.Assign(
            targets=[ast.Name(id=self.vector_name, ctx=ast.Store())],
            value=_k_call("arange", [lo, hi, step]))]
        result = header + self.preamble + self.statements + self.finalizers
        for stmt in result:
            ast.copy_location(stmt, self.loop)
            ast.fix_missing_locations(stmt)
        return result

    # -- statement translation --------------------------------------------

    def _translate_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                self._translate_scalar_target(target.id, stmt.value)
                return
            if isinstance(target, ast.Subscript):
                self._translate_store(target, stmt.value)
                return
            raise _Reject("unsupported assignment target")
        if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name) and stmt.value is not None:
            self._translate_scalar_target(stmt.target.id, stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._translate_augassign(stmt)
            return
        raise _Reject(f"unsupported statement {type(stmt).__name__}")

    def _translate_scalar_target(self, name: str, value: ast.expr) -> None:
        reduction = self._match_minmax_reduction(name, value)
        if reduction is not None:
            return
        translated, kind = self._expr(value)
        mangled = self.temps.get(name, (None, None))[0]
        if mangled is None:
            mangled = self.ctx.symbols.fresh(f"t_{name}")
        self.temps[name] = (mangled, kind)
        self.statements.append(ast.Assign(
            targets=[ast.Name(id=mangled, ctx=ast.Store())],
            value=translated))

    def _match_minmax_reduction(self, name: str, value: ast.expr):
        """``acc = min(acc, expr)`` / ``acc = max(acc, expr)``."""
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("min", "max")
                and len(value.args) == 2 and not value.keywords):
            return None
        first, second = value.args
        if not (isinstance(first, ast.Name) and first.id == name):
            return None
        if name in self.temps or self.env.get(name) not in (
                "int", "float"):
            raise _Reject(f"min/max reduction on untyped {name!r}")
        translated, kind = self._expr(second)
        if kind is SCALAR:
            raise _Reject("min/max reduction of invariant value")
        ufunc = "minimum" if value.func.id == "min" else "maximum"
        self.finalizers.append(ast.Assign(
            targets=[ast.Name(id=name, ctx=ast.Store())],
            value=_k_call(f"np.{ufunc}.reduce", [translated],
                          [("initial", ast.Name(id=name, ctx=ast.Load()))])))
        return True

    def _translate_augassign(self, stmt: ast.AugAssign) -> None:
        if isinstance(stmt.target, ast.Subscript):
            # x[i] += e  ->  store of load + e.
            load = ast.Subscript(value=stmt.target.value,
                                 slice=stmt.target.slice, ctx=ast.Load())
            self._translate_store(stmt.target, ast.BinOp(
                left=load, op=stmt.op, right=stmt.value))
            return
        if not isinstance(stmt.target, ast.Name):
            raise _Reject("unsupported augmented-assignment target")
        name = stmt.target.id
        if name in self.temps:
            # Vector temp update: t op= e.
            translated, _kind = self._expr(
                ast.BinOp(left=ast.Name(id=name, ctx=ast.Load()),
                          op=stmt.op, right=stmt.value))
            mangled, _old = self.temps[name]
            self.temps[name] = (mangled, VEC)
            self.statements.append(ast.Assign(
                targets=[ast.Name(id=mangled, ctx=ast.Store())],
                value=translated))
            return
        ufunc = _REDUCIBLE_AUG.get(type(stmt.op))
        if ufunc is None:
            raise _Reject(
                f"unsupported reduction operator "
                f"{type(stmt.op).__name__}")
        if self.env.get(name) not in ("int", "float", "complex"):
            raise _Reject(f"reduction on untyped scalar {name!r}")
        translated, kind = self._expr(stmt.value)
        if kind is SCALAR:
            if not isinstance(stmt.op, (ast.Add, ast.Sub)):
                raise _Reject("invariant value in non-additive reduction")
            translated = ast.BinOp(
                left=translated, op=ast.Mult(),
                right=_k_call("size",
                              [ast.Name(id=self.vector_name,
                                        ctx=ast.Load())]))
            reduced = translated
        else:
            reduced = _k_call(f"np.{ufunc}.reduce", [translated])
        # acc -= Σe, acc += Σe, acc *= Πe, ... : the partial results of
        # the chunk fold into the accumulator with the original operator.
        self.finalizers.append(ast.Assign(
            targets=[ast.Name(id=name, ctx=ast.Store())],
            value=ast.BinOp(left=ast.Name(id=name, ctx=ast.Load()),
                            op=type(stmt.op)(), right=reduced)))

    def _translate_store(self, target: ast.Subscript,
                         value: ast.expr) -> None:
        base, index = target.value, target.slice
        self._require_invariant(base, "store base")
        base_key = ast.dump(base)
        index_tr = self._store_index(index)
        # Translate the value BEFORE registering the store so the
        # elementwise ``A[i] = f(A[i])`` shape is checkable.
        value_tr, _kind = self._expr(value)
        # Storing into an array the body also gathers from is safe only
        # when every such load used the exact same index (element-wise
        # update, e.g. LU's row transformation); any other overlap could
        # be a loop-carried dependence.
        seen = self.load_indices.get(base_key, set())
        if any(load_index != ast.dump(index) for load_index in seen):
            raise _Reject(
                "store aliases a load with a different index")
        self.stored_arrays.add(base_key)
        self.statements.append(ast.Assign(
            targets=[ast.Subscript(value=base, slice=index_tr,
                                   ctx=ast.Store())],
            value=value_tr))

    def _store_index(self, index: ast.expr) -> ast.expr:
        """Store indices must provably hit distinct elements: the loop
        variable itself, or loop-var ± invariant offset."""
        if isinstance(index, ast.Tuple):
            elements = [self._store_index_component(e)
                        for e in index.elts]
            return ast.Tuple(elts=elements, ctx=ast.Load())
        return self._store_index_component(index)

    def _store_index_component(self, index: ast.expr) -> ast.expr:
        if self.ws_contract:
            translated, _kind = self._expr(index)
            return translated
        if isinstance(index, ast.Name) and index.id == self.loop_var:
            return ast.Name(id=self.vector_name, ctx=ast.Load())
        if isinstance(index, ast.BinOp) and isinstance(
                index.op, (ast.Add, ast.Sub)):
            left_is_var = (isinstance(index.left, ast.Name)
                           and index.left.id == self.loop_var)
            right_is_var = (isinstance(index.right, ast.Name)
                            and index.right.id == self.loop_var)
            if left_is_var:
                self._require_invariant(index.right, "store offset")
                translated, _ = self._expr(index)
                return translated
            if right_is_var and isinstance(index.op, ast.Add):
                self._require_invariant(index.left, "store offset")
                translated, _ = self._expr(index)
                return translated
        if self._is_invariant(index):
            return index
        raise _Reject("store index is not provably one-to-one")

    # -- expression translation -------------------------------------------

    def _expr(self, node: ast.expr) -> tuple[ast.expr, str]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float, complex, bool)):
                return node, SCALAR
            raise _Reject(f"non-numeric constant {node.value!r}")
        if isinstance(node, ast.Name):
            return self._name(node)
        if isinstance(node, ast.BinOp):
            left, lk = self._expr(node.left)
            right, rk = self._expr(node.right)
            if type(node.op) not in (ast.Add, ast.Sub, ast.Mult, ast.Div,
                                     ast.FloorDiv, ast.Mod, ast.Pow,
                                     ast.BitAnd, ast.BitOr, ast.BitXor,
                                     ast.LShift, ast.RShift):
                raise _Reject(
                    f"operator {type(node.op).__name__} not supported")
            kind = VEC if VEC in (lk, rk) else SCALAR
            return ast.BinOp(left=left, op=node.op, right=right), kind
        if isinstance(node, ast.UnaryOp):
            operand, kind = self._expr(node.operand)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return ast.UnaryOp(op=node.op, operand=operand), kind
            if isinstance(node.op, ast.Not):
                return _k_call("np.logical_not", [operand]), kind
            raise _Reject("unsupported unary operator")
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise _Reject("chained comparison")
            left, lk = self._expr(node.left)
            right, rk = self._expr(node.comparators[0])
            if type(node.ops[0]) not in (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                         ast.Eq, ast.NotEq):
                raise _Reject("unsupported comparison")
            kind = VEC if VEC in (lk, rk) else SCALAR
            return ast.Compare(left=left, ops=list(node.ops),
                               comparators=[right]), kind
        if isinstance(node, ast.BoolOp):
            parts = [self._expr(value) for value in node.values]
            kind = VEC if any(k is VEC for _e, k in parts) else SCALAR
            helper = ("logical_and" if isinstance(node.op, ast.And)
                      else "logical_or")
            result = parts[0][0]
            for expr, _k in parts[1:]:
                result = _k_call(helper, [result, expr])
            return result, kind
        if isinstance(node, ast.IfExp):
            test, tk = self._expr(node.test)
            then, bk = self._expr(node.body)
            other, ok = self._expr(node.orelse)
            kind = VEC if VEC in (tk, bk, ok) else SCALAR
            return _k_call("np.where", [test, then, other]), kind
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            return self._load(node)
        raise _Reject(f"unsupported expression {type(node).__name__}")

    def _name(self, node: ast.Name) -> tuple[ast.expr, str]:
        name = node.id
        if name == self.loop_var:
            return ast.Name(id=self.vector_name, ctx=ast.Load()), VEC
        if name in self.temps:
            mangled, kind = self.temps[name]
            return ast.Name(id=mangled, ctx=ast.Load()), kind
        if name in self.body_assigned:
            # Read of a name assigned later in the body: the sequential
            # loop would see the previous iteration's value.
            raise _Reject(f"loop-carried read of {name!r}")
        if self.env.get(name) in _SCALAR_TYPES:
            return ast.Name(id=name, ctx=ast.Load()), SCALAR
        raise _Reject(f"untyped scalar {name!r}")

    def _call(self, node: ast.Call) -> tuple[ast.expr, str]:
        if node.keywords:
            raise _Reject("keyword arguments in kernel call")
        func = node.func
        args = [self._expr(a) for a in node.args]
        kind = VEC if any(k is VEC for _e, k in args) else SCALAR
        exprs = [e for e, _k in args]
        if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name) and func.value.id == "math":
            ufunc = _MATH_UFUNCS.get(func.attr)
            if ufunc is None:
                raise _Reject(f"math.{func.attr} has no ufunc mapping")
            return _k_call(f"np.{ufunc}", exprs), kind
        if isinstance(func, ast.Name):
            if func.id == "abs" and len(exprs) == 1:
                return _k_call("np.abs", exprs), kind
            if func.id in ("min", "max") and len(exprs) == 2:
                ufunc = "minimum" if func.id == "min" else "maximum"
                return _k_call(f"np.{ufunc}", exprs), kind
            if func.id == "int" and len(exprs) == 1:
                return _k_call("cast_int", exprs), kind
            if func.id == "float" and len(exprs) == 1:
                return _k_call("cast_float", exprs), kind
            ufunc = _MATH_UFUNCS.get(func.id)
            if ufunc is not None:
                return _k_call(f"np.{ufunc}", exprs), kind
        raise _Reject("call target is not a recognised numeric function")

    def _load(self, node: ast.Subscript) -> tuple[ast.expr, str]:
        base = node.value
        self._require_invariant(base, "load base")
        if ast.dump(base) in self.stored_arrays:
            raise _Reject("array is both stored and loaded in the body")
        if isinstance(node.slice, ast.Tuple):
            parts = [self._expr(e) for e in node.slice.elts]
            kind = VEC if any(k is VEC for _e, k in parts) else SCALAR
            index: ast.expr = ast.Tuple(elts=[e for e, _k in parts],
                                        ctx=ast.Load())
        else:
            index, kind = self._expr(node.slice)
        if kind is SCALAR:
            return ast.Subscript(value=base, slice=index,
                                 ctx=ast.Load()), SCALAR
        base_key = ast.dump(base)
        self.load_indices.setdefault(base_key, set()).add(
            ast.dump(node.slice))
        alias = self.bases.get(base_key)
        if alias is None:
            alias = self.ctx.symbols.fresh("arr")
            self.bases[base_key] = alias
            self.preamble.append(ast.Assign(
                targets=[ast.Name(id=alias, ctx=ast.Store())],
                value=_k_call("asarray", [base])))
        return ast.Subscript(value=ast.Name(id=alias, ctx=ast.Load()),
                             slice=index, ctx=ast.Load()), VEC

    # -- invariance --------------------------------------------------------

    def _is_invariant(self, node: ast.expr) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                if child.id == self.loop_var or child.id in self.temps:
                    return False
        return True

    def _require_invariant(self, node: ast.expr, what: str) -> None:
        if not self._is_invariant(node):
            raise _Reject(f"{what} depends on the loop variable")
