"""Tests of the report harness's machine-readable JSON output."""

import json

import pytest

from repro.analysis import shapecheck
from repro.analysis.report import main, points_to_json
from repro.analysis.runner import SweepPoint
from repro.analysis.timing import Measurement


class TestPointsToJson:
    def test_measurement_rows(self):
        measurement = Measurement(wall=1.5, projected=0.5,
                                  serialized_cpu=1.2, critical_cpu=0.4,
                                  regions=2, imbalance=1.25)
        point = SweepPoint(app="pi", series="hybrid", threads=4,
                           measurement=measurement, verified=True)
        [row] = points_to_json([point])
        assert row == {"app": "pi", "series": "hybrid", "threads": 4,
                       "wall_s": 1.5, "projected_s": 0.5,
                       "serialized_cpu_s": 1.2, "critical_cpu_s": 0.4,
                       "regions": 2, "imbalance": 1.25,
                       "verified": True, "error": None,
                       "backend": "gil", "model_projected_s": None}

    def test_error_rows_have_observability_fields(self):
        point = SweepPoint(app="bfs", series="pyomp", threads=2,
                           measurement=None, verified=None,
                           error="PyOMPInternalError: ...")
        [row] = points_to_json([point])
        assert row["serialized_cpu_s"] is None
        assert row["imbalance"] is None

    def test_error_rows(self):
        point = SweepPoint(app="bfs", series="pyomp", threads=2,
                           measurement=None, verified=None,
                           error="PyOMPInternalError: ...")
        [row] = points_to_json([point])
        assert row["wall_s"] is None
        assert row["error"].startswith("PyOMPInternalError")


class TestCliJson:
    def test_fig5_writes_json(self, tmp_path, capsys):
        path = tmp_path / "fig5.json"
        main(["fig5", "--apps", "pi", "--threads", "1",
              "--profile", "test", "--json", str(path)])
        capsys.readouterr()
        data = json.loads(path.read_text())
        assert set(data) == {"pi"}
        series = {row["series"] for row in data["pi"]}
        assert {"pure", "hybrid", "compiled", "compileddt",
                "pyomp"} <= series
        assert all(row["verified"] for row in data["pi"]
                   if row["error"] is None)

    def test_check_writes_json(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "check.json"
        monkeypatch.setattr(
            shapecheck, "run_all",
            lambda profile, repeats: [
                shapecheck.ClaimResult("c1", True, "fine")])
        main(["check", "--json", str(path)])
        capsys.readouterr()
        data = json.loads(path.read_text())
        assert data == [{"claim": "c1", "passed": True,
                         "detail": "fine"}]
