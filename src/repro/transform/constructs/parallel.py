"""Lowering of ``parallel`` and the combined parallel worksharing forms.

Follows the paper's Fig. 2: the block body moves into an inner function;
shared assigned variables become ``nonlocal``; reduction variables are
replaced by private accumulators merged under the team mutex; the region
is launched with ``__omp__.parallel_run``.
"""

from __future__ import annotations

import ast

from repro.directives.model import Clause, Directive
from repro.errors import OmpSyntaxError
from repro.transform import astutil, datasharing
from repro.transform.context import TransformContext

#: Clauses that belong to the ``parallel`` half of a combined directive.
_PARALLEL_CLAUSES = frozenset(
    {"if", "num_threads", "default", "private", "firstprivate", "shared",
     "copyin", "reduction"})


def handle_parallel(node: ast.With, directive: Directive,
                    ctx: TransformContext) -> list[ast.stmt]:
    body = node.body
    astutil.check_no_escape(body, directive.source)
    ds = datasharing.classify(body, directive, ctx)

    fn_name = ctx.symbols.fresh("parallel")
    generated_locals = (set(ds.privates) | set(ds.firstprivates)
                        | {acc for _op, _var, acc in ds.reductions})
    ctx.push_scope(generated_locals, body)
    try:
        with ctx.enter_construct("parallel"):
            new_body = transform_statements(body, ctx)
    finally:
        ctx.pop_scope()
    new_body = astutil.rename_in(new_body, ds.rename_map)

    inner: list[ast.stmt] = []
    inner.extend(datasharing.sharing_declarations(ds))
    inner.extend(datasharing.sentinel_inits(ds, ctx))
    inner.extend(datasharing.reduction_inits(ds, ctx))
    inner.extend(new_body)
    inner.extend(datasharing.reduction_merges(ds, ctx))
    if not inner:
        inner.append(ast.Pass())

    fndef = ast.FunctionDef(
        name=fn_name, args=datasharing.firstprivate_params(ds),
        body=inner, decorator_list=[], returns=None)

    keywords: list[tuple[str, ast.expr]] = []
    if_clause = directive.clause("if")
    if if_clause is not None:
        keywords.append(("if_", astutil.parse_expression(
            if_clause.expr, directive.source)))
    nt_clause = directive.clause("num_threads")
    if nt_clause is not None:
        keywords.append(("num_threads", astutil.parse_expression(
            nt_clause.expr, directive.source)))
    if ds.copyin:
        keys = []
        for name in ds.copyin:
            key = ctx.threadprivate.get(name)
            if key is None:
                raise OmpSyntaxError(
                    f"copyin variable {name!r} is not threadprivate",
                    directive=directive.source)
            keys.append(astutil.constant(key))
        keywords.append(("copyin", ast.Tuple(elts=keys, ctx=ast.Load())))

    launch = astutil.rt_call_stmt(
        ctx.rt_name, "parallel_run", [astutil.name_load(fn_name)], keywords)
    result = [fndef, launch]
    for stmt in result:
        astutil.fix_locations(stmt, node)
    return result


def _split_combined(directive: Directive, ws_name: str,
                    ws_extra: frozenset[str]) -> tuple[Directive, Directive]:
    """Split a combined directive's clauses between its two halves."""
    parallel_clauses: list[Clause] = []
    ws_clauses: list[Clause] = []
    for clause in directive.clauses:
        if clause.name in _PARALLEL_CLAUSES:
            # Reductions of a combined construct are applied at the
            # region level (Fig. 2's shape): privatized for the whole
            # region, merged once at its end.
            parallel_clauses.append(clause)
        if clause.name in ws_extra:
            ws_clauses.append(clause)
    # The region's join barrier makes the worksharing barrier redundant.
    ws_clauses.append(Clause("nowait"))
    outer = Directive(name="parallel", clauses=tuple(parallel_clauses),
                      source=directive.source)
    inner = Directive(name=ws_name, clauses=tuple(ws_clauses),
                      source=directive.source)
    return outer, inner


def _handle_combined(node: ast.With, directive: Directive,
                     ctx: TransformContext, ws_name: str,
                     ws_extra: frozenset[str]) -> list[ast.stmt]:
    from repro.transform.rewriter import PARSED_ATTR

    outer, inner = _split_combined(directive, ws_name, ws_extra)
    synthetic = ast.With(
        items=[ast.withitem(
            context_expr=ast.Call(
                func=astutil.name_load("omp"),
                args=[astutil.constant(str(inner))], keywords=[]),
            optional_vars=None)],
        body=node.body)
    setattr(synthetic, PARSED_ATTR, inner)
    astutil.fix_locations(synthetic, node)
    wrapper = ast.With(items=node.items, body=[synthetic])
    astutil.fix_locations(wrapper, node)
    return handle_parallel(wrapper, outer, ctx)


def handle_parallel_for(node: ast.With, directive: Directive,
                        ctx: TransformContext) -> list[ast.stmt]:
    return _handle_combined(
        node, directive, ctx, "for",
        frozenset({"schedule", "collapse", "ordered", "lastprivate"}))


def handle_parallel_sections(node: ast.With, directive: Directive,
                             ctx: TransformContext) -> list[ast.stmt]:
    return _handle_combined(node, directive, ctx, "sections",
                            frozenset({"lastprivate"}))


def transform_statements(stmts, ctx):
    from repro.transform.rewriter import transform_statements as _impl
    return _impl(stmts, ctx)
