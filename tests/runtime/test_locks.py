"""Tests of the OpenMP lock API (simple and nestable locks)."""

import threading

import pytest

from repro.cruntime import cruntime
from repro.errors import OmpRuntimeError
from repro.runtime import pure_runtime


@pytest.fixture(params=["pure", "cruntime"])
def rt(request):
    return pure_runtime if request.param == "pure" else cruntime


class TestSimpleLock:
    def test_set_unset(self, rt):
        lock = rt.init_lock()
        rt.set_lock(lock)
        rt.unset_lock(lock)
        rt.destroy_lock(lock)

    def test_test_lock_when_free(self, rt):
        lock = rt.init_lock()
        assert rt.test_lock(lock) is True
        rt.unset_lock(lock)

    def test_test_lock_when_held_elsewhere(self, rt):
        lock = rt.init_lock()
        holder = threading.Thread(target=lambda: rt.set_lock(lock))
        holder.start()
        holder.join()
        assert rt.test_lock(lock) is False

    def test_use_after_destroy(self, rt):
        lock = rt.init_lock()
        rt.destroy_lock(lock)
        with pytest.raises(OmpRuntimeError):
            rt.set_lock(lock)

    def test_mutual_exclusion(self, rt):
        lock = rt.init_lock()
        counter = {"value": 0}

        def bump():
            for _ in range(500):
                rt.set_lock(lock)
                counter["value"] += 1
                rt.unset_lock(lock)

        workers = [threading.Thread(target=bump) for _ in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter["value"] == 2000


class TestNestLock:
    def test_owner_can_renest(self, rt):
        lock = rt.init_nest_lock()
        rt.set_nest_lock(lock)
        rt.set_nest_lock(lock)
        rt.unset_nest_lock(lock)
        rt.unset_nest_lock(lock)

    def test_test_returns_nesting_count(self, rt):
        lock = rt.init_nest_lock()
        assert rt.test_nest_lock(lock) == 1
        assert rt.test_nest_lock(lock) == 2
        rt.unset_nest_lock(lock)
        rt.unset_nest_lock(lock)

    def test_test_fails_when_held_elsewhere(self, rt):
        lock = rt.init_nest_lock()
        holder = threading.Thread(target=lambda: rt.set_nest_lock(lock))
        holder.start()
        holder.join()
        assert rt.test_nest_lock(lock) == 0

    def test_unset_by_non_owner_rejected(self, rt):
        lock = rt.init_nest_lock()
        rt.set_nest_lock(lock)
        error: list = []

        def other():
            try:
                rt.unset_nest_lock(lock)
            except OmpRuntimeError as exc:
                error.append(exc)

        worker = threading.Thread(target=other)
        worker.start()
        worker.join()
        assert error
        rt.unset_nest_lock(lock)

    def test_released_lock_acquirable_by_other_thread(self, rt):
        lock = rt.init_nest_lock()
        rt.set_nest_lock(lock)
        rt.unset_nest_lock(lock)
        acquired = []

        def other():
            acquired.append(rt.test_nest_lock(lock))

        worker = threading.Thread(target=other)
        worker.start()
        worker.join()
        assert acquired == [1]


class TestCritical:
    def test_named_criticals_are_independent(self, rt):
        rt.critical_enter("alpha")
        # A different name must not block.
        done = []

        def other():
            rt.critical_enter("beta")
            done.append(True)
            rt.critical_exit("beta")

        worker = threading.Thread(target=other)
        worker.start()
        worker.join(timeout=5)
        rt.critical_exit("alpha")
        assert done == [True]

    def test_same_name_excludes(self, rt):
        counter = {"value": 0}

        def region():
            for _ in range(200):
                rt.critical_enter("")
                counter["value"] += 1
                rt.critical_exit("")

        rt.parallel_run(region, num_threads=4)
        assert counter["value"] == 800

    def test_atomic_mutex(self, rt):
        counter = {"value": 0}

        def region():
            for _ in range(200):
                rt.atomic_enter()
                counter["value"] += 1
                rt.atomic_exit()

        rt.parallel_run(region, num_threads=4)
        assert counter["value"] == 800
