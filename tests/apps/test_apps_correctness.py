"""Correctness of every benchmark app, in every execution mode,
against independent references (NumPy/SciPy/NetworkX/stdlib)."""

import collections

import networkx as nx
import numpy as np
import pytest
import scipy.linalg

from repro.apps import get_app, list_apps
from repro.modes import Mode

APP_NAMES = list_apps()


@pytest.fixture(scope="module")
def references():
    """Sequential reference outputs, computed once per app."""
    cache = {}
    for name in APP_NAMES:
        spec = get_app(name)
        cache[name] = spec.sequential(**spec.inputs("test"))
    return cache


class TestAllModesMatchSequential:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_modes(self, name, references, any_mode):
        spec = get_app(name)
        result = spec.run(any_mode, threads=3, profile="test")
        assert spec.verify(result, references[name]), \
            f"{name} mismatch in {any_mode.value}"

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_single_thread(self, name, references):
        spec = get_app(name)
        result = spec.run(Mode.HYBRID, threads=1, profile="test")
        assert spec.verify(result, references[name])


class TestIndependentReferences:
    def test_pi_value(self):
        import math
        spec = get_app("pi")
        result = spec.run(Mode.COMPILED_DT, threads=2, profile="test")
        assert result == pytest.approx(math.pi, abs=1e-6)

    def test_jacobi_solves_the_system(self):
        spec = get_app("jacobi")
        inputs = spec.inputs("test")
        x = spec.run(Mode.HYBRID, threads=2, profile="test")
        a = np.array(inputs["a"])
        b = np.array(inputs["b"])
        assert np.allclose(a @ np.asarray(x), b, atol=1e-3)

    def test_lu_matches_scipy_reconstruction(self):
        spec = get_app("lu")
        result = np.array(spec.run(Mode.COMPILED_DT, threads=2,
                                   profile="test"))
        n = result.shape[0]
        lower = np.tril(result, -1) + np.eye(n)
        upper = np.triu(result)
        from repro.apps.lu import make_matrix
        original = np.array(make_matrix(n))
        # scipy's permuted LU reconstructs the same matrix.
        p, l_ref, u_ref = scipy.linalg.lu(original)
        assert np.allclose(lower @ upper, p @ l_ref @ u_ref, atol=1e-6)

    def test_fft_matches_numpy(self):
        spec = get_app("fft")
        inputs = spec.inputs("test")
        signal = np.asarray(inputs["re"]) + 1j * np.asarray(inputs["im"])
        re, im = spec.run(Mode.HYBRID, threads=2, profile="test")
        got = np.asarray(re) + 1j * np.asarray(im)
        assert np.allclose(got, np.fft.fft(signal), atol=1e-6)

    def test_fft_dt_matches_numpy(self):
        spec = get_app("fft")
        inputs = spec.inputs("test", dt=True)
        signal = inputs["re"] + 1j * inputs["im"]
        re, im = spec.run(Mode.COMPILED_DT, threads=3, profile="test")
        assert np.allclose(np.asarray(re) + 1j * np.asarray(im),
                           np.fft.fft(signal), atol=1e-6)

    def test_qsort_sorts(self):
        spec = get_app("qsort")
        inputs = spec.inputs("test")
        result = spec.run(Mode.HYBRID, threads=4, profile="test")
        assert result == sorted(inputs["data"])

    def test_bfs_matches_networkx_reachability(self):
        spec = get_app("bfs")
        inputs = spec.inputs("test")
        grid, n = inputs["grid"], inputs["n"]
        graph = nx.Graph()
        for row in range(n):
            for col in range(n):
                if grid[row][col] == 0:
                    graph.add_node((row, col))
                    for dr, dc in ((1, 0), (0, 1)):
                        nr, nc = row + dr, col + dc
                        if nr < n and nc < n and grid[nr][nc] == 0:
                            graph.add_edge((row, col), (nr, nc))
        reachable = nx.node_connected_component(graph, (0, 0))
        reached, count = spec.run(Mode.HYBRID, threads=4, profile="test")
        assert count == len(reachable)
        assert reached == ((n - 1, n - 1) in reachable)

    def test_clustering_matches_networkx(self):
        from repro.apps.clustering import verify_against_networkx
        spec = get_app("clustering")
        inputs = spec.inputs("test")
        result = spec.run(Mode.HYBRID, threads=3, profile="test")
        assert verify_against_networkx(result, inputs["graph"],
                                       inputs["nodes"])

    def test_wordcount_matches_counter(self):
        spec = get_app("wordcount")
        inputs = spec.inputs("test")
        expected = collections.Counter(
            word for line in inputs["corpus"] for word in line.split())
        result = spec.run(Mode.HYBRID, threads=4, profile="test")
        assert result == dict(expected)

    def test_md_conserves_energy_approximately(self):
        spec = get_app("md")
        potential, kinetic = spec.run(Mode.COMPILED_DT, threads=2,
                                      profile="test")
        assert potential > 0
        assert kinetic > 0


class TestSchedulingVariants:
    """The fig7 kernels honour the runtime schedule ICV."""

    @pytest.mark.parametrize("policy", ["static", "dynamic", "guided"])
    def test_wordcount_all_policies(self, policy, references):
        from repro.cruntime import cruntime
        spec = get_app("wordcount")
        cruntime.set_schedule(policy, 8)
        try:
            result = spec.run(Mode.HYBRID, threads=3, profile="test")
        finally:
            cruntime.set_schedule("static")
        assert spec.verify(result, references["wordcount"])

    @pytest.mark.parametrize("policy", ["static", "dynamic", "guided"])
    def test_clustering_all_policies(self, policy, references):
        from repro.cruntime import cruntime
        spec = get_app("clustering")
        cruntime.set_schedule(policy, 16)
        try:
            result = spec.run(Mode.HYBRID, threads=3, profile="test")
        finally:
            cruntime.set_schedule("static")
        assert spec.verify(result, references["clustering"])


class TestPyOMPBaselineBehaviour:
    def test_supported_apps_compile(self):
        for name in ("pi", "jacobi", "lu", "md", "fft"):
            spec = get_app(name)
            assert callable(spec.pyomp_variant())

    def test_pi_pyomp_runs_correctly(self):
        import math
        spec = get_app("pi")
        fn = spec.pyomp_variant()
        inputs = spec.inputs("test", dt=True)
        assert fn(threads=2, **inputs) == pytest.approx(math.pi,
                                                        abs=1e-6)

    @pytest.mark.parametrize("name,reason", [
        ("qsort", "if clause"),
        ("clustering", "Numba type"),
        ("wordcount", "dict"),
    ])
    def test_unsupported_apps_fail_to_compile(self, name, reason):
        from repro.pyomp import PyOMPCompileError
        spec = get_app(name)
        with pytest.raises(PyOMPCompileError, match=reason):
            spec.pyomp_variant()

    def test_bfs_fails_at_runtime(self):
        from repro.pyomp import PyOMPInternalError
        spec = get_app("bfs")
        with pytest.raises(PyOMPInternalError, match="Numba"):
            spec.pyomp_variant()
