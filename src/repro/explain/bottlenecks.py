"""Bottleneck taxonomy: name the cause of lost parallelism.

Each finding attributes lost thread-seconds to one named cause at a
user source line (via the origin registry, so sites inside generated
``<omp4py:...>`` code resolve to the user's editor coordinates):

* ``serial-fraction`` — span outside every parallel region (Amdahl's
  law caps the speedup at ``1/s``);
* ``lock-convoy`` — threads queueing on one mutex (critical/atomic/
  lock), with a "what-if this lock were free" critical-path rerun;
* ``barrier-imbalance`` — threads arriving at a barrier at spread-out
  times, so early arrivals idle;
* ``steal-starvation`` — task-region threads idling at taskwait/join
  while work exists but isn't reachable by stealing;
* ``ordered-serialization`` — an ``ordered`` clause forcing loop
  iterations into sequential order;
* ``gil-serialization`` — the gap between measured wall time and the
  projection model's no-GIL estimate (gil backend only; the cross
  check against the nogil backend split of docs/projection.md);
* ``plan-execution`` — informational: the run executed inspector–
  executor plans (``repro.plan``), so shared updates were scheduled
  conflict-free by coloring instead of queueing on a mutex — the
  convoy is fixed by the plan, not hidden.

When a sampling-profiler report (``repro.sampling``) rides along and
one directive dominates the on-CPU samples, the dominant finding is
annotated with that directive's top sampled frames — the classifier
names the cause, the sampler names the exact lines burning the time.

``lost_s`` is thread-seconds (summed across threads); ``fraction``
normalizes by ``span × nthreads`` so findings are comparable across
runs.
"""

from __future__ import annotations

import dataclasses

from repro.explain.dag import DagAnalysis, build_dag

#: Findings below this fraction of total thread-time are noise.
MIN_FRACTION = 0.005


@dataclasses.dataclass
class Finding:
    """One attributed cause of lost parallelism."""

    category: str
    lost_s: float
    fraction: float
    message: str
    location: str | None = None
    directive: str | None = None
    extra: dict = dataclasses.field(default_factory=dict)

    def as_dict(self) -> dict:
        payload = {
            "category": self.category,
            "lost_s": self.lost_s,
            "fraction": self.fraction,
            "message": self.message,
            "location": self.location,
            "directive": self.directive,
        }
        if self.extra:
            payload.update(self.extra)
        return payload


def _site_str(site) -> str | None:
    if not site:
        return None
    from repro.diagnostics.origin import format_location
    return format_location(site[0], site[1])


def _mutex_directive(kind) -> str:
    return {"critical": "critical", "atomic": "atomic",
            "lock": "omp_set_lock", "nest_lock": "omp_set_nest_lock",
            }.get(kind, str(kind))


def classify(analysis: DagAnalysis, *, nthreads: int,
             wall: float | None = None, measurement=None,
             events=None, samples=None) -> list[Finding]:
    """Rank the causes of lost parallelism, worst first.

    ``events`` (the raw trace) enables the lock-convoy what-if rerun;
    ``measurement`` (an :class:`~repro.analysis.timing.Measurement`)
    enables the gil-serialization cross-check; ``samples`` (a
    :meth:`repro.sampling.sampler.Sampler.report` payload) enables the
    sampled hot-frame annotation.
    """
    findings: list[Finding] = []
    span = analysis.span_s
    nthreads = max(1, nthreads)
    budget = span * nthreads  # total thread-seconds in the recording
    if budget <= 0:
        return findings

    # -- serial fraction -------------------------------------------------
    serial = analysis.serial_s
    if serial > 0:
        s = analysis.serial_fraction
        ceiling = 1.0 / (s + (1.0 - s) / nthreads) if s < 1.0 else 1.0
        lost = serial * (nthreads - 1)
        site = None
        for meta in analysis.regions.values():
            if meta["site"]:
                site = meta["site"]
                break
        findings.append(Finding(
            category="serial-fraction", lost_s=lost,
            fraction=lost / budget,
            message=(f"{serial:.4f}s of the {span:.4f}s span runs "
                     f"outside every parallel region; Amdahl caps the "
                     f"speedup at {ceiling:.2f}x on {nthreads} "
                     f"threads"),
            location=_site_str(site), directive="parallel",
            extra={"serial_s": serial, "serial_fraction": s,
                   "amdahl_ceiling": ceiling}))

    # -- lock convoy -----------------------------------------------------
    for handle, entry in sorted(analysis.mutexes.items(),
                                key=lambda item: item[1]["wait_s"],
                                reverse=True):
        if entry["wait_s"] <= 0:
            continue
        kind = handle[0] if handle else "mutex"
        what_if = None
        if events is not None:
            # Optimistic (zero-weight causal) DAGs on both sides: the
            # dependency-chain shortening a removed lock would buy.
            baseline = build_dag(events, causal_elapsed=False)
            freed = build_dag(events, free_mutexes={handle},
                              causal_elapsed=False)
            what_if = max(0.0, baseline.critical_path_s
                          - freed.critical_path_s)
        name = handle[1] if len(handle) > 1 else ""
        label = f"{kind}" + (f"({name})" if name not in ("", "atomic")
                             and kind == "critical" else "")
        message = (f"{entry['wait_s']:.4f}s queueing on {label} "
                   f"({entry['contended']} of {entry['count']} "
                   f"acquisitions contended)")
        if what_if is not None:
            message += (f"; a free {kind} would shorten the critical "
                        f"path by {what_if:.4f}s")
        findings.append(Finding(
            category="lock-convoy", lost_s=entry["wait_s"],
            fraction=entry["wait_s"] / budget, message=message,
            location=_site_str(entry["site"]),
            directive=_mutex_directive(kind),
            extra={"mutex_kind": kind,
                   "acquisitions": entry["count"],
                   "contended": entry["contended"],
                   "what_if_critical_path_gain_s": what_if}))

    # -- barrier imbalance -----------------------------------------------
    for site, entry in sorted(analysis.barrier_sites.items(),
                              key=lambda item: item[1]["wait_s"],
                              reverse=True):
        if entry["wait_s"] <= 0:
            continue
        findings.append(Finding(
            category="barrier-imbalance", lost_s=entry["wait_s"],
            fraction=entry["wait_s"] / budget,
            message=(f"{entry['wait_s']:.4f}s of barrier wait over "
                     f"{entry['count']} barrier instance(s); arrival "
                     f"spread {entry['spread_s']:.4f}s — threads "
                     f"finish their shares at different times"),
            location=_site_str(site), directive="barrier",
            extra={"instances": entry["count"],
                   "arrival_spread_s": entry["spread_s"]}))

    # -- implicit join imbalance (folded into barrier category) ----------
    if analysis.join_wait_s > 0 and analysis.regions:
        site = None
        for meta in analysis.regions.values():
            if meta["site"]:
                site = meta["site"]
                break
        findings.append(Finding(
            category="barrier-imbalance", lost_s=analysis.join_wait_s,
            fraction=analysis.join_wait_s / budget,
            message=(f"{analysis.join_wait_s:.4f}s waiting at the "
                     f"implicit region join — uneven member "
                     f"workloads"),
            location=_site_str(site), directive="parallel",
            extra={"join_wait_s": analysis.join_wait_s}))

    # -- steal starvation -------------------------------------------------
    if analysis.tasks_submitted and analysis.taskwait_s > 0:
        total_steals = sum(analysis.steals_by_thread.values())
        idle_threads = [t for t in analysis.threads
                        if analysis.steals_by_thread.get(t, 0) == 0]
        site = None
        for meta in analysis.regions.values():
            if meta["site"]:
                site = meta["site"]
                break
        findings.append(Finding(
            category="steal-starvation", lost_s=analysis.taskwait_s,
            fraction=analysis.taskwait_s / budget,
            message=(f"{analysis.taskwait_s:.4f}s inside taskwait "
                     f"across {analysis.tasks_submitted} tasks; "
                     f"{total_steals} steals, "
                     f"{len(idle_threads)} thread(s) never stole — "
                     f"task granularity or deque locality limits "
                     f"work distribution"),
            location=_site_str(site), directive="taskwait",
            extra={"taskwait_s": analysis.taskwait_s,
                   "tasks": analysis.tasks_submitted,
                   "steals": total_steals}))

    # -- ordered serialization --------------------------------------------
    for site, entry in sorted(analysis.ordered_sites.items(),
                              key=lambda item: item[1]["wait_s"],
                              reverse=True):
        if entry["wait_s"] <= 0:
            continue
        findings.append(Finding(
            category="ordered-serialization", lost_s=entry["wait_s"],
            fraction=entry["wait_s"] / budget,
            message=(f"{entry['wait_s']:.4f}s waiting for iteration "
                     f"order over {entry['count']} ordered "
                     f"region(s) — the clause serializes the loop"),
            location=_site_str(site), directive="ordered",
            extra={"ordered_regions": entry["count"]}))

    # -- GIL serialization -------------------------------------------------
    if measurement is not None and wall is not None \
            and getattr(measurement, "backend", None) == "gil" \
            and measurement.model_projected is not None:
        gil_lost_wall = max(0.0, wall - measurement.model_projected)
        if gil_lost_wall > 0:
            site = None
            busiest = None
            for meta in analysis.regions.values():
                width = ((meta["end"] or meta["begin"])
                         - meta["begin"]) * meta["size"]
                if busiest is None or width > busiest:
                    busiest = width
                    site = meta["site"]
            findings.append(Finding(
                category="gil-serialization",
                lost_s=gil_lost_wall * nthreads,
                fraction=min(1.0, gil_lost_wall / max(wall, 1e-12)),
                message=(f"the GIL serializes {gil_lost_wall:.4f}s of "
                         f"the {wall:.4f}s wall time — a free-threaded "
                         f"interpreter (projection model) would run "
                         f"this in ~{measurement.model_projected:.4f}s"
                         ),
                location=_site_str(site), directive="parallel",
                extra={"wall_s": wall,
                       "model_projected_s":
                           measurement.model_projected}))

    findings = [f for f in findings if f.fraction >= MIN_FRACTION
                or f.lost_s >= 0.05]
    findings.sort(key=lambda f: f.lost_s, reverse=True)

    # -- plan execution (informational, exempt from the noise filter) -----
    # A planned run replaces its criticals outright, so there is no
    # convoy left to measure; the finding names the cure so the report
    # never reads as "nothing found" for an inspector–executor run.
    for source, entry in sorted(analysis.plans.items()):
        findings.append(Finding(
            category="plan-execution", lost_s=0.0, fraction=0.0,
            message=(f"convoy fixed by plan '{source}': "
                     f"{entry['executions']} execution(s) of "
                     f"{entry['partitions']} partition(s) in "
                     f"{entry['colors']} color(s) over "
                     f"{entry['conflict_edges']} conflict edge(s) — "
                     f"shared updates ran lock-free, scheduled by "
                     f"coloring instead of a mutex"),
            location=_site_str(entry["site"]), directive="plan",
            extra={"plan_source": source,
                   "executions": entry["executions"],
                   "partitions": entry["partitions"],
                   "colors": entry["colors"],
                   "conflict_edges": entry["conflict_edges"]}))

    if samples:
        _attach_samples(findings, samples)
    return findings


#: A directive must hold at least this share of the on-CPU samples
#: before the sampler's evidence is quoted.
SAMPLE_DOMINANCE = 0.5


def _attach_samples(findings: list[Finding], samples: dict) -> None:
    """Annotate with sampling evidence when one directive dominates.

    The sampler's estimate is orthogonal to the trace-derived numbers:
    the classifier says *why* time was lost, the samples say *where
    the CPU actually was*.  Quoting the top frames turns "the critical
    path is this loop" into "and these are the three lines inside it".
    """
    directives = samples.get("directives") or {}
    total_self = sum(entry.get("self", 0)
                     for entry in directives.values())
    if total_self <= 0:
        return
    label, entry = max(directives.items(),
                       key=lambda item: item[1].get("self", 0))
    share = entry.get("self", 0) / total_self
    if share < SAMPLE_DOMINANCE:
        return
    hot = (samples.get("hot_frames") or {}).get(label) or []
    top = [item["frame"] for item in hot[:3]]
    evidence = {"sampled_directive": label,
                "sampled_self_share": share,
                "sampled_self_s": entry.get("self_s"),
                "sampled_top_frames": top}
    note = (f"sampling: {label} holds {share:.0%} of on-CPU samples")
    if top:
        note += f"; hottest frames: {', '.join(top)}"
    for finding in findings:
        if finding.category != "plan-execution":
            finding.message += f" [{note}]"
            finding.extra.update(evidence)
            return
    findings.append(Finding(
        category="sampled-hotspot",
        lost_s=entry.get("self_s") or 0.0, fraction=0.0,
        message=(f"{note} — no trace-derived finding to pin it on, "
                 f"reported standalone"),
        location=None, directive=label, extra=evidence))
