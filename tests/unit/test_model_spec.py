"""Unit tests for the directive model and the declarative spec."""

import pytest

from repro.directives.model import Clause, Directive
from repro.directives.spec import (ArgShape, CLAUSES, DIRECTIVES,
                                   REDUCTION_OPERATORS, match_directive)


class TestClause:
    def test_str_bare(self):
        assert str(Clause("nowait")) == "nowait"

    def test_str_varlist(self):
        assert str(Clause("private", vars=("a", "b"))) == "private(a, b)"

    def test_str_expr(self):
        assert str(Clause("if", expr="n > 1")) == "if(n > 1)"

    def test_str_reduction(self):
        clause = Clause("reduction", op="+", vars=("x", "y"))
        assert str(clause) == "reduction(+: x, y)"

    def test_str_schedule(self):
        clause = Clause("schedule", op="dynamic", expr="4")
        assert str(clause) == "schedule(dynamic, 4)"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Clause("nowait").name = "other"


class TestDirective:
    def build(self):
        return Directive(
            name="parallel",
            clauses=(Clause("private", vars=("a",)),
                     Clause("private", vars=("b",)),
                     Clause("if", expr="n")),
            source="parallel ...")

    def test_clause_returns_first(self):
        directive = self.build()
        assert directive.clause("private").vars == ("a",)

    def test_clause_missing_is_none(self):
        assert self.build().clause("schedule") is None

    def test_all_clauses(self):
        assert len(self.build().all_clauses("private")) == 2

    def test_clause_vars_merges(self):
        assert self.build().clause_vars("private") == ("a", "b")

    def test_has_clause(self):
        directive = self.build()
        assert directive.has_clause("if")
        assert not directive.has_clause("nowait")

    def test_str_with_arguments(self):
        directive = Directive(name="critical", arguments=("name",))
        assert str(directive) == "critical(name)"


class TestSpecConsistency:
    def test_every_directive_clause_is_defined(self):
        for spec in DIRECTIVES.values():
            for clause_name in spec.clauses:
                assert clause_name in CLAUSES, (
                    f"{spec.name} references unknown clause "
                    f"{clause_name}")

    def test_exclusive_pairs_reference_valid_clauses(self):
        for spec in DIRECTIVES.values():
            for left, right in spec.exclusive:
                assert left in spec.clauses
                assert right in spec.clauses

    def test_standalone_directives(self):
        standalone = {name for name, spec in DIRECTIVES.items()
                      if spec.standalone}
        assert standalone == {"barrier", "taskwait", "flush",
                              "threadprivate", "declare reduction"}

    def test_match_directive_longest_wins(self):
        assert match_directive(["parallel", "for"]) == "parallel for"
        assert match_directive(["parallel", "private"]) == "parallel"
        assert match_directive(["nonsense"]) is None

    def test_reduction_operator_set(self):
        assert "+" in REDUCTION_OPERATORS
        assert "min" in REDUCTION_OPERATORS
        assert "%" not in REDUCTION_OPERATORS

    def test_clause_shapes_are_coherent(self):
        assert CLAUSES["private"].shape is ArgShape.VARLIST
        assert CLAUSES["if"].shape is ArgShape.EXPR
        assert CLAUSES["nowait"].shape is ArgShape.OPT_EXPR
        assert CLAUSES["reduction"].repeatable
        assert not CLAUSES["schedule"].repeatable
