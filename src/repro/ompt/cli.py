"""``python -m repro.profile`` — run an app under full instrumentation.

Runs one registered benchmark app with the tracer and a metrics tool
attached, then writes three artifacts into ``--out``:

* ``<app>_<mode>_trace.json`` — Chrome trace-event JSON; open it in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
* ``<app>_<mode>_metrics.prom`` — Prometheus text exposition dump.
* ``<app>_<mode>_metrics.json`` — the structured observability report
  (per-thread chunks/iterations, barrier wait, task latencies, mutex
  contention, per-region projection imbalance) plus the measurement.

With ``--sample`` the sampling profiler (:mod:`repro.sampling`) runs
alongside and two more artifacts appear: ``<app>_<mode>_samples.
collapsed`` (folded stacks for flamegraph tools) and ``<app>_<mode>_
samples.speedscope.json`` (open at https://speedscope.app).

``--merge`` unions per-rank MPI trace files (``trace.rank<k>.json``)
into one Chrome trace with one process lane per rank.

Usage::

    python -m repro.profile pi --threads 4
    python -m repro.profile qsort --mode pure --profile test --out prof
    python -m repro.profile qsort --sample --sample-hz 200
    python -m repro.profile --merge out/trace.rank*.json --out merged
    python -m repro.profile --list
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.analysis.timing import measure
from repro.apps import get_app, list_apps
from repro.decorator import runtime_for
from repro.modes import Mode
from repro.ompt.exporters import (chrome_trace, metrics_report,
                                  prometheus_text, validate_chrome_trace)
from repro.ompt.metrics import MetricsTool
from repro.runtime.trace import TraceSummary


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("app", nargs="?",
                        help="registered app name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list registered apps and exit")
    parser.add_argument("--mode", default="hybrid",
                        help="execution mode (pure/hybrid/compiled/"
                             "compileddt)")
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--profile", default="test",
                        choices=("test", "default", "paper"),
                        help="problem-size profile")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--out", default="results/profile",
                        help="artifact output directory")
    parser.add_argument("--trace-capacity", type=int, default=None,
                        help="override the tracer's event-buffer bound")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero when the trace dropped "
                             "events (incomplete artifacts)")
    parser.add_argument("--sample", action="store_true",
                        help="run the sampling profiler alongside; "
                             "writes collapsed + speedscope artifacts")
    parser.add_argument("--sample-hz", type=float, default=None,
                        help="sampling rate for --sample "
                             "(default: OMP4PY_PROFILE_HZ or 200)")
    parser.add_argument("--merge", nargs="+", metavar="TRACE",
                        help="merge per-rank trace JSON files into "
                             "one timeline (writes trace.merged.json "
                             "into --out) and exit")
    return parser


def profile_app(app: str, mode: Mode, threads: int, profile: str,
                repeats: int = 1, trace_capacity: int | None = None):
    """Run ``app`` instrumented; return ``(measurement, report, trace,
    prometheus)``.

    ``report`` is the structured metrics JSON (with the measurement
    merged in), ``trace`` the Chrome trace document, and ``prometheus``
    the text exposition dump of the same registry.
    """
    spec = get_app(app)
    variant = spec.variant(mode)
    runtime = runtime_for(mode)
    tool = MetricsTool()
    tracer = runtime.tracer
    old_capacity = tracer.capacity
    if trace_capacity is not None:
        tracer.capacity = trace_capacity
    runtime.attach_tool(tool)
    tracer.start()
    try:
        def make_args():
            inputs = spec.inputs(profile, dt=(mode is Mode.COMPILED_DT))
            inputs["threads"] = threads
            return (), inputs

        measurement = measure(variant, runtime=runtime, repeats=repeats,
                              make_args=make_args)
    finally:
        events = tracer.stop()
        tracer.capacity = old_capacity
        runtime.detach_tool(tool)
    summary = TraceSummary(events)
    report = metrics_report(tool.registry, runtime.stats.snapshot(),
                            trace_summary=summary)
    report["run"] = {
        "app": app, "mode": mode.value, "threads": threads,
        "profile": profile, "repeats": repeats,
        "wall_s": measurement.wall,
        "projected_s": measurement.projected,
        "serialized_cpu_s": measurement.serialized_cpu,
        "critical_cpu_s": measurement.critical_cpu,
        "regions": measurement.regions,
    }
    trace = chrome_trace(events, dropped=events.dropped,
                         metadata={"app": app, "mode": mode.value,
                                   "threads": threads})
    return measurement, report, trace, prometheus_text(tool.registry)


def _print_summary(report: dict, out=None) -> None:
    out = out if out is not None else sys.stdout
    run = report["run"]
    print(f"[profile] {run['app']} ({run['mode']}, "
          f"{run['threads']} threads): wall {run['wall_s']:.4f}s, "
          f"projected {run['projected_s']:.4f}s", file=out)
    chunks = report["per_thread"]["chunks"]
    iterations = report["per_thread"]["iterations"]
    if chunks:
        print("[profile] chunks per thread:    "
              + "  ".join(f"t{t}={n}" for t, n in chunks.items()),
              file=out)
    if iterations:
        print("[profile] iterations per thread: "
              + "  ".join(f"t{t}={n}" for t, n in iterations.items()),
              file=out)
    barrier = report["barrier_wait"]
    if barrier["count"]:
        print(f"[profile] barrier wait: {barrier['sum_s']:.4f}s total "
              f"over {barrier['count']} waits", file=out)
    latency = report["task_latency"]
    if latency["count"]:
        print(f"[profile] task latency: mean {latency['mean_s']:.6f}s, "
              f"max {latency['max_s']:.6f}s over {latency['count']} "
              f"tasks", file=out)
    imbalance = report["imbalance"]
    if imbalance["max"] is not None:
        print(f"[profile] load imbalance (max_cpu/mean_cpu): "
              f"worst {imbalance['max']:.2f}, "
              f"mean {imbalance['mean']:.2f}", file=out)


def merge_main(paths, out: str) -> int:
    """The ``--merge`` entry: union rank traces into one document."""
    from repro.ompt.exporters import merge_chrome_traces
    payloads = []
    for path in paths:
        payloads.append(json.loads(
            pathlib.Path(path).read_text(encoding="utf-8")))
    merged = merge_chrome_traces(payloads)
    out_path = pathlib.Path(out)
    if out_path.suffix == ".json":
        out_path.parent.mkdir(parents=True, exist_ok=True)
    else:
        out_path.mkdir(parents=True, exist_ok=True)
        out_path = out_path / "trace.merged.json"
    out_path.write_text(json.dumps(merged), encoding="utf-8")
    problems = validate_chrome_trace(merged)
    print(f"[profile] merged {len(payloads)} rank trace(s), "
          f"{merged['otherData']['events']} events -> {out_path}")
    if merged["otherData"]["unaligned_ranks"]:
        print(f"[profile] WARNING: rank(s) "
              f"{merged['otherData']['unaligned_ranks']} had no epoch "
              f"anchor; their timestamps are not aligned",
              file=sys.stderr)
    if problems:
        print(f"[profile] WARNING: merged trace schema problems: "
              f"{problems[:3]}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        print("\n".join(list_apps()))
        return 0
    if args.merge:
        return merge_main(args.merge, args.out)
    if not args.app:
        build_parser().error("app name required (or --list)")
    mode = Mode.parse(args.mode)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    sampler = None
    if args.sample or args.sample_hz is not None:
        from repro import env
        from repro.sampling.sampler import Sampler
        hz = args.sample_hz or env.profile_hz()
        sampler = Sampler(runtime_for(mode),
                          interval=1.0 / hz).start()
    try:
        _measurement, report, trace, prometheus = profile_app(
            args.app, mode, args.threads, args.profile,
            repeats=args.repeats, trace_capacity=args.trace_capacity)
    finally:
        if sampler is not None:
            sampler.stop()

    stem = f"{args.app}_{mode.value}"
    trace_path = out_dir / f"{stem}_trace.json"
    prom_path = out_dir / f"{stem}_metrics.prom"
    json_path = out_dir / f"{stem}_metrics.json"
    trace_path.write_text(json.dumps(trace), encoding="utf-8")
    json_path.write_text(json.dumps(report, indent=2), encoding="utf-8")
    prom_path.write_text(prometheus, encoding="utf-8")

    dropped = trace["otherData"]["dropped_events"]
    if dropped:
        print(f"[profile] WARNING: trace truncated — {dropped} event(s) "
              f"dropped; raise --trace-capacity for a complete trace",
              file=sys.stderr)
    problems = validate_chrome_trace(trace)
    if problems:  # pragma: no cover - exporter guarantees schema
        print(f"[profile] WARNING: trace schema problems: {problems[:3]}",
              file=sys.stderr)
    _print_summary(report)
    artifacts = [trace_path, prom_path, json_path]
    if sampler is not None:
        from repro.sampling.exporters import (write_collapsed,
                                              write_speedscope)
        collapsed_path = out_dir / f"{stem}_samples.collapsed"
        speedscope_path = out_dir / f"{stem}_samples.speedscope.json"
        write_collapsed(collapsed_path, sampler.store)
        write_speedscope(speedscope_path, sampler.store,
                         interval=sampler.interval,
                         name=f"{args.app} ({mode.value})")
        artifacts += [collapsed_path, speedscope_path]
        by_state = dict(sampler.store.by_state)
        print(f"[profile] samples: {sampler.store.total} "
              f"({by_state}) at {1.0 / sampler.interval:.0f} Hz")
        for label, entry in sorted(
                sampler.store.directive_summary(
                    sampler.interval).items(),
                key=lambda item: -item[1]["self"]):
            print(f"[profile]   {label}: ~{entry['self_s']:.4f}s "
                  f"self-CPU, ~{entry['wait_s']:.4f}s waiting")
    print(f"[profile] artifacts: "
          + ", ".join(str(path) for path in artifacts))
    if args.strict and dropped:
        print(f"[profile] STRICT: failing — {dropped} dropped event(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
