"""Tokenizer for OpenMP directive strings.

The directive sub-language is tiny: identifiers, integers, a handful of
reduction operator symbols, parentheses, and separators.  Expression
arguments (``if(n > 100)``, ``num_threads(2 * k)``, ``schedule(dynamic,
n // 10)``) are *not* tokenized here — the parser captures them as raw
balanced-parenthesis text and defers to :func:`ast.parse`, exactly the
split a C OpenMP front end makes between pragma tokens and C expressions.
"""

from __future__ import annotations

import dataclasses
import enum
import re

from repro.errors import OmpSyntaxError


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    COLON = ":"
    SEMICOLON = ";"
    OPERATOR = "operator"
    #: Any other character.  Never accepted by the directive grammar, but
    #: tolerated by the lexer because expression arguments (raw-captured
    #: straight from the character stream) may contain arbitrary Python.
    OTHER = "other"
    END = "end"


#: Multi-character operators first so maximal munch works.
_OPERATORS = ("&&", "||", "+", "*", "-", "&", "|", "^")

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<number>\d+)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<colon>:)
  | (?P<semicolon>;)
  | (?P<operator>&&|\|\||[+*\-&|^])
  | (?P<other>\S)
    """,
    re.VERBOSE,
)


@dataclasses.dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    pos: int

    def is_ident(self, *names: str) -> bool:
        return self.kind is TokenKind.IDENT and (
            not names or self.text in names)


def tokenize(text: str) -> list[Token]:
    """Tokenize a directive string, raising on unknown characters."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match.lastgroup != "ws":
            kind = {
                "ident": TokenKind.IDENT,
                "number": TokenKind.NUMBER,
                "lparen": TokenKind.LPAREN,
                "rparen": TokenKind.RPAREN,
                "comma": TokenKind.COMMA,
                "colon": TokenKind.COLON,
                "semicolon": TokenKind.SEMICOLON,
                "operator": TokenKind.OPERATOR,
                "other": TokenKind.OTHER,
            }[match.lastgroup]
            tokens.append(Token(kind, match.group(), pos))
        pos = match.end()
    tokens.append(Token(TokenKind.END, "", len(text)))
    return tokens


class TokenStream:
    """Cursor over a token list with the lookahead the parser needs."""

    def __init__(self, text: str):
        self.text = text
        self._tokens = tokenize(text)
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.END:
            self._index += 1
        return token

    def expect(self, kind: TokenKind, what: str) -> Token:
        if self.current.kind is not kind:
            found = self.current.text or "end of directive"
            raise OmpSyntaxError(f"expected {what}, found {found!r}",
                                 directive=self.text)
        return self.advance()

    def at_end(self) -> bool:
        return self.current.kind is TokenKind.END

    def raw_until_balanced_rparen(self) -> str:
        """Consume raw text up to the ``)`` matching an already-consumed
        ``(`` and return it (the ``)`` is consumed, not included).

        Used for expression arguments: the returned substring is later
        handed to :func:`ast.parse`.  Re-lexes from the character stream
        so arbitrary Python expressions survive untouched.
        """
        start = self.current.pos
        depth = 1
        pos = start
        text = self.text
        while pos < len(text):
            ch = text[pos]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    break
            elif ch in "\"'":
                # Skip string literals so parentheses inside them are
                # not counted.
                quote = ch
                pos += 1
                while pos < len(text) and text[pos] != quote:
                    pos += 2 if text[pos] == "\\" else 1
            pos += 1
        else:
            raise OmpSyntaxError("unbalanced parentheses",
                                 directive=self.text)
        raw = text[start:pos]
        # Re-synchronise the token cursor to just after the ')'.
        self._tokens = tokenize(text[pos + 1:])
        for token in self._tokens:
            object.__setattr__(token, "pos", token.pos + pos + 1)
        self._index = 0
        return raw
