"""Thread teams and the task-draining barrier.

A team is created by every ``parallel`` directive (including serialized
ones of size 1).  Its barrier implements the semantics the paper
describes: threads arriving early consume pending tasks from the team's
work-stealing deques instead of idling, are reawakened when new tasks
are submitted while they wait, and the barrier releases only once every
thread has arrived *and* every task of the team has completed.

Synchronization is event-driven.  Task submission, task completion, and
the final arrival each signal the barrier's condition variable
(:meth:`Barrier.poke`); waiters re-check the release predicate and the
deques under the condition lock before sleeping, so no wake-up can slip
between the check and the wait.  The ``timeout`` passed to the
condition wait is a bounded exponential backoff (``BACKOFF_MIN`` up to
``BACKOFF_MAX``) kept only as a safety net for team breakage observed
outside the lock — it is not the signalling mechanism, and tests can
disable it (:attr:`Barrier.use_fallback`) to prove liveness.
"""

from __future__ import annotations

import threading

from repro.runtime.tasking import WorkStealingScheduler

#: Bounds of the exponential-backoff safety net, in seconds.  Every
#: hot-path wait in the runtime (barrier, taskwait, dependence waits,
#: ordered, copyprivate) uses these: the first fallback wake-up comes
#: after 1 ms and the interval doubles to a 100 ms ceiling, so a missed
#: signal costs little and an idle waiter costs near nothing.
BACKOFF_MIN = 0.001
BACKOFF_MAX = 0.1


def next_backoff(backoff: float) -> float:
    """Advance one step of the bounded exponential backoff."""
    backoff *= 2
    return backoff if backoff < BACKOFF_MAX else BACKOFF_MAX


class Barrier:
    """Generation-counted barrier that drains the team's task deques."""

    __slots__ = ("team", "cond", "count", "generation", "waiters",
                 "use_fallback")

    def __init__(self, team):
        self.team = team
        self.cond = threading.Condition()
        self.count = 0
        self.generation = 0
        #: Threads currently blocked in ``cond.wait``; maintained under
        #: the condition lock, read by :meth:`poke`'s caller contract.
        self.waiters = 0
        #: When ``False`` waiters sleep without the backoff timeout —
        #: used by the regression tests to prove the signalling protocol
        #: alone keeps the runtime live.
        self.use_fallback = True

    def wait(self, run_task, thread_num: int) -> None:
        """Block until the whole team arrives and all tasks are done.

        ``run_task(team, thread_num)`` is the runtime callback that
        claims and executes one task from the team's scheduler (it lives
        on the runtime, not here, because it must push a context frame
        and fire the steal instrumentation); it returns ``False`` when
        no task was claimable.

        A *broken* team (a member left the region via an exception, so
        barrier arrivals can no longer match up) releases every waiter
        immediately — the join will re-raise the recorded error.
        """
        team = self.team
        if team.broken:
            return
        if team.size == 1 and team.pending.load() == 0:
            return
        cond = self.cond
        with cond:
            self.count += 1
            my_generation = self.generation
            if self.count >= team.size and team.pending.load() == 0:
                # Last arrival with no outstanding tasks: release
                # immediately, without a signalling round-trip.
                self.generation += 1
                self.count = 0
                cond.notify_all()
                return
        scheduler = team.scheduler
        diag = team.runtime.diag
        record = None
        if diag is not None:
            record = diag.block_enter("barrier", id(self), team=team,
                                      thread_num=thread_num,
                                      detail=my_generation)
        backoff = BACKOFF_MIN
        try:
            while True:
                if team.broken:
                    with cond:
                        cond.notify_all()
                    return
                if run_task(team, thread_num):
                    backoff = BACKOFF_MIN
                    continue
                with cond:
                    # Register as a sleeper *before* the re-checks:
                    # pokers mutate the scheduler/pending state before
                    # reading ``waiters``, so observing zero sleepers
                    # there implies this re-check sees their state
                    # change (see ``poke``).
                    self.waiters += 1
                    try:
                        if self.generation != my_generation:
                            return
                        if (self.count >= team.size
                                and team.pending.load() == 0):
                            self.generation += 1
                            self.count = 0
                            cond.notify_all()
                            return
                        if not scheduler.has_work():
                            # Signalled by poke (new task, task
                            # completion) or by the releasing arrival;
                            # the timeout is the bounded-backoff safety
                            # net only.
                            if record is not None:
                                record.sleeping = True
                            cond.wait(timeout=backoff
                                      if self.use_fallback else None)
                            if record is not None:
                                record.sleeping = False
                    finally:
                        self.waiters -= 1
                backoff = next_backoff(backoff)
        finally:
            if record is not None:
                diag.block_exit()

    def poke(self) -> None:
        """Wake barrier waiters after a task submission or completion.

        The check runs under the condition lock: callers change the
        observable state (deque push, ``pending`` decrement) *before*
        poking, and waiters register in ``waiters`` under the lock
        before re-checking that state, so a poke can never fall between
        a waiter's failed claim and its ``cond.wait``.  (The previous
        implementation read the arrival count without the lock, a
        lost-wakeup race the 50 ms poll timeout used to paper over.)
        """
        with self.cond:
            if self.waiters:
                self.cond.notify_all()

    def poke_all(self) -> None:
        """Unconditional wake-up (team breakage)."""
        with self.cond:
            self.cond.notify_all()


class Team:
    """A team of threads executing one parallel region."""

    __slots__ = ("runtime", "parent_frame", "size", "level", "active_level",
                 "barrier", "scheduler", "pending", "slots", "slots_lock",
                 "mutex", "cpu_times", "errors", "errors_lock", "broken",
                 "region_id")

    def __init__(self, runtime, parent_frame, size: int):
        self.runtime = runtime
        self.parent_frame = parent_frame
        self.size = size
        #: Process-wide parallel-region instance id, assigned by
        #: ``parallel_run`` when tracing groups this region's events;
        #: 0 for implicit single-thread teams.
        self.region_id = 0
        if parent_frame is None:
            # The implicit single-thread team of an initial thread.
            self.level = 0
            self.active_level = 0
        else:
            parent_team = parent_frame.team
            self.level = parent_team.level + 1
            self.active_level = parent_team.active_level + (
                1 if size > 1 else 0)
        lowlevel = runtime.lowlevel
        self.barrier = Barrier(self)
        #: Per-thread work-stealing task deques (see
        #: :mod:`repro.runtime.tasking`).
        self.scheduler = WorkStealingScheduler(lowlevel, size)
        #: Tasks submitted to this team and not yet completed.
        self.pending = lowlevel.make_counter(0)
        #: Shared worksharing slots, keyed by per-thread region ordinal.
        self.slots: dict = {}
        self.slots_lock = lowlevel.make_mutex()
        #: Team mutex used by generated reduction epilogues
        #: (``__omp__.mutex_lock()`` in the paper's Fig. 2).
        self.mutex = threading.RLock()
        self.cpu_times = [0.0] * size
        self.errors: list = []
        self.errors_lock = threading.Lock()
        #: Set when a member leaves the region abnormally; every
        #: synchronization construct then drains instead of blocking.
        self.broken = False

    def record_error(self, thread_num: int, error: BaseException) -> None:
        with self.errors_lock:
            self.errors.append((thread_num, error))
        self.broken = True
        self.barrier.poke_all()

    def get_slot(self, key, factory):
        return self.runtime.lowlevel.slot_get_or_create(
            self.slots, self.slots_lock, key, factory)
