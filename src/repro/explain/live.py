"""Live observability endpoint: ``/metrics`` and ``/explain`` over
HTTP while a workload runs.

A daemon thread runs a stdlib :class:`http.server.ThreadingHTTPServer`
serving:

* ``GET /metrics`` — Prometheus text exposition of the attached
  metrics registry (scrapeable by a stock Prometheus);
* ``GET /explain`` — the current DAG summary as JSON, rebuilt from a
  snapshot of the (still recording) tracer on every request;
* ``GET /profile`` — the sampling profiler's directive/hot-frame
  report as JSON (``?format=collapsed`` for folded-stack text), or
  ``{"armed": false}`` when ``OMP4PY_PROFILE`` is off;
* ``GET /healthz`` — liveness probe.

Armed by ``OMP4PY_METRICS_PORT`` through the decorator's
auto-instrument path (:mod:`repro.ompt.auto`); port 0 binds an
ephemeral port, exposed via :attr:`MetricsServer.port`.  Binds
127.0.0.1 — front it with a real proxy to expose it beyond the host.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


class MetricsServer:
    """Serve live metrics/explain snapshots for one runtime."""

    def __init__(self, runtime, registry=None, port: int = 0,
                 host: str = "127.0.0.1"):
        self.runtime = runtime
        self.registry = registry
        self._requested = (host, port)
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- payloads (also used directly by tests) -------------------------

    def metrics_text(self) -> str:
        if self.registry is None:
            return "# no metrics registry attached\n"
        from repro.ompt.exporters import prometheus_text
        return prometheus_text(self.registry)

    def explain_payload(self) -> dict:
        from repro.explain.dag import build_dag, summarize
        events = self.runtime.tracer.events()
        payload = summarize(build_dag(events))
        payload["runtime"] = self.runtime.name
        payload["recording"] = self.runtime.tracer.enabled
        return payload

    def samples_payload(self) -> dict:
        sampler = getattr(self.runtime, "sampler", None)
        if sampler is None:
            return {"armed": False, "runtime": self.runtime.name}
        payload = sampler.report()
        payload["runtime"] = self.runtime.name
        return payload

    def samples_collapsed(self) -> str:
        sampler = getattr(self.runtime, "sampler", None)
        if sampler is None:
            return "# sampler disarmed (set OMP4PY_PROFILE)\n"
        from repro.sampling.exporters import collapsed_text
        return collapsed_text(sampler.store)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *_args):  # noqa: D102 - quiet server
                pass

            def _send(self, status: int, content_type: str,
                      body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802 - http.server API
                try:
                    if self.path.split("?")[0] == "/metrics":
                        self._send(200,
                                   "text/plain; version=0.0.4; "
                                   "charset=utf-8",
                                   server.metrics_text().encode())
                    elif self.path.split("?")[0] == "/explain":
                        body = json.dumps(
                            server.explain_payload()).encode()
                        self._send(200, "application/json", body)
                    elif self.path.split("?")[0] == "/profile":
                        if "format=collapsed" in self.path:
                            self._send(200,
                                       "text/plain; charset=utf-8",
                                       server.samples_collapsed()
                                       .encode())
                        else:
                            body = json.dumps(
                                server.samples_payload()).encode()
                            self._send(200, "application/json", body)
                    elif self.path.split("?")[0] == "/healthz":
                        self._send(200, "application/json",
                                   b'{"ok": true}')
                    else:
                        self._send(404, "text/plain", b"not found\n")
                except BrokenPipeError:  # pragma: no cover - client gone
                    pass
                except Exception as error:  # noqa: BLE001 - keep serving
                    try:
                        self._send(500, "text/plain",
                                   f"error: {error}\n".encode())
                    except OSError:  # pragma: no cover
                        pass

        self._httpd = ThreadingHTTPServer(self._requested, Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="omp4py-metrics-server", daemon=True)
        self._thread.start()
        return self

    @property
    def port(self) -> int | None:
        """The bound port (resolves port-0 requests), or ``None``
        before :meth:`start`."""
        if self._httpd is None:
            return None
        return self._httpd.server_address[1]

    @property
    def url(self) -> str | None:
        if self._httpd is None:
            return None
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def stop(self) -> None:
        httpd = self._httpd
        if httpd is None:
            return
        self._httpd = None
        httpd.shutdown()
        httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
