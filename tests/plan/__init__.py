"""Inspector–executor plan tests (repro.plan)."""
