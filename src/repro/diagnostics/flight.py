"""The flight recorder: last-N events per thread, always cheap.

A :class:`FlightRecorder` is a :class:`~repro.ompt.hooks.ToolHooks`
implementation that keeps a fixed-size ring buffer of sync/work events
*per thread*.  It rides the existing tool dispatch points, so arming it
costs exactly what any tool costs (one attribute read per event site
when detached), and recording is lock-free: each ring is only ever
written by the thread it belongs to (callbacks run inline), the ring
slot store and index bump are plain operations under the GIL, and
readers (:meth:`dump`) tolerate the one-event tear a concurrent wrap
can produce.

Unlike the tracer (one bounded global buffer, meant for offline
profiles), the flight recorder never fills up and never locks: it is
meant to be flown *always*, so that when a process hangs or faults the
last few hundred events of every thread are there to dump — via the
watchdog report, the SIGUSR1 handler, or
``FlightRecorder.dump()``/``format_text()`` directly.
"""

from __future__ import annotations

import threading
import time

from repro.ompt.hooks import ToolHooks

DEFAULT_CAPACITY = 256


class _Ring:
    """Fixed-size single-writer event ring."""

    __slots__ = ("slots", "index", "capacity", "name")

    def __init__(self, capacity: int, name: str):
        self.slots = [None] * capacity
        self.index = 0
        self.capacity = capacity
        self.name = name

    def append(self, event: tuple) -> None:
        self.slots[self.index % self.capacity] = event
        self.index += 1

    def snapshot(self) -> list[tuple]:
        """Events oldest-first (racy-safe: reads a torn slot as-is)."""
        index = self.index
        capacity = self.capacity
        if index <= capacity:
            events = self.slots[:index]
        else:
            cut = index % capacity
            events = self.slots[cut:] + self.slots[:cut]
        return [event for event in events if event is not None]


class FlightRecorder(ToolHooks):
    """Per-thread ring buffers fed from the tool dispatch points."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._rings: dict[int, _Ring] = {}

    # -- recording (hot path) --------------------------------------------

    def _note(self, kind: str, *detail) -> None:
        ident = threading.get_ident()
        ring = self._rings.get(ident)
        if ring is None:
            ring = _Ring(self.capacity, threading.current_thread().name)
            self._rings[ident] = ring
        ring.append((time.perf_counter(), kind, detail))

    def thread_begin(self, ttype, ident):
        self._note("thread_begin", ttype)

    def thread_end(self, ttype, ident):
        self._note("thread_end", ttype)

    def thread_idle(self, ident, endpoint):
        # "idle_begin" as a thread's last ring event reads as "parked
        # in the pool, not stuck" in a hang dump.
        self._note(f"idle_{endpoint}")

    def parallel_begin(self, thread, team_size):
        self._note("parallel_begin", thread, team_size)

    def parallel_end(self, thread, team_size):
        self._note("parallel_end", thread, team_size)

    def implicit_task(self, thread, endpoint, team_size):
        self._note("implicit_task", thread, endpoint)

    def work(self, thread, wstype, low, high):
        self._note("work", thread, wstype, low, high)

    def task_create(self, thread, task_id):
        self._note("task_create", thread, task_id)

    def task_schedule(self, thread, task_id):
        self._note("task_start", thread, task_id)

    def task_steal(self, thread, task_id, victim):
        self._note("task_steal", thread, task_id, victim)

    def task_complete(self, thread, task_id):
        self._note("task_finish", thread, task_id)

    def sync_region(self, thread, kind, endpoint, wait_time):
        self._note(f"{kind}_{endpoint}", thread,
                   round(wait_time, 6) if wait_time is not None else None)

    def mutex_acquire(self, thread, kind, handle):
        self._note("mutex_wait", thread, kind, _handle_repr(handle))

    def mutex_acquired(self, thread, kind, handle, wait_time):
        self._note("mutex_acquired", thread, kind, _handle_repr(handle),
                   round(wait_time, 6))

    def mutex_released(self, thread, kind, handle):
        self._note("mutex_released", thread, kind, _handle_repr(handle))

    # -- dumping -----------------------------------------------------------

    def dump(self, tail: int | None = None) -> dict:
        """``{ident: {"thread": name, "events": [...]}}``, each event a
        ``{"t": seconds, "kind": ..., "detail": [...]}`` dict, oldest
        first, optionally truncated to the last ``tail`` events."""
        out = {}
        for ident, ring in list(self._rings.items()):
            events = ring.snapshot()
            if tail is not None:
                events = events[-tail:]
            out[ident] = {
                "thread": ring.name,
                "events": [{"t": round(ts, 6), "kind": kind,
                            "detail": list(detail)}
                           for ts, kind, detail in events],
            }
        return out

    def format_text(self, tail: int = 12) -> str:
        """Human-readable tail of every ring, for stderr dumps."""
        lines = ["flight recorder (last events per thread):"]
        for ident, ring in sorted(self._rings.items()):
            events = ring.snapshot()[-tail:]
            lines.append(f"  [{ring.name} ident {ident}]")
            if not events:
                lines.append("    (no events)")
            for ts, kind, detail in events:
                detail_text = " ".join(str(part) for part in detail)
                lines.append(f"    {ts:.6f} {kind} {detail_text}".rstrip())
        return "\n".join(lines)

    def clear(self) -> None:
        self._rings.clear()


def _handle_repr(handle):
    return handle if isinstance(handle, (str, int)) else repr(handle)
