"""ICV / environment snapshots shared by ``omp_display_env``, the
watchdog report, and the ``repro.doctor`` CLI.

``omp_display_env`` used to format its output ad hoc inside the engine;
building the snapshot here means the exact same ICV view appears in
every diagnostic surface, and tools get it as structured data instead
of scraping stdout.
"""

from __future__ import annotations

import os

#: ``OMP4PY_*`` knobs worth echoing in verbose/diagnostic output.
_DIAG_KNOBS = ("OMP4PY_TRACE", "OMP4PY_METRICS", "OMP4PY_FLIGHT",
               "OMP4PY_WATCHDOG", "OMP4PY_MODE", "OMP4PY_LINT",
               "OMP4PY_HOT_TEAMS", "OMP4PY_POOL_IDLE_TIMEOUT",
               "OMP4PY_BACKEND")


def _places_text(runtime) -> str:
    """``OMP_PLACES`` rendered in explicit-list syntax (``''`` = none)."""
    from repro.affinity import format_places
    return format_places(runtime._binder.places)


def icv_snapshot(runtime, verbose: bool = False) -> dict:
    """The runtime's current ICVs in ``OMP_DISPLAY_ENV`` key order.

    Values are plain strings; ``runtime`` metadata lives under the
    ``OMP4PY_*`` keys so JSON consumers never have to parse comments.
    """
    kind, chunk = runtime.get_schedule()
    schedule = kind.upper() + (f",{chunk}" if chunk else "")
    snapshot = {
        "_OPENMP": "200805",
        "OMP_NUM_THREADS": str(runtime.current_frame().nthreads_var),
        "OMP_SCHEDULE": schedule,
        "OMP_DYNAMIC": str(runtime.get_dynamic()).upper(),
        "OMP_NESTED": str(runtime.get_nested()).upper(),
        "OMP_THREAD_LIMIT": str(runtime.get_thread_limit()),
        "OMP_MAX_ACTIVE_LEVELS": str(runtime.get_max_active_levels()),
        "OMP_PLACES": _places_text(runtime),
        "OMP_PROC_BIND": runtime.get_proc_bind().upper(),
        "OMP_WAIT_POLICY": runtime.get_wait_policy().upper(),
    }
    if verbose:
        snapshot["OMP4PY_RUNTIME"] = runtime.name
        backend = getattr(runtime, "backend", None)
        if backend is not None:
            snapshot["OMP4PY_EXECUTION_BACKEND"] = backend.value
        snapshot["OMP4PY_NUM_PROCS"] = str(runtime.get_num_procs())
        snapshot["OMP4PY_HOT_TEAMS"] = str(bool(
            getattr(runtime, "hot_teams", True))).upper()
        pool = getattr(runtime, "_pool", None)
        if pool is not None:
            state = pool.snapshot()
            snapshot["OMP4PY_POOL"] = (
                f"workers={state['workers']} idle={state['idle']} "
                f"spawned={state['spawned']} reused={state['reused']} "
                f"trimmed={state['trimmed']}")
        for knob in _DIAG_KNOBS:
            value = os.environ.get(knob)
            if value is not None:
                snapshot[knob] = value
    return snapshot


def format_display_env(snapshot: dict, runtime_name: str = "") -> str:
    """The OpenMP ``OMP_DISPLAY_ENV`` block for a snapshot.

    ``runtime_name`` reproduces the spec-version comment the native
    runtimes print next to ``_OPENMP``.
    """
    lines = ["OPENMP DISPLAY ENVIRONMENT BEGIN"]
    for key, value in snapshot.items():
        line = f"  {key} = '{value}'"
        if key == "_OPENMP" and runtime_name:
            line += f"  # 3.0 ({runtime_name})"
        lines.append(line)
    lines.append("OPENMP DISPLAY ENVIRONMENT END")
    return "\n".join(lines)
