"""Runtime event tracing.

When enabled, the runtime records a timestamped event per interesting
transition — region fork/join, loop chunk dispatch, task lifecycle,
barrier arrival/release — into a bounded in-memory buffer.  The tracer
answers the questions the paper's figures raise ("which thread got the
hub nodes?", "how many chunks did dynamic hand out?") and gives the
test suite a precise view of scheduling decisions.

Tracing is off by default and costs one attribute read per hook when
disabled.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import Counter, defaultdict


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One runtime event.

    ``kind`` is one of: ``region_fork``, ``region_join``,
    ``chunk``, ``task_submit``, ``task_start``, ``task_finish``,
    ``barrier_enter``, ``barrier_release``.
    """

    timestamp: float
    kind: str
    thread: int
    detail: tuple


class Tracer:
    """Bounded, thread-safe event buffer."""

    def __init__(self, capacity: int = 100_000):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self.enabled = False
        self.dropped = 0

    # -- control --------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0
            self.enabled = True

    def stop(self) -> list[TraceEvent]:
        with self._lock:
            self.enabled = False
            return list(self._events)

    def events(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._events)

    # -- recording -------------------------------------------------------

    def record(self, kind: str, thread: int, *detail) -> None:
        if not self.enabled:
            return
        event = TraceEvent(time.perf_counter(), kind, thread,
                           tuple(detail))
        with self._lock:
            if len(self._events) < self.capacity:
                self._events.append(event)
            else:
                self.dropped += 1


class TraceSummary:
    """Aggregations over a recorded event list."""

    def __init__(self, events: list[TraceEvent]):
        self.events = events

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def chunks_per_thread(self) -> dict[int, int]:
        counts: Counter[int] = Counter()
        for event in self.events:
            if event.kind == "chunk":
                counts[event.thread] += 1
        return dict(counts)

    def iterations_per_thread(self) -> dict[int, int]:
        totals: defaultdict[int, int] = defaultdict(int)
        for event in self.events:
            if event.kind == "chunk":
                low, high = event.detail[:2]
                totals[event.thread] += max(0, high - low)
        return dict(totals)

    def task_executors(self) -> dict[int, int]:
        counts: Counter[int] = Counter()
        for event in self.events:
            if event.kind == "task_start":
                counts[event.thread] += 1
        return dict(counts)

    def task_latencies(self) -> list[float]:
        """Submit-to-start latency per task id."""
        submitted: dict[int, float] = {}
        latencies: list[float] = []
        for event in self.events:
            if event.kind == "task_submit":
                submitted[event.detail[0]] = event.timestamp
            elif event.kind == "task_start":
                start = submitted.pop(event.detail[0], None)
                if start is not None:
                    latencies.append(event.timestamp - start)
        return latencies

    def timeline(self, width: int = 60) -> str:
        """ASCII chunk timeline, one row per thread."""
        chunk_events = [e for e in self.events if e.kind == "chunk"]
        if not chunk_events:
            return "(no chunk events)"
        begin = min(e.timestamp for e in chunk_events)
        end = max(e.timestamp for e in chunk_events)
        span = max(end - begin, 1e-9)
        rows: dict[int, list[str]] = {}
        for event in chunk_events:
            row = rows.setdefault(event.thread, [" "] * width)
            slot = min(width - 1,
                       int((event.timestamp - begin) / span * width))
            row[slot] = "#"
        return "\n".join(
            f"t{thread:<3}|{''.join(cells)}|"
            for thread, cells in sorted(rows.items()))
