"""Inspector–executor plans for irregular workloads.

The paper's irregular apps (bfs, md, wordcount) funnel every concurrent
update through ``critical``/``atomic`` sections, and the scaling
explainer names the result: a lock convoy.  This package is the cure —
the PyOP2-style inspector–executor architecture:

* declare a :class:`~repro.plan.map.Map` (which shared *elements* each
  iteration touches — the indirection map only the application knows);
* the **inspector** (:func:`~repro.plan.planner.build_plan`) partitions
  the iteration space, builds the partition conflict graph over shared
  elements, and greedily colors it so no two same-color partitions
  touch a common element;
* the **executor** (:func:`~repro.plan.executor.execute`) runs the
  partitions color by color — *zero synchronization inside a color*,
  one barrier between colors — with a stable partition→thread owner
  assignment mapped onto the ``OMP_PLACES`` topology, so a partition's
  data stays with its worker across colors and timesteps;
* plans are cached keyed by ``(map, partition size)``
  (:func:`~repro.plan.cache.plan_for`), so the inspector cost
  amortizes across timesteps.

Plan activity (partitions, colors, conflict edges, cache hits) is
reported through the OMPT-style tool interface (``ToolHooks.plan``)
and the tracer (``plan_execute`` events), so ``repro.explain`` can
report "convoy fixed by plan" instead of a lock-convoy verdict.
"""

from __future__ import annotations

from repro.plan.cache import (clear_plan_cache, plan_cache_stats,
                              plan_for)
from repro.plan.executor import execute, execute_member
from repro.plan.map import Map
from repro.plan.planner import Plan, build_plan

__all__ = ["Map", "Plan", "build_plan", "clear_plan_cache", "execute",
           "execute_member", "plan_cache_stats", "plan_for"]
