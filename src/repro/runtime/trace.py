"""Runtime event tracing.

When enabled, the runtime records a timestamped event per interesting
transition — region fork/join, loop chunk dispatch, task lifecycle,
barrier arrival/release — into a bounded in-memory buffer.  The tracer
answers the questions the paper's figures raise ("which thread got the
hub nodes?", "how many chunks did dynamic hand out?") and gives the
test suite a precise view of scheduling decisions.

Tracing is off by default and costs one attribute read per hook when
disabled.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import threading
import time
from collections import Counter, defaultdict

#: The installed package root (``.../repro``): frames inside it are
#: runtime internals, never the user site a trace event should name.
_PACKAGE_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def caller_site() -> tuple[str, int]:
    """``(filename, lineno)`` of the nearest non-runtime caller frame.

    Walks outward until it leaves the ``repro`` package, so the result
    is the generated ``<omp4py:...>`` frame (resolvable to user
    coordinates via :mod:`repro.diagnostics.origin`) or the user script
    that called the runtime API directly.  Only called when tracing is
    armed — the disarmed paths never pay for the frame walk.
    """
    try:
        frame = sys._getframe(1)
    except ValueError:  # pragma: no cover - no caller frame
        return "", 0
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.startswith(_PACKAGE_DIR):
            return filename, frame.f_lineno
        frame = frame.f_back
    return "", 0


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One runtime event.

    ``kind`` is one of:

    * ``region_fork`` (detail: team size, region id, caller file, line)
      / ``region_join`` (team size, region id);
    * ``itask_begin`` / ``itask_end`` (region id) — one pair per team
      member, bracketing the member's implicit task;
    * ``join_enter`` (region id) — a member arriving at the implicit
      join barrier (``itask_end`` doubles as its release);
    * ``chunk`` (low, high);
    * ``task_submit`` (task id, parent task id — 0 for an implicit
      parent — caller file, line), ``task_steal`` (task id and the
      victim thread the task was stolen from), ``task_start``,
      ``task_finish`` (task id);
    * ``barrier_enter`` (region id, caller file, line) /
      ``barrier_release`` (measured wait seconds, region id);
    * ``taskwait_enter`` (parent task id) / ``taskwait_release``
      (wait seconds, parent task id);
    * ``mutex_acquired`` (mutex kind, handle, wait seconds, caller
      file, line) / ``mutex_released`` (mutex kind, handle);
    * ``ordered_wait`` (wait seconds, caller file, line);
    * ``plan_execute`` (plan source, partitions, colors, conflict
      edges, caller file, line) — one inspector–executor plan
      execution (:mod:`repro.plan`), recorded by team thread 0.

    Older traces may carry shorter detail tuples; consumers index from
    the front and treat missing entries as absent.
    """

    timestamp: float
    kind: str
    thread: int
    detail: tuple


class TraceLog(list):
    """An event list that knows how many events were dropped.

    ``Tracer.stop()``/``events()`` return this so overflow is never
    silently swallowed: consumers that treat the result as a plain list
    keep working, and consumers that care (``TraceSummary``, the
    Chrome exporter, the profile CLI's truncation warning) read
    ``.dropped``.  ``.anchor`` carries the epoch anchor captured at
    ``Tracer.start()`` — ``(unix seconds, perf_counter seconds)`` at
    the same instant — so monotonic trace timestamps from separate
    runs/processes can be aligned on one wall-clock timeline.
    """

    __slots__ = ("dropped", "anchor")

    def __init__(self, events=(), dropped: int = 0,
                 anchor: tuple[float, float] | None = None):
        super().__init__(events)
        self.dropped = dropped
        self.anchor = anchor


class Tracer:
    """Bounded, thread-safe event buffer."""

    def __init__(self, capacity: int = 100_000):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self.enabled = False
        self.dropped = 0
        #: ``(time.time(), time.perf_counter())`` sampled at the last
        #: ``start()`` — the monotonic→unix offset for this recording.
        self.anchor: tuple[float, float] | None = None

    # -- control --------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0
            self.anchor = (time.time(), time.perf_counter())
            self.enabled = True

    def stop(self) -> TraceLog:
        with self._lock:
            self.enabled = False
            return TraceLog(self._events, self.dropped, self.anchor)

    def events(self) -> TraceLog:
        with self._lock:
            return TraceLog(self._events, self.dropped, self.anchor)

    # -- recording -------------------------------------------------------

    def record(self, kind: str, thread: int, *detail) -> None:
        if not self.enabled:
            return
        event = TraceEvent(time.perf_counter(), kind, thread,
                           tuple(detail))
        with self._lock:
            if len(self._events) < self.capacity:
                self._events.append(event)
            else:
                self.dropped += 1


class TraceSummary:
    """Aggregations over a recorded event list."""

    def __init__(self, events: list[TraceEvent],
                 dropped: int | None = None):
        self.events = events
        if dropped is None:
            dropped = getattr(events, "dropped", 0)
        #: Events the tracer discarded because the buffer was full.
        self.dropped = dropped

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def chunks_per_thread(self) -> dict[int, int]:
        counts: Counter[int] = Counter()
        for event in self.events:
            if event.kind == "chunk":
                counts[event.thread] += 1
        return dict(counts)

    def iterations_per_thread(self) -> dict[int, int]:
        totals: defaultdict[int, int] = defaultdict(int)
        for event in self.events:
            if event.kind == "chunk":
                low, high = event.detail[:2]
                totals[event.thread] += max(0, high - low)
        return dict(totals)

    def steals_per_thread(self) -> dict[int, int]:
        """Tasks each thread stole from another thread's deque."""
        counts: Counter[int] = Counter()
        for event in self.events:
            if event.kind == "task_steal":
                counts[event.thread] += 1
        return dict(counts)

    def steal_victims(self) -> dict[int, int]:
        """Tasks stolen *from* each thread's deque."""
        counts: Counter[int] = Counter()
        for event in self.events:
            if event.kind == "task_steal" and len(event.detail) > 1:
                counts[event.detail[1]] += 1
        return dict(counts)

    def task_executors(self) -> dict[int, int]:
        counts: Counter[int] = Counter()
        for event in self.events:
            if event.kind == "task_start":
                counts[event.thread] += 1
        return dict(counts)

    def task_latencies(self) -> list[float]:
        """Submit-to-start latency per task that actually started.

        Tasks that were submitted but never started (e.g. the trace was
        stopped mid-region) are excluded; count them with
        :meth:`unstarted_task_count`.
        """
        submitted: dict[int, float] = {}
        latencies: list[float] = []
        for event in self.events:
            if event.kind == "task_submit":
                submitted[event.detail[0]] = event.timestamp
            elif event.kind == "task_start":
                start = submitted.pop(event.detail[0], None)
                if start is not None:
                    latencies.append(event.timestamp - start)
        return latencies

    def task_durations(self) -> list[float]:
        """Submit-to-finish duration per task that completed."""
        submitted: dict[int, float] = {}
        durations: list[float] = []
        for event in self.events:
            if event.kind == "task_submit":
                submitted[event.detail[0]] = event.timestamp
            elif event.kind == "task_finish":
                start = submitted.pop(event.detail[0], None)
                if start is not None:
                    durations.append(event.timestamp - start)
        return durations

    def unstarted_task_count(self) -> int:
        """Tasks submitted but never started within the trace."""
        pending: set[int] = set()
        for event in self.events:
            if event.kind == "task_submit":
                pending.add(event.detail[0])
            elif event.kind == "task_start":
                pending.discard(event.detail[0])
        return len(pending)

    def barrier_waits(self) -> dict[int, float]:
        """Total measured barrier wait time per thread, in seconds.

        Only ``barrier_release`` events carrying a wait-time detail
        contribute (older traces without the detail count as zero).
        """
        waits: defaultdict[int, float] = defaultdict(float)
        for event in self.events:
            if event.kind == "barrier_release" and event.detail:
                wait = event.detail[0]
                if isinstance(wait, (int, float)):
                    waits[event.thread] += wait
        return dict(waits)

    def mutex_waits(self) -> dict[tuple, float]:
        """Total measured mutex wait time per ``(kind, handle)``.

        Only ``mutex_acquired`` events (which carry the wait measured
        on the contended acquire path) contribute.
        """
        waits: defaultdict[tuple, float] = defaultdict(float)
        for event in self.events:
            if event.kind == "mutex_acquired" and len(event.detail) >= 3:
                kind, handle, wait = event.detail[:3]
                if isinstance(wait, (int, float)):
                    waits[(kind, handle)] += wait
        return dict(waits)

    def timeline(self, width: int = 60) -> str:
        """ASCII chunk timeline, one row per thread."""
        chunk_events = [e for e in self.events if e.kind == "chunk"]
        if not chunk_events:
            return "(no chunk events)"
        begin = min(e.timestamp for e in chunk_events)
        end = max(e.timestamp for e in chunk_events)
        span = max(end - begin, 1e-9)
        rows: dict[int, list[str]] = {}
        for event in chunk_events:
            row = rows.setdefault(event.thread, [" "] * width)
            slot = min(width - 1,
                       int((event.timestamp - begin) / span * width))
            row[slot] = "#"
        return "\n".join(
            f"t{thread:<3}|{''.join(cells)}|"
            for thread, cells in sorted(rows.items()))
