"""Tests of the directive-aware sampling profiler core."""

import threading
import time

import pytest

from repro import Mode, env
from repro.errors import OmpError
from repro.runtime import pure_runtime
from repro.sampling.sampler import FoldedStore, Sampler, directive_label


class TestFoldedStore:
    def test_counts_stacks_and_states(self):
        store = FoldedStore()
        stack = ("main (app.py:3)", "<omp for @ app.py:9>",
                 "kernel (app.py:10)")
        store.add(("<omp for @ app.py:9>",), stack, "cpu", 0.0, 1)
        store.add(("<omp for @ app.py:9>",), stack, "cpu", 0.005, 1)
        store.add(("<omp for @ app.py:9>",), stack, "wait", 0.010, 2)
        assert store.total == 3
        assert store.by_state == {"cpu": 2, "wait": 1}
        assert store.stacks[(stack, "cpu")] == 2
        assert store.stacks[(stack, "wait")] == 1
        entry = store.directives["<omp for @ app.py:9>"]
        assert entry == {"self": 2, "total": 2, "wait": 1}

    def test_self_goes_to_innermost_total_to_all(self):
        store = FoldedStore()
        directives = ("<omp parallel @ a.py:3>", "<omp for @ a.py:5>")
        store.add(directives, (*directives, "leaf (a.py:6)"), "cpu",
                  0.0, 1)
        assert store.directives["<omp for @ a.py:5>"]["self"] == 1
        assert store.directives["<omp parallel @ a.py:3>"]["self"] == 0
        assert store.directives["<omp parallel @ a.py:3>"]["total"] == 1
        hot = store.hottest_frames("<omp for @ a.py:5>")
        assert hot == [{"frame": "leaf (a.py:6)", "count": 1}]

    def test_top_stacks_ranked_and_summary_scaled(self):
        store = FoldedStore()
        for _ in range(3):
            store.add((), ("hot ()",), "cpu", 0.0, 1)
        store.add((), ("cold ()",), "cpu", 0.0, 1)
        top = store.top_stacks(limit=1)
        assert top == [{"stack": ["hot ()"], "state": "cpu",
                        "count": 3}]
        store.add(("<omp for>",), ("<omp for>", "x ()"), "cpu", 0.0, 1)
        summary = store.directive_summary(0.005)
        assert summary["<omp for>"]["self_s"] == pytest.approx(0.005)

    def test_bounds_drop_new_keys_not_counts(self):
        store = FoldedStore(max_stacks=1, max_samples=2)
        store.add((), ("a ()",), "cpu", 0.0, 1)
        store.add((), ("a ()",), "cpu", 0.0, 1)  # existing key: counted
        store.add((), ("b ()",), "cpu", 0.0, 1)  # new key: dropped
        assert store.stacks[(("a ()",), "cpu")] == 2
        assert store.dropped_stacks == 1
        assert len(store.samples) == 2
        assert store.dropped_samples == 1


class TestDirectiveLabel:
    def test_with_and_without_site(self):
        assert directive_label("parallel", None) == "<omp parallel>"
        label = directive_label("for", ("/tmp/app.py", 12))
        assert label == "<omp for @ app.py:12>"


class TestDirectiveStacks:
    def test_region_enter_exit_truncates_leaks(self):
        sampler = Sampler(pure_runtime, interval=0.01)
        ident = threading.get_ident()
        mark = sampler.region_enter("parallel", None)
        sampler.loop_enter(None)
        sampler.loop_enter(None)  # leaked inner loop (no loop_exit)
        assert len(sampler._active[ident]) == 3
        sampler.region_exit(mark)
        assert sampler._active[ident] == []

    def test_loop_exit_pops_innermost_for_only(self):
        sampler = Sampler(pure_runtime, interval=0.01)
        ident = threading.get_ident()
        mark = sampler.region_enter("parallel", None)
        sampler.loop_enter(("a.py", 1))
        sampler.loop_exit()
        assert [kind for kind, _ in sampler._active[ident]] \
            == ["parallel"]
        sampler.loop_exit()  # no for marker left: no-op
        assert [kind for kind, _ in sampler._active[ident]] \
            == ["parallel"]
        sampler.region_exit(mark)


class TestLifecycle:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Sampler(pure_runtime, interval=0.0)

    def test_start_stop_idempotent_and_reversible(self):
        assert pure_runtime.sampler is None
        assert pure_runtime.diag is None
        sampler = Sampler(pure_runtime, interval=0.01)
        try:
            assert sampler.start() is sampler
            thread = sampler._thread
            assert sampler.start() is sampler  # second start: no-op
            assert sampler._thread is thread
            assert pure_runtime.sampler is sampler
            assert pure_runtime.diag is not None
        finally:
            sampler.stop()
        sampler.stop()  # second stop: no-op
        assert pure_runtime.sampler is None
        # The diag it created for wait classification is removed again.
        assert pure_runtime.diag is None
        assert not sampler.running

    def test_does_not_steal_foreign_diag(self):
        from repro.diagnostics.state import DiagnosticsState
        foreign = DiagnosticsState()
        pure_runtime.diag = foreign
        sampler = Sampler(pure_runtime, interval=0.01).start()
        sampler.stop()
        assert pure_runtime.diag is foreign
        pure_runtime.diag = None

    def test_samples_arrive_while_running(self):
        sampler = Sampler(pure_runtime, interval=0.002).start()
        try:
            deadline = time.perf_counter() + 2.0
            while sampler.ticks < 5 and time.perf_counter() < deadline:
                time.sleep(0.01)
            assert sampler.ticks >= 5
        finally:
            sampler.stop()


class TestDisarmedCost:
    def test_directives_run_with_no_sampler(self):
        """With no sampler armed the instrumented sites must not fire
        (and must not fail) — the one-attribute-read discipline the
        tracer, tool, and diag hooks already follow."""
        rt = pure_runtime
        assert rt.sampler is None
        rt.parallel_run(rt.barrier, num_threads=2)

        def region():
            bounds = rt.for_bounds([0, 4, 1])
            rt.for_init(bounds)
            while rt.for_next(bounds):
                pass
            rt.for_end(bounds)
            rt.task_submit(lambda: None)
            rt.task_wait()

        rt.parallel_run(region, num_threads=2)
        assert rt.sampler is None


class TestEnvKnobs:
    def test_profile_spec_off_on_path(self, monkeypatch):
        monkeypatch.delenv("OMP4PY_PROFILE", raising=False)
        assert env.profile_spec() is None
        monkeypatch.setenv("OMP4PY_PROFILE", "0")
        assert env.profile_spec() is None
        monkeypatch.setenv("OMP4PY_PROFILE", "1")
        assert env.profile_spec() == "1"
        monkeypatch.setenv("OMP4PY_PROFILE", "out/samples.collapsed")
        assert env.profile_spec() == "out/samples.collapsed"

    def test_profile_hz_default_parse_cap_errors(self, monkeypatch):
        monkeypatch.delenv("OMP4PY_PROFILE_HZ", raising=False)
        assert env.profile_hz() == env.DEFAULT_PROFILE_HZ
        monkeypatch.setenv("OMP4PY_PROFILE_HZ", "50")
        assert env.profile_hz() == 50.0
        monkeypatch.setenv("OMP4PY_PROFILE_HZ", "1e9")
        assert env.profile_hz() == 10_000.0
        monkeypatch.setenv("OMP4PY_PROFILE_HZ", "fast")
        with pytest.raises(OmpError):
            env.profile_hz()
        monkeypatch.setenv("OMP4PY_PROFILE_HZ", "-5")
        with pytest.raises(OmpError):
            env.profile_hz()


class TestAutoSample:
    def test_env_knob_arms_and_deactivates(self, monkeypatch):
        from repro.sampling import auto
        monkeypatch.setenv("OMP4PY_PROFILE", "1")
        monkeypatch.setenv("OMP4PY_PROFILE_HZ", "100")
        auto.auto_sample(pure_runtime)
        try:
            sampler = auto.active_sampler(pure_runtime)
            assert sampler is not None
            assert sampler.running
            assert sampler.interval == pytest.approx(0.01)
            assert pure_runtime.sampler is sampler
            auto.auto_sample(pure_runtime)  # idempotent
            assert auto.active_sampler(pure_runtime) is sampler
        finally:
            auto.deactivate(pure_runtime)
        assert auto.active_sampler(pure_runtime) is None
        assert pure_runtime.sampler is None

    def test_unset_knob_is_a_no_op(self, monkeypatch):
        from repro.sampling import auto
        monkeypatch.delenv("OMP4PY_PROFILE", raising=False)
        auto.auto_sample(pure_runtime)
        assert auto.active_sampler(pure_runtime) is None


class TestReports:
    def test_status_and_report_shapes(self):
        sampler = Sampler(pure_runtime, interval=0.004).start()
        try:
            time.sleep(0.05)
        finally:
            sampler.stop()
        status = sampler.status()
        assert status["armed"] is False
        assert status["hz"] == pytest.approx(250.0)
        assert status["ticks"] > 0
        report = sampler.report()
        for key in ("directives", "hot_frames", "top_stacks",
                    "by_state", "dropped_stacks", "dropped_samples"):
            assert key in report

    def test_watchdog_report_carries_sampler_evidence(self):
        from repro.diagnostics.waitgraph import build_wait_graph
        from repro.diagnostics.watchdog import (build_report,
                                                format_report)
        sampler = Sampler(pure_runtime, interval=0.005).start()
        try:
            snapshot = pure_runtime.diag.snapshot()
            graph = build_wait_graph(snapshot)
            report = build_report(pure_runtime, snapshot, graph)
            assert report["sampler"]["armed"] is True
            assert report["sampler"]["hz"] == pytest.approx(200.0)
            text = format_report(report)
            assert "sampler: armed at 200 Hz" in text
        finally:
            sampler.stop()


class TestAttribution:
    KERNEL = '''
def kernel(hot_s, cold_s):
    import time
    x = 0.0
    with omp("parallel num_threads(2)"):
        with omp("for schedule(static)"):
            for _i in range(2):
                end = time.perf_counter() + hot_s
                while time.perf_counter() < end:
                    x += 1.0
        with omp("for schedule(static)"):
            for _j in range(2):
                end = time.perf_counter() + cold_s
                while time.perf_counter() < end:
                    x += 1.0
    return x
'''

    def test_hot_loop_dominates_samples(self, omp_compile):
        """The acceptance kernel: two worksharing loops burning ~90%
        and ~10% of the CPU; at least 80% of the loop-attributed
        on-CPU samples must land on the hot loop's directive."""
        kernel = omp_compile(self.KERNEL, "kernel", mode=Mode.PURE)
        sampler = Sampler(pure_runtime, interval=0.002).start()
        try:
            kernel(0.45, 0.05)
        finally:
            sampler.stop()
        loops = {label: entry for label, entry
                 in sampler.store.directives.items()
                 if label.startswith("<omp for")}
        assert len(loops) == 2, sampler.store.directives
        total_self = sum(entry["self"] for entry in loops.values())
        assert total_self >= 20, sampler.store.directives

        def line_of(label):
            return int(label.rsplit(":", 1)[1].rstrip(">"))

        hot_label = min(loops, key=line_of)  # first loop in the source
        share = loops[hot_label]["self"] / total_self
        assert share >= 0.8, (share, loops)
        # The hot loop's evidence names the frames inside it.
        assert sampler.store.hottest_frames(hot_label)

    def test_bottleneck_annotation_quotes_hot_frames(self, omp_compile):
        from repro.explain.bottlenecks import Finding, _attach_samples
        kernel = omp_compile(self.KERNEL, "kernel", mode=Mode.PURE)
        sampler = Sampler(pure_runtime, interval=0.002).start()
        try:
            kernel(0.3, 0.02)
        finally:
            sampler.stop()
        samples = sampler.report()
        findings = [Finding(category="barrier-imbalance", lost_s=1.0,
                            fraction=0.5, message="imbalance")]
        _attach_samples(findings, samples)
        assert "sampling:" in findings[0].message
        assert findings[0].extra["sampled_top_frames"]
        assert findings[0].extra["sampled_self_share"] >= 0.5

        # With no findings at all, a standalone informational finding
        # carries the evidence instead.
        alone: list = []
        _attach_samples(alone, samples)
        assert alone and alone[0].category == "sampled-hotspot"
