"""Thread-safe metrics registry and the metrics-accumulating tool.

The registry holds three instrument kinds — counters, gauges, and time
histograms — addressed by name plus a label set, in the Prometheus data
model (``omp_chunks_total{thread="3"}``).  Instruments are created
lazily on first touch and updated under one registry-wide mutex; the
runtime's hot paths never see the registry unless a tool is attached.

:class:`MetricsTool` is the standard :class:`~repro.ompt.hooks.ToolHooks`
implementation: attached to a runtime it turns the callback stream into
the per-region/per-thread figures the paper's plots are built from —
chunks and iterations per thread, barrier wait time, lock contention,
and task submit→start / start→complete latencies.
"""

from __future__ import annotations

import threading
import time

from repro.ompt.hooks import ToolHooks

#: Default histogram bounds for durations in seconds: 1 µs .. 10 s.
TIME_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def sample(self) -> float:
        return self.value


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def sample(self) -> float:
        return self.value


class Histogram:
    """Cumulative-bucket histogram with sum/count/min/max."""

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, bounds=TIME_BUCKETS):
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)  # trailing +Inf
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def sample(self) -> dict:
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "mean": self.mean,
                "buckets": {str(bound): cumulative
                            for bound, cumulative
                            in zip((*self.bounds, "+Inf"),
                                   _cumulate(self.buckets))}}


def _cumulate(buckets):
    running = 0
    for bucket in buckets:
        running += bucket
        yield running


class MetricsRegistry:
    """Named, labeled instruments behind one mutex.

    ``counter``/``gauge``/``histogram`` return the (lazily created)
    instrument for a name + label set; callers mutate it while holding
    nothing — the instruments' single-field updates are safe under the
    registry pattern used here because every mutation path goes through
    the owning tool's lock (see :class:`MetricsTool`) or a single
    thread.  External writers that share a registry across threads
    should serialize with :attr:`lock`.
    """

    def __init__(self):
        self.lock = threading.Lock()
        self._instruments: dict[tuple, object] = {}
        self._help: dict[str, str] = {}

    def _get(self, factory, name: str, help_text: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self.lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = factory()
                    self._instruments[key] = instrument
                    if help_text and name not in self._help:
                        self._help[name] = help_text
        return instrument

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        return self._get(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "", bounds=TIME_BUCKETS,
                  **labels) -> Histogram:
        return self._get(lambda: Histogram(bounds), name, help_text, labels)

    def collect(self):
        """Yield ``(name, labels_dict, instrument)`` sorted by name."""
        with self.lock:
            items = sorted(self._instruments.items())
        for (name, labels), instrument in items:
            yield name, dict(labels), instrument

    def help_text(self, name: str) -> str:
        return self._help.get(name, "")

    def as_dict(self) -> dict:
        """JSON-ready form: name → {type, help, samples}."""
        families: dict[str, dict] = {}
        for name, labels, instrument in self.collect():
            family = families.setdefault(name, {
                "type": instrument.kind,
                "help": self.help_text(name),
                "samples": []})
            family["samples"].append({"labels": labels,
                                      "value": instrument.sample()})
        return families


class MetricsTool(ToolHooks):
    """Tool that folds the callback stream into a registry.

    All state transitions (task timestamps and instrument updates) are
    serialized by one tool-level lock, so a single tool instance can be
    attached to a runtime whose teams run many threads.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._lock = threading.Lock()
        #: task id → (submit_ts, start_ts | None); popped on completion.
        self._tasks: dict[int, list] = {}
        #: task ids whose ``task_steal`` fired and whose
        #: ``task_schedule`` hasn't yet; drives local/stolen attribution.
        self._stolen: set[int] = set()

    # -- native threads ---------------------------------------------------

    def thread_begin(self, ttype, ident):
        with self._lock:
            self.registry.counter(
                "omp_pool_spawns_total",
                "Runtime worker threads spawned, by thread type",
                ttype=ttype).inc()

    def thread_end(self, ttype, ident):
        with self._lock:
            self.registry.counter(
                "omp_pool_trims_total",
                "Runtime worker threads retired (idle trim, pool "
                "shutdown, or spawn-per-region join), by thread type",
                ttype=ttype).inc()

    def thread_idle(self, ident, endpoint):
        if endpoint != "end":
            return
        with self._lock:
            self.registry.counter(
                "omp_pool_reuse_total",
                "Parked pool workers re-dispatched to a new region").inc()

    # -- parallel regions -------------------------------------------------

    def parallel_begin(self, thread, team_size):
        registry = self.registry
        with self._lock:
            registry.counter(
                "omp_parallel_regions_total",
                "Parallel regions forked").inc()
            registry.gauge(
                "omp_team_size", "Size of the last forked team").set(
                team_size)

    def implicit_task(self, thread, endpoint, team_size):
        if endpoint != "begin":
            return
        with self._lock:
            self.registry.counter(
                "omp_implicit_tasks_total",
                "Implicit tasks started, per thread",
                thread=thread).inc()

    # -- worksharing ------------------------------------------------------

    def work(self, thread, wstype, low, high):
        registry = self.registry
        with self._lock:
            registry.counter(
                "omp_chunks_total",
                "Worksharing units dispatched, per thread and type",
                thread=thread, wstype=wstype).inc()
            if wstype == "loop":
                registry.counter(
                    "omp_iterations_total",
                    "Loop iterations dispatched, per thread",
                    thread=thread).inc(max(0, high - low))

    # -- tasking ----------------------------------------------------------

    def task_create(self, thread, task_id):
        now = time.perf_counter()
        with self._lock:
            self._tasks[task_id] = [now, None]
            self.registry.counter(
                "omp_tasks_created_total",
                "Explicit tasks submitted, per thread",
                thread=thread).inc()

    def task_schedule(self, thread, task_id):
        now = time.perf_counter()
        with self._lock:
            entry = self._tasks.get(task_id)
            if entry is not None:
                entry[1] = now
                self.registry.histogram(
                    "omp_task_latency_seconds",
                    "Task submit-to-start latency").observe(now - entry[0])
            self.registry.counter(
                "omp_tasks_executed_total",
                "Explicit tasks executed, per thread",
                thread=thread).inc()
            if task_id in self._stolen:
                self._stolen.discard(task_id)
            else:
                self.registry.counter(
                    "omp_task_local_hits_total",
                    "Tasks executed without stealing, per thread",
                    thread=thread).inc()

    def task_steal(self, thread, task_id, victim):
        with self._lock:
            self._stolen.add(task_id)
            self.registry.counter(
                "omp_task_steals_total",
                "Tasks claimed from another thread's deque, per thief",
                thread=thread).inc()

    def task_complete(self, thread, task_id):
        now = time.perf_counter()
        with self._lock:
            entry = self._tasks.pop(task_id, None)
            if entry is not None and entry[1] is not None:
                self.registry.histogram(
                    "omp_task_duration_seconds",
                    "Task start-to-complete duration").observe(
                    now - entry[1])

    # -- synchronization --------------------------------------------------

    def sync_region(self, thread, kind, endpoint, wait_time):
        if endpoint != "release" or wait_time is None:
            return
        with self._lock:
            self.registry.histogram(
                "omp_sync_wait_seconds",
                "Time spent inside barriers/taskwaits, per thread",
                kind=kind, thread=thread).observe(wait_time)

    def mutex_acquire(self, thread, kind, handle):
        with self._lock:
            self.registry.counter(
                "omp_mutex_contended_total",
                "Mutex acquisitions that had to block",
                kind=kind).inc()

    def mutex_acquired(self, thread, kind, handle, wait_time):
        with self._lock:
            registry = self.registry
            registry.counter(
                "omp_mutex_acquisitions_total",
                "Mutex acquisitions", kind=kind).inc()
            registry.histogram(
                "omp_mutex_wait_seconds",
                "Time spent waiting for mutexes", kind=kind).observe(
                wait_time)

    # -- inspector–executor plans -----------------------------------------

    def plan(self, thread, event, payload):
        registry = self.registry
        with self._lock:
            if event == "build":
                registry.counter(
                    "omp_plan_builds_total",
                    "Execution plans built by the inspector, per map",
                    source=payload["source"]).inc()
            elif event == "cache_hit":
                registry.counter(
                    "omp_plan_cache_hits_total",
                    "Plans served from the (map, partition size) "
                    "cache, per map",
                    source=payload["source"]).inc()
            elif event == "execute":
                registry.counter(
                    "omp_plan_executions_total",
                    "Color-by-color plan executions, per map",
                    source=payload["source"]).inc()
                registry.gauge(
                    "omp_plan_partitions",
                    "Partition count of the last executed plan",
                    source=payload["source"]).set(payload["partitions"])
                registry.gauge(
                    "omp_plan_colors",
                    "Color count of the last executed plan",
                    source=payload["source"]).set(payload["colors"])
                registry.gauge(
                    "omp_plan_conflict_edges",
                    "Conflict-graph edge count of the last executed "
                    "plan",
                    source=payload["source"]).set(
                    payload["conflict_edges"])

    # -- results ----------------------------------------------------------

    def pending_tasks(self) -> int:
        """Tasks created but not yet completed (leak check hook)."""
        with self._lock:
            return len(self._tasks)
