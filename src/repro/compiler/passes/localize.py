"""Localization of globals, builtins, and runtime methods.

Unannotated Cython still wins over CPython by short-circuiting dynamic
lookups; the bytecode analogue is replacing repeated ``LOAD_GLOBAL`` +
``LOAD_ATTR`` sequences with local variables.  Two rewrites, applied per
function scope:

* hot builtins (``range``, ``len``, ``abs``, ...) read but never bound
  in the scope are aliased to locals at function entry;
* every ``__omp__.method`` reference is bound once
  (``__omp_m = __omp__.method``) so chunk loops call a local.

The usual caveat applies (and is exactly Cython's): rebinding a builtin
or the runtime handle *mid-call* is not observed.
"""

from __future__ import annotations

import ast

from repro.transform import scope as scope_analysis

_HOT_BUILTINS = ("range", "len", "abs", "min", "max", "divmod", "sum",
                 "enumerate", "zip", "int", "float", "isinstance")


class _ScopeRewriter(ast.NodeTransformer):
    """Applies a Name/Attribute mapping without entering nested scopes."""

    def __init__(self, name_map: dict[str, str], rt_name: str,
                 attr_map: dict[str, str]):
        self.name_map = name_map
        self.rt_name = rt_name
        self.attr_map = attr_map

    def visit_FunctionDef(self, node):
        return node  # nested scopes are processed independently

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_Attribute(self, node: ast.Attribute):
        if isinstance(node.value, ast.Name) \
                and node.value.id == self.rt_name \
                and isinstance(node.ctx, ast.Load):
            alias = self.attr_map.get(node.attr)
            if alias is not None:
                return ast.copy_location(
                    ast.Name(id=alias, ctx=ast.Load()), node)
        self.generic_visit(node)
        return node

    def visit_Name(self, node: ast.Name):
        if isinstance(node.ctx, ast.Load):
            alias = self.name_map.get(node.id)
            if alias is not None:
                return ast.copy_location(
                    ast.Name(id=alias, ctx=ast.Load()), node)
        return node


class LocalizeGlobals:
    """Per-function localization driver."""

    def __init__(self, ctx):
        self.rt_name = ctx.rt_name
        self.symbols = ctx.symbols

    def run(self, node: ast.stmt) -> ast.stmt:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._process_function(node)
        else:
            self._process_container(node)
        return node

    def _process_container(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._process_function(child)
            else:
                self._process_container(child)

    def _process_function(self, fn: ast.FunctionDef) -> None:
        # Innermost first so nested functions alias in their own scope.
        for stmt in fn.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._process_function(stmt)
            else:
                self._process_container(stmt)

        bound = scope_analysis.function_bound_names(fn)
        used_names, used_rt_attrs = _collect_uses(fn, self.rt_name)

        name_map = {
            name: self.symbols.fresh(f"b_{name}")
            for name in _HOT_BUILTINS
            if name in used_names and name not in bound
        }
        attr_map = {
            attr: self.symbols.fresh(f"rt_{attr}")
            for attr in sorted(used_rt_attrs)
        }
        if not name_map and not attr_map:
            return

        rewriter = _ScopeRewriter(name_map, self.rt_name, attr_map)
        fn.body = [rewriter.visit(stmt) for stmt in fn.body]

        prologue: list[ast.stmt] = []
        for original, alias in name_map.items():
            prologue.append(ast.Assign(
                targets=[ast.Name(id=alias, ctx=ast.Store())],
                value=ast.Name(id=original, ctx=ast.Load())))
        for attr, alias in attr_map.items():
            prologue.append(ast.Assign(
                targets=[ast.Name(id=alias, ctx=ast.Store())],
                value=ast.Attribute(
                    value=ast.Name(id=self.rt_name, ctx=ast.Load()),
                    attr=attr, ctx=ast.Load())))
        fn.body[:0] = _after_declarations(fn.body, prologue)


def _collect_uses(fn: ast.FunctionDef,
                  rt_name: str) -> tuple[set[str], set[str]]:
    """Names and ``__omp__`` attributes read in this scope only."""
    names: set[str] = set()
    attrs: set[str] = set()

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            if isinstance(child, ast.Attribute) \
                    and isinstance(child.value, ast.Name) \
                    and child.value.id == rt_name:
                attrs.add(child.attr)
                continue
            if isinstance(child, ast.Name) and isinstance(
                    child.ctx, ast.Load):
                names.add(child.id)
            walk(child)

    for stmt in fn.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # a nested scope: its uses are its own
        walk(stmt)
    return names, attrs


def _after_declarations(body: list[ast.stmt],
                        prologue: list[ast.stmt]) -> list[ast.stmt]:
    """Nothing may precede nonlocal/global declarations or a docstring;
    splice the prologue right after them (the caller prepends)."""
    index = 0
    while index < len(body) and isinstance(
            body[index], (ast.Nonlocal, ast.Global)):
        index += 1
    if index == 0 and body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        index = 1
    # Move the declarations/docstring in front of the prologue by
    # rotating: caller does body[:0] = result, so return decls + prologue
    # and drop them from their old position.
    head = body[:index]
    del body[:index]
    return head + prologue
