"""Task parallelism: the paper's Fig. 4 — recursive Fibonacci.

Each recursive call spawns two tasks; `taskwait` joins the direct
children; the `if` clause stops task creation below a cutoff so task
overhead does not swamp the computation (the same pattern the paper's
qsort benchmark relies on).

Run with::

    python examples/fibonacci_tasks.py [n] [threads]
"""

import sys

from repro import omp, omp_get_wtime


@omp
def fibonacci(n):
    if n <= 1:
        return n
    fib1 = 0
    fib2 = 0
    with omp("task if(n > 12)"):
        fib1 = fibonacci(n - 1)
    with omp("task if(n > 12)"):
        fib2 = fibonacci(n - 2)
    omp("taskwait")
    return fib1 + fib2


@omp
def run(n, threads):
    result = 0
    with omp("parallel num_threads(threads)"):
        with omp("single"):
            result = fibonacci(n)
    return result


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    threads = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    begin = omp_get_wtime()
    value = run(n, threads)
    elapsed = omp_get_wtime() - begin
    print(f"fibonacci({n}) = {value}  "
          f"[{threads} threads, {elapsed:.3f}s]")


if __name__ == "__main__":
    main()
