"""Hybrid MPI/OpenMP Jacobi solver (the paper's Section IV-C, Fig. 8).

MPI ranks ("nodes") partition the matrix rows; inside each rank an
OpenMP team updates the local block; `Allgatherv` rebuilds the solution
vector and `Allreduce` evaluates the convergence criterion.

Run with::

    python examples/hybrid_mpi_jacobi.py [n] [threads-per-node]
"""

import sys

import numpy as np

from repro.analysis.timing import measure_mpi
from repro.apps import jacobi_mpi
from repro.modes import Mode


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 192
    threads = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    expected = jacobi_mpi.reference(n)
    print(f"Jacobi on a {n}x{n} system, {threads} OpenMP threads per "
          f"node (mode=hybrid)")
    print(f"{'nodes':>6}{'wall [s]':>12}{'projected [s]':>15}   residual")
    for nodes in (1, 2, 4):
        measurement = measure_mpi(
            jacobi_mpi.solve, nodes, nodes=nodes, threads=threads, n=n,
            iterations=400, mode=Mode.HYBRID)
        residual = float(np.max(np.abs(
            np.asarray(measurement.value) - expected)))
        print(f"{nodes:>6}{measurement.wall:>12.3f}"
              f"{measurement.projected:>15.3f}   {residual:.2e}")


if __name__ == "__main__":
    main()
