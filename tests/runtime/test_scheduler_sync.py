"""Regression tests for the work-stealing scheduler rework.

Each class pins one of the fixes that landed with the scheduler:

* the collapse-aware ordered index (``linear_index`` used to map
  collapsed linear values through the outer triplet alone);
* the ``Barrier.poke`` lost-wakeup race (the count was read outside the
  condition lock) and the event-driven protocol's liveness without the
  backoff timeout;
* unbounded ``depend_map``/``depend_refs`` growth across task
  generations;
* task-count conservation under concurrent stealing;
* the undeferred-task-behind-a-deferred-predecessor deadlock on a
  single-thread team.
"""

import threading

import pytest

from repro.cruntime import cruntime
from repro.errors import OmpRuntimeError
from repro.ompt.metrics import MetricsTool
from repro.runtime import pure_runtime
from repro.runtime.team import Barrier, Team
from repro.runtime.worksharing import (collapsed_index, linear_index,
                                       make_bounds)


@pytest.fixture(params=["pure", "cruntime"])
def rt(request):
    return pure_runtime if request.param == "pure" else cruntime


def run_with_watchdog(fn, timeout=30.0):
    """Run ``fn`` on a daemon thread; fail instead of hanging forever."""
    errors = []

    def target():
        try:
            fn()
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors.append(error)

    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    worker.join(timeout)
    assert not worker.is_alive(), f"deadlock: still running after {timeout}s"
    if errors:
        raise errors[0]


# -- collapse-aware ordered index ------------------------------------------


class TestCollapsedOrderedIndex:
    """``linear_index`` with collapse(2) bounds whose outer loop is
    ``range(10, 16, 2)``: 3 x 4 = 12 iterations."""

    def _bounds(self):
        return make_bounds([10, 16, 2, 0, 4, 1])

    def test_collapsed_int_is_identity(self):
        # The generated collapse driver iterates the linear space
        # directly, so the value already *is* the position.  The
        # pre-fix code mapped it through the outer triplet:
        # (7 - 10) // 2 == -2.
        bounds = self._bounds()
        for linear in range(12):
            assert linear_index(bounds, linear) == linear

    def test_collapsed_tuple_maps_through_all_triplets(self):
        bounds = self._bounds()
        expected = 0
        for i in range(10, 16, 2):
            for j in range(4):
                assert linear_index(bounds, (i, j)) == expected
                assert collapsed_index(bounds, (i, j)) == expected
                expected += 1

    def test_single_loop_maps_through_triplet(self):
        bounds = make_bounds([10, 16, 2])
        assert [linear_index(bounds, value)
                for value in range(10, 16, 2)] == [0, 1, 2]

    def test_tuple_arity_mismatch_raises(self):
        with pytest.raises(OmpRuntimeError):
            collapsed_index(self._bounds(), (10,))

    def test_empty_collapsed_space(self):
        bounds = make_bounds([0, 0, 1, 0, 4, 1])
        assert collapsed_index(bounds, (0, 0)) == 0


class TestCollapsedOrderedEndToEnd:
    def test_ordered_sequences_nonzero_start_and_step(self, rt):
        """Hand-driven collapse(2) ordered loop whose outer triplet
        starts at 10 with step 2 — the shape the pre-fix index mangled
        into negative (colliding) ordered tickets."""
        log = []
        lock = threading.Lock()

        def region():
            bounds = rt.for_bounds([10, 16, 2, 0, 4, 1])
            rt.for_init(bounds, kind="dynamic", chunk=1, ordered=True)
            info = bounds[2]
            inner = info.inner_trips
            while rt.for_next(bounds):
                for linear in range(bounds[0], bounds[1]):
                    i = 10 + (linear // inner) * 2
                    j = linear % inner
                    rt.ordered_start(bounds, linear)
                    with lock:
                        log.append((i, j))
                    rt.ordered_end(bounds, linear)
            rt.for_end(bounds)

        run_with_watchdog(
            lambda: rt.parallel_run(region, num_threads=3))
        assert log == [(i, j) for i in range(10, 16, 2)
                       for j in range(4)]

    def test_ordered_tuple_form(self, rt):
        """The runtime-API tuple form: per-level loop-variable values
        instead of the precomputed linear number."""
        log = []

        def region():
            bounds = rt.for_bounds([4, 10, 3, 0, 2, 1])
            rt.for_init(bounds, kind="static", chunk=1, ordered=True)
            inner = bounds[2].inner_trips
            while rt.for_next(bounds):
                for linear in range(bounds[0], bounds[1]):
                    i = 4 + (linear // inner) * 3
                    j = linear % inner
                    rt.ordered_start(bounds, (i, j))
                    log.append((i, j))
                    rt.ordered_end(bounds, (i, j))
            rt.for_end(bounds)

        run_with_watchdog(
            lambda: rt.parallel_run(region, num_threads=2))
        assert log == [(i, j) for i in range(4, 10, 3)
                       for j in range(2)]


# -- barrier signalling ----------------------------------------------------


class TestBarrierPoke:
    def test_poke_synchronizes_on_condition_lock(self):
        """``poke`` must take the condition lock before deciding whether
        anyone needs waking.  The pre-fix code read the arrival count
        outside the lock and returned immediately, so a poke could slip
        between a waiter's failed re-check and its ``cond.wait`` — here
        it would *not* block while the test holds the lock."""
        barrier = Team(pure_runtime, None, 2).barrier
        entered = threading.Event()

        def poker():
            barrier.poke()
            entered.set()

        with barrier.cond:
            worker = threading.Thread(target=poker, daemon=True)
            worker.start()
            assert not entered.wait(timeout=0.2), \
                "poke returned without acquiring the condition lock"
        worker.join(timeout=5.0)
        assert entered.is_set()

    def test_poke_wakes_registered_waiter(self):
        barrier = Team(pure_runtime, None, 2).barrier
        woken = threading.Event()

        def waiter():
            with barrier.cond:
                barrier.waiters += 1
                barrier.cond.wait(timeout=30.0)
                barrier.waiters -= 1
            woken.set()

        worker = threading.Thread(target=waiter, daemon=True)
        worker.start()
        while True:  # wait until the waiter is registered
            with barrier.cond:
                if barrier.waiters:
                    break
        barrier.poke()
        assert woken.wait(timeout=5.0)
        worker.join(timeout=5.0)

    def test_barrier_lives_without_backoff_fallback(self, rt, monkeypatch):
        """With the timeout safety net disabled, the signalling protocol
        alone must keep a tasking workload live: waiters sleeping at the
        barrier are woken for new tasks and for the final release."""
        original_init = Barrier.__init__

        def no_fallback_init(self, team):
            original_init(self, team)
            self.use_fallback = False

        monkeypatch.setattr(Barrier, "__init__", no_fallback_init)
        done = []
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                for index in range(120):
                    def work(i=index):
                        with lock:
                            done.append(i)
                    rt.task_submit(work)
            rt.single_end(state)

        run_with_watchdog(
            lambda: rt.parallel_run(region, num_threads=4))
        assert sorted(done) == list(range(120))


# -- dependence-history pruning --------------------------------------------


class TestDependenceHistoryPruning:
    def test_taskwait_prunes_depend_map(self, rt):
        sizes = []
        lock = threading.Lock()

        def region():
            token = object()
            for _ in range(25):
                rt.task_submit(lambda: None, depends_out=(token,))
                rt.task_submit(lambda: None, depends_in=(token,))
                rt.task_wait()
            frame = rt.current_frame()
            with lock:
                sizes.append((len(frame.depend_map),
                              len(frame.depend_refs)))

        rt.parallel_run(region, num_threads=2)
        assert sizes == [(0, 0), (0, 0)]

    def test_barrier_prunes_depend_map(self, rt):
        sizes = []
        lock = threading.Lock()

        def region():
            tokens = [object() for _ in range(10)]
            for token in tokens:
                rt.task_submit(lambda: None, depends_out=(token,))
            rt.barrier()
            frame = rt.current_frame()
            with lock:
                sizes.append((len(frame.depend_map),
                              len(frame.depend_refs),
                              len(frame.children)))

        rt.parallel_run(region, num_threads=2)
        assert sizes == [(0, 0, 0), (0, 0, 0)]


# -- stealing stress -------------------------------------------------------


class TestWorkStealingConservation:
    def test_recursive_tasks_conserved_and_attributed(self, rt):
        """Every submitted task executes exactly once (no loss, no
        double execution) and every execution is attributed as either a
        local hit or a steal in the metrics."""
        executed = []
        lock = threading.Lock()
        total = 400

        def region():
            state = rt.single_begin()
            if state.selected:
                def spawn(low, high):
                    if high - low <= 4:
                        with lock:
                            executed.extend(range(low, high))
                        return
                    mid = (low + high) // 2
                    rt.task_submit(lambda: spawn(low, mid))
                    rt.task_submit(lambda: spawn(mid, high))
                spawn(0, total)
            rt.single_end(state)

        tool = MetricsTool()
        rt.attach_tool(tool)
        try:
            run_with_watchdog(
                lambda: rt.parallel_run(region, num_threads=4))
        finally:
            rt.detach_tool(tool)

        assert len(executed) == total  # no leaf ran twice
        assert sorted(executed) == list(range(total))

        data = tool.registry.as_dict()

        def counter_total(name):
            family = data.get(name)
            if family is None:
                return 0
            return sum(sample["value"] for sample in family["samples"])

        created = counter_total("omp_tasks_created_total")
        scheduled = counter_total("omp_tasks_executed_total")
        local = counter_total("omp_task_local_hits_total")
        steals = counter_total("omp_task_steals_total")
        assert created == scheduled
        assert local + steals == scheduled
        assert created > 0
        assert not tool._tasks  # every created task also completed


# -- undeferred task behind a deferred predecessor -------------------------


class TestUndeferredDependencePredecessor:
    def test_single_thread_team_does_not_deadlock(self, rt):
        """A deferred task A sits unclaimed in the deque when an
        undeferred task B depending on A is submitted on a one-thread
        team.  The encountering thread must help execute A instead of
        spinning on its completion event forever (the pre-fix
        behaviour)."""
        order = []

        def region():
            token = object()
            rt.task_submit(lambda: order.append("A"),
                           depends_out=(token,))
            rt.task_submit(lambda: order.append("B"), if_=False,
                           depends_in=(token,))

        run_with_watchdog(
            lambda: rt.parallel_run(region, num_threads=1))
        assert order == ["A", "B"]
