"""``python -m repro.profile`` — alias for :mod:`repro.ompt.cli`.

Kept as a top-level module so the profiling entry point reads naturally
next to ``python -m repro.lint`` and ``python -m repro.analysis.report``.
"""

import sys

from repro.ompt.cli import build_parser, main, merge_main, profile_app

__all__ = ["build_parser", "main", "merge_main", "profile_app"]

if __name__ == "__main__":
    sys.exit(main())
