"""The paper's benchmark applications.

Numerical (Section IV-A): fft, jacobi, lu, md, pi, qsort, bfs.
Non-numerical (Section IV-B): clustering, wordcount.
Hybrid (Section IV-C): jacobi_mpi.

Every app module exposes a :class:`repro.apps.base.AppSpec` named
``SPEC`` with input generation, a sequential reference, per-mode OMP4Py
kernels, the PyOMP variant (or its documented failure), verification,
and the paper/default/test problem sizes.
"""

from repro.apps.base import AppSpec, get_app, list_apps

__all__ = ["AppSpec", "get_app", "list_apps"]
