"""The pure-Python OMP4Py runtime (the paper's ``runtime``).

The runtime implements every low-level operation the generated code
calls (``parallel_run``, ``for_bounds``/``for_init``/``for_next``,
``task_submit``/``task_wait``, barriers, mutexes) plus the OpenMP runtime
library API.  The module-level singleton :data:`pure_runtime` is what the
transformer binds to the ``__omp__`` handle in *Pure* mode.

Logic modules here are shared with :mod:`repro.cruntime`, which swaps in
atomics-based low-level primitives — mirroring the paper's scheme where
the Cython runtime reuses the Python logic and overrides only the
low-level ``.pyx`` modules.
"""

from repro.runtime.engine import OmpRuntime
from repro.runtime.gilstate import Backend, current_backend
from repro.runtime.lowlevel import PureLowLevel

#: Singleton pure-Python runtime, bound as ``__omp__`` in *Pure* mode.
pure_runtime = OmpRuntime(PureLowLevel())

__all__ = ["Backend", "OmpRuntime", "current_backend", "pure_runtime"]
