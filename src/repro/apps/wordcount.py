"""Parallel word count (paper IV-B).

The paper uses the 21 GB Spanish Wikipedia dump and notes that, without
an input file, "the benchmark will automatically generate a synthetic
dataset from a fixed seed" — which is exactly what this module does: a
Zipf-distributed corpus with heavy-tailed line lengths (the load
imbalance that makes dynamic scheduling shine in Fig. 7).

PyOMP cannot run it: its Numba release "lacks support for compiling
Python dictionaries" — reproduced by the envelope checker.

Per-thread dictionaries merge under a ``critical`` section; the loop
uses ``schedule(runtime)`` for the Fig. 7 policy sweep.
"""

from __future__ import annotations

import random

from repro.apps.base import AppSpec
from repro.api import omp

_VOWELS = "aeiou"
_CONSONANTS = "bcdfglmnprstv"


def _make_vocabulary(size: int, rng: random.Random) -> list[str]:
    vocabulary = set()
    while len(vocabulary) < size:
        syllables = rng.randint(2, 4)
        word = "".join(rng.choice(_CONSONANTS) + rng.choice(_VOWELS)
                       for _ in range(syllables))
        vocabulary.add(word)
    return sorted(vocabulary)


def make_corpus(lines: int, vocabulary_size: int = 2000,
                seed: int = 777) -> list[str]:
    rng = random.Random(seed)
    vocabulary = _make_vocabulary(vocabulary_size, rng)
    # Zipf ranks: word k drawn with weight 1/(k+1).
    weights = [1.0 / (rank + 1) for rank in range(vocabulary_size)]
    corpus = []
    for index in range(lines):
        # Heavy-tailed line lengths: a few article-sized lines among
        # many stubs, like a wiki dump.
        if index % 97 == 0:
            length = rng.randint(200, 400)
        else:
            length = rng.randint(3, 30)
        corpus.append(" ".join(
            rng.choices(vocabulary, weights=weights, k=length)))
    return corpus


def make_input(lines: int = 0, vocabulary_size: int = 2000,
               seed: int = 777, path: str | None = None) -> dict:
    """Build the corpus: from ``path`` when given (the paper's artifact
    accepts the Wikipedia dump as a file argument), otherwise the
    synthetic fixed-seed dataset the paper falls back to."""
    if path is not None:
        with open(path, encoding="utf-8", errors="replace") as handle:
            corpus = handle.read().splitlines()
    else:
        corpus = make_corpus(lines, vocabulary_size, seed)
    return {"corpus": corpus, "count": len(corpus)}


def sequential(corpus, count):
    counts: dict[str, int] = {}
    for index in range(count):
        for word in corpus[index].split():
            counts[word] = counts.get(word, 0) + 1
    return counts


def kernel(corpus, count, threads):
    counts = {}
    with omp("parallel num_threads(threads)"):
        local = {}
        with omp("for schedule(runtime) nowait"):
            for index in range(count):
                for word in corpus[index].split():
                    local[word] = local.get(word, 0) + 1
        with omp("critical(wordcount_merge)"):
            for word in local:
                counts[word] = counts.get(word, 0) + local[word]
    return counts


def shard_map(nshards: int):
    """The planned merge's indirection map: iteration = shard id,
    element = that shard — no two iterations share an element, so the
    plan is a single color and the whole merge runs lock-free."""
    from repro.plan import Map
    return Map("wordcount-shards", [(shard,) for shard in range(nshards)])


def kernel_planned(corpus, count, threads, runtime=None):
    """Inspector–executor word count: a sharded, planned merge
    replaces the ``critical(wordcount_merge)`` section.

    The counting phase buckets each thread's tallies into
    ``hash(word) % nshards`` shard dictionaries; the merge phase is a
    plan over shard ids — every shard is touched by exactly one
    partition, so the plan has one color and each thread folds its
    owned shards from all workers without a lock, instead of the
    baseline's serialized whole-dictionary critical section.
    """
    from repro.plan import execute_member, plan_for

    if runtime is None:
        from repro.runtime import pure_runtime as runtime
    nthreads = max(1, threads)
    nshards = 4 * nthreads
    plan = plan_for(shard_map(nshards), 1, runtime=runtime)
    locals_ = [[{} for _ in range(nshards)] for _ in range(nthreads)]
    merged = [{} for _ in range(nshards)]

    def merge_body(lo, hi, thread_num):
        for shard in range(lo, hi):
            out = merged[shard]
            for per_thread in locals_:
                for word, tally in per_thread[shard].items():
                    out[word] = out.get(word, 0) + tally

    def member():
        thread_num = runtime.get_thread_num()
        size = runtime.get_num_threads()
        local = {}
        for index in range(thread_num * count // size,
                           (thread_num + 1) * count // size):
            for word in corpus[index].split():
                local[word] = local.get(word, 0) + 1
        # Shard per *unique* word (one hash per vocabulary entry), not
        # per occurrence — the counting loop stays as cheap as the
        # baseline's.
        shards = locals_[thread_num]
        for word, tally in local.items():
            shard = shards[hash(word) % nshards]
            shard[word] = tally
        # Every thread's shard dictionaries must be complete before
        # any thread starts folding them.
        runtime.barrier()
        execute_member(plan, merge_body, runtime=runtime)

    runtime.parallel_run(member, num_threads=nthreads)
    counts = {}
    for shard in merged:
        counts.update(shard)  # shards are key-disjoint by construction
    return counts


# String splitting and dict updates cannot be lowered to native kernels
# (the paper: "string and dictionary operations, which Cython cannot
# optimize effectively") — the typed pipeline shares the source.
kernel_dt = kernel


def pyomp_kernel(corpus, count, threads):
    counts = {}
    with openmp("parallel for num_threads(threads)"):  # noqa: F821
        for index in range(count):
            for word in corpus[index].split():
                counts[word] = counts.get(word, 0) + 1
    return counts


def verify(result, reference) -> bool:
    return result == reference


SPEC = AppSpec(
    name="wordcount",
    title="Word count",
    make_input=make_input,
    sequential=sequential,
    kernel=kernel,
    kernel_dt=kernel_dt,
    pyomp=pyomp_kernel,
    verify=verify,
    sizes={
        "test": {"lines": 300, "vocabulary_size": 300},
        "default": {"lines": 4000},
        "paper": {"lines": 2_000_000, "vocabulary_size": 200_000},
    },
    table1=None,
)
