"""Work accounting: the free-threaded-interpreter projection substrate.

The paper measures wall-clock times on a GIL-free interpreter.  This
reproduction runs on a GIL interpreter (and, in CI, a single core), so
the runtime additionally records each team member's *per-thread CPU
time* (``time.thread_time``) for every top-level parallel region.

Under the GIL, threads serialize, so the measured wall time of a region
is approximately the **sum** of per-thread CPU times plus overhead; on a
free-threaded interpreter it approaches the **maximum** (the critical
path) plus the same overhead.  The projection reported by the benchmark
harness is therefore::

    projected_wall = measured_wall - sum(cpu) + max(cpu)   (per region,
                                                            summed)

This preserves exactly what the paper's figures show — load balance,
scheduling quality, and mode-to-mode ratios — from the same execution.
See DESIGN.md, "Environment gaps and substitutions".
"""

from __future__ import annotations

import dataclasses
import threading


@dataclasses.dataclass
class RegionRecord:
    """CPU-time profile of one top-level parallel region."""

    size: int
    cpu_times: list[float]

    @property
    def sum_cpu(self) -> float:
        return sum(self.cpu_times)

    @property
    def max_cpu(self) -> float:
        return max(self.cpu_times) if self.cpu_times else 0.0

    @property
    def mean_cpu(self) -> float:
        if not self.cpu_times:
            return 0.0
        return self.sum_cpu / len(self.cpu_times)

    @property
    def imbalance(self) -> float:
        """Load imbalance: max over mean per-thread CPU time.

        1.0 means perfectly balanced; a region where nobody burned
        CPU (mean == 0) also reports 1.0, since there is no work to
        be imbalanced about.
        """
        mean = self.mean_cpu
        if mean <= 0.0:
            return 1.0
        return self.max_cpu / mean


class StatsCollector:
    """Accumulates region records between ``reset`` and ``snapshot``."""

    def __init__(self):
        self._lock = threading.Lock()
        self._records: list[RegionRecord] = []

    def reset(self) -> None:
        with self._lock:
            self._records.clear()

    def record(self, cpu_times: list[float]) -> None:
        with self._lock:
            self._records.append(
                RegionRecord(len(cpu_times), list(cpu_times)))

    def snapshot(self) -> list[RegionRecord]:
        with self._lock:
            return list(self._records)

    def totals(self) -> tuple[float, float, int]:
        """(total serialized CPU, total critical-path CPU, regions)."""
        with self._lock:
            serialized = sum(r.sum_cpu for r in self._records)
            critical = sum(r.max_cpu for r in self._records)
            return serialized, critical, len(self._records)

    def project(self, wall: float) -> float:
        """Projected no-GIL wall time for an interval measured as
        ``wall`` that contains the recorded regions."""
        serialized, critical, _count = self.totals()
        return max(wall - serialized + critical, critical, 0.0)
