"""Seeded bottleneck: a lock convoy on one named critical section.

Four threads each do a tiny slice of real work and then queue on the
same ``critical(hot)`` section for a comparatively long protected
update — the textbook convoy: the threads serialize behind the lock
and the region's wall time approaches the sum of all hold times.  The
program completes (it is slow, not stuck); run it under the scaling
explainer and the dominant finding names the ``critical`` directive at
the source line of the ``with omp("critical(hot)")`` below::

    python -m repro.explain examples/faults/lock_convoy.py

Expected report: dominant bottleneck **lock-convoy** at
``examples/faults/lock_convoy.py`` with a "what-if this lock were
free" critical-path gain close to the total queueing time.
"""

import time

from repro import omp

#: Iterations per thread; each one re-enters the contended section.
ROUNDS = 20
#: Seconds held inside the critical section per visit (the convoy).
HOLD_S = 0.002


@omp
def convoy(rounds=ROUNDS, hold_s=HOLD_S):
    shared = {"total": 0.0}
    with omp("parallel num_threads(4)"):
        for _ in range(rounds):
            local = hold_s * 0.05  # tiny unprotected slice of work
            time.sleep(local)
            with omp("critical(hot)"):
                time.sleep(hold_s)  # long protected update
                shared["total"] += local
    return shared["total"]


if __name__ == "__main__":
    begin = time.perf_counter()
    total = convoy()
    elapsed = time.perf_counter() - begin
    print(f"lock_convoy: total={total:.6f} wall={elapsed:.3f}s "
          f"(ideal ~{ROUNDS * HOLD_S * 4:.3f}s serialized)")
