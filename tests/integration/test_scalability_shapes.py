"""Shape tests: the qualitative claims of the paper's evaluation hold
in the projected measurements (who wins, and roughly by how much)."""

import pytest

from repro.analysis.runner import run_point, run_pyomp_point, sweep
from repro.analysis.timing import measure
from repro.apps import get_app
from repro.decorator import transform
from repro.modes import Mode


class TestModeOrdering:
    """Paper Section IV-A / artifact appendix: the expected performance
    ordering is CompiledDT fastest, Pure slowest."""

    def test_compileddt_beats_pure_on_pi(self):
        spec = get_app("pi")
        pure = run_point(spec, Mode.PURE, 2, "default")
        fast = run_point(spec, Mode.COMPILED_DT, 2, "default")
        # Paper: up to three orders of magnitude; insist on >= 5x even
        # at this compact problem size.
        assert fast.wall * 5 < pure.wall

    def test_pyomp_close_to_compileddt_on_pi(self):
        spec = get_app("pi")
        reference = spec.sequential(**spec.inputs("default"))
        dt = run_point(spec, Mode.COMPILED_DT, 2, "default",
                       reference=reference)
        baseline = run_pyomp_point(spec, 2, "default",
                                   reference=reference)
        assert baseline.error is None
        # Paper: within ~5%; allow a generous factor-2 band for noise.
        assert baseline.wall < dt.wall * 2
        assert dt.wall < baseline.wall * 2

    def test_nonnumerical_modes_are_similar(self):
        """Fig. 6's shape: no mode wins big on wordcount."""
        spec = get_app("wordcount")
        walls = {}
        for mode in (Mode.PURE, Mode.COMPILED_DT):
            walls[mode] = run_point(spec, mode, 2, "default",
                                    repeats=2).wall
        ratio = walls[Mode.PURE] / walls[Mode.COMPILED_DT]
        assert 0.4 < ratio < 2.5


class TestProjectionScaling:
    """The projected (no-GIL) times must scale with threads, which is
    what Fig. 5's curves show."""

    @pytest.mark.parametrize("app", ["pi", "jacobi"])
    def test_projected_time_drops_with_threads(self, app):
        spec = get_app(app)
        points = {p.threads: p for p in sweep(
            spec, [1, 4], profile="default", modes=[Mode.HYBRID],
            include_pyomp=False, verify=False)}
        assert points[4].projected < points[1].projected * 0.45

    def test_wall_time_does_not_scale_under_gil(self):
        """Sanity check of the projection's premise on this hardware:
        measured wall time shows no speedup (documenting exactly why
        the projection column exists)."""
        spec = get_app("pi")
        points = {p.threads: p for p in sweep(
            spec, [1, 4], profile="default", modes=[Mode.PURE],
            include_pyomp=False, verify=False)}
        import os
        if (os.cpu_count() or 1) == 1:
            assert points[4].wall > points[1].wall * 0.7


class TestLoadBalanceShapes:
    """Fig. 7's core claim: dynamic scheduling beats static under load
    imbalance (here: a triangular workload)."""

    def test_dynamic_has_shorter_critical_path_than_static(self):
        # A large triangle: with 4 threads, unchunked static gives the
        # last thread ~44% of the work, while dynamic,8 balances to
        # ~25% + handout overhead.  Needs enough work (~100ms) for
        # per-thread CPU attribution to dominate GIL-quantum noise.
        results = {}
        fn = transform(_triangular, Mode.HYBRID)
        for kind in ("static", "dynamic"):
            results[kind] = measure(fn, 2200, kind, 4, repeats=3)
        static, dynamic = results["static"], results["dynamic"]
        # Identical total work...
        assert static.serialized_cpu == pytest.approx(
            dynamic.serialized_cpu, rel=0.35)
        # ...but dynamic spreads the triangle across the team.
        assert dynamic.critical_cpu < static.critical_cpu * 0.8


def _triangular(n, kind, threads):
    from repro import omp
    total = 0
    if kind == "static":
        with omp("parallel for schedule(static) num_threads(threads) "
                 "reduction(+:total)"):
            for i in range(n):
                for j in range(i):
                    total += j
    else:
        with omp("parallel for schedule(dynamic, 8) "
                 "num_threads(threads) reduction(+:total)"):
            for i in range(n):
                for j in range(i):
                    total += j
    return total
