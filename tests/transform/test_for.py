"""End-to-end tests of the ``for`` worksharing directive."""

import pytest

from repro import Mode, transform
from repro.errors import OmpSyntaxError


def simple_parallel_for(n):
    from repro import omp
    out = [0] * n
    with omp("parallel for num_threads(4)"):
        for i in range(n):
            out[i] = i * i
    return out


def for_inside_parallel(n):
    from repro import omp
    out = [0] * n
    with omp("parallel num_threads(3)"):
        with omp("for schedule(dynamic, 5)"):
            for i in range(n):
                out[i] = i + 1
    return out


def reduction_loop(n):
    from repro import omp
    total = 0
    with omp("parallel num_threads(4)"):
        with omp("for reduction(+:total)"):
            for i in range(n):
                total += i
    return total


def loop_with_step(n):
    from repro import omp
    hits = []
    with omp("parallel for num_threads(2) schedule(static, 3)"):
        for i in range(0, n, 4):
            with omp("critical"):
                hits.append(i)
    return sorted(hits)


def negative_step_loop(n):
    from repro import omp
    hits = []
    with omp("parallel for num_threads(3)"):
        for i in range(n, 0, -2):
            with omp("critical"):
                hits.append(i)
    return sorted(hits)


def collapse_two(rows, cols):
    from repro import omp
    cells = []
    with omp("parallel for collapse(2) num_threads(4)"):
        for i in range(rows):
            for j in range(cols):
                with omp("critical"):
                    cells.append((i, j))
    return sorted(cells)


def collapse_three(a, b, c):
    from repro import omp
    cells = []
    with omp("parallel for collapse(3) num_threads(2) schedule(dynamic)"):
        for i in range(a):
            for j in range(b):
                for k in range(c):
                    with omp("critical"):
                        cells.append((i, j, k))
    return sorted(cells)


def collapse_with_steps(n):
    from repro import omp
    cells = []
    with omp("parallel for collapse(2) num_threads(3)"):
        for i in range(0, n, 2):
            for j in range(5, -1, -3):
                with omp("critical"):
                    cells.append((i, j))
    return sorted(cells)


def lastprivate_loop(n):
    from repro import omp
    value = -1
    with omp("parallel for lastprivate(value) num_threads(4) "
             "schedule(dynamic, 3)"):
        for i in range(n):
            value = i * 10
    return value


def firstprivate_lastprivate_loop(n):
    from repro import omp
    value = 5
    seen = []
    with omp("parallel num_threads(2)"):
        with omp("for firstprivate(value) lastprivate(value)"):
            for i in range(n):
                seen.append(value + i)
                value = i
    return value


def ordered_loop(n):
    from repro import omp
    order = []
    with omp("parallel for ordered num_threads(4) schedule(dynamic, 1)"):
        for i in range(n):
            squared = i * i
            with omp("ordered"):
                order.append((i, squared))
    return order


def loop_private_clause(n):
    from repro import omp
    t = 1000
    out = []
    with omp("parallel num_threads(2)"):
        with omp("for private(t)"):
            for i in range(n):
                t = i * 2
                with omp("critical"):
                    out.append(t)
    return t, sorted(out)


def nowait_loop(n):
    from repro import omp, omp_get_thread_num
    first_done = []
    with omp("parallel num_threads(2)"):
        with omp("for nowait schedule(static)"):
            for i in range(n):
                pass
        with omp("critical"):
            first_done.append(omp_get_thread_num())
    return sorted(first_done)


def loop_over_list_rejected(items):
    from repro import omp
    with omp("parallel for"):
        for item in items:
            pass


def loop_break_rejected(n):
    from repro import omp
    with omp("parallel for"):
        for i in range(n):
            break


def loop_inner_break_allowed(n):
    from repro import omp
    total = 0
    with omp("parallel for reduction(+:total) num_threads(2)"):
        for i in range(n):
            for j in range(10):
                if j > i:
                    break
                total += 1
    return total


def collapse_not_rectangular(n):
    from repro import omp
    with omp("parallel for collapse(2)"):
        for i in range(n):
            for j in range(i):
                pass


def collapse_not_nested(n):
    from repro import omp
    with omp("parallel for collapse(2)"):
        for i in range(n):
            x = 1
            for j in range(n):
                pass


def loop_var_reused_outside(n):
    from repro import omp
    i = 777
    total = 0
    with omp("parallel num_threads(2)"):
        with omp("for reduction(+:total)"):
            for i in range(n):
                total += 1
    return i, total


class TestBasicLoops:
    def test_combined_parallel_for(self, runtime_mode):
        fn = transform(simple_parallel_for, runtime_mode)
        assert fn(50) == [i * i for i in range(50)]

    def test_for_inside_parallel(self, runtime_mode):
        fn = transform(for_inside_parallel, runtime_mode)
        assert fn(37) == [i + 1 for i in range(37)]

    def test_reduction(self, runtime_mode):
        fn = transform(reduction_loop, runtime_mode)
        assert fn(101) == sum(range(101))

    def test_step(self, runtime_mode):
        fn = transform(loop_with_step, runtime_mode)
        assert fn(30) == list(range(0, 30, 4))

    def test_negative_step(self, runtime_mode):
        fn = transform(negative_step_loop, runtime_mode)
        assert fn(21) == sorted(range(21, 0, -2))

    def test_empty_iteration_space(self, runtime_mode):
        fn = transform(simple_parallel_for, runtime_mode)
        assert fn(0) == []

    def test_loop_var_not_clobbered(self, runtime_mode):
        fn = transform(loop_var_reused_outside, runtime_mode)
        assert fn(10) == (777, 10)


class TestCollapse:
    def test_collapse_two(self, runtime_mode):
        fn = transform(collapse_two, runtime_mode)
        assert fn(5, 7) == [(i, j) for i in range(5) for j in range(7)]

    def test_collapse_three(self, runtime_mode):
        fn = transform(collapse_three, runtime_mode)
        expected = [(i, j, k) for i in range(3) for j in range(4)
                    for k in range(2)]
        assert fn(3, 4, 2) == expected

    def test_collapse_with_steps(self, runtime_mode):
        fn = transform(collapse_with_steps, runtime_mode)
        expected = sorted((i, j) for i in range(0, 9, 2)
                          for j in range(5, -1, -3))
        assert fn(9) == expected

    def test_non_rectangular_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="rectangular"):
            transform(collapse_not_rectangular, runtime_mode)

    def test_not_perfectly_nested_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="nested"):
            transform(collapse_not_nested, runtime_mode)


class TestLastprivate:
    def test_lastprivate_gets_final_iteration(self, runtime_mode):
        fn = transform(lastprivate_loop, runtime_mode)
        assert fn(23) == 220

    def test_first_and_lastprivate(self, runtime_mode):
        fn = transform(firstprivate_lastprivate_loop, runtime_mode)
        assert fn(9) == 8

    def test_lastprivate_empty_loop_keeps_value(self, runtime_mode):
        fn = transform(lastprivate_loop, runtime_mode)
        assert fn(0) == -1


class TestOrdered:
    def test_ordered_regions_run_in_iteration_order(self, runtime_mode):
        fn = transform(ordered_loop, runtime_mode)
        assert fn(25) == [(i, i * i) for i in range(25)]


class TestPrivateClauses:
    def test_loop_private(self, runtime_mode):
        fn = transform(loop_private_clause, runtime_mode)
        outer, seen = fn(8)
        assert outer == 1000
        assert seen == [i * 2 for i in range(8)]

    def test_nowait(self, runtime_mode):
        fn = transform(nowait_loop, runtime_mode)
        assert fn(16) == [0, 1]


class TestLoopErrors:
    def test_non_range_iterable_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="range"):
            transform(loop_over_list_rejected, runtime_mode)

    def test_break_of_ws_loop_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="break"):
            transform(loop_break_rejected, runtime_mode)

    def test_break_of_inner_loop_allowed(self, runtime_mode):
        fn = transform(loop_inner_break_allowed, runtime_mode)
        expected = sum(min(i + 1, 10) for i in range(12))
        assert fn(12) == expected
