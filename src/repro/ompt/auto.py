"""Environment-driven auto-instrumentation (``OMP4PY_TRACE`` /
``OMP4PY_METRICS`` / ``OMP4PY_METRICS_PORT``).

The ``@omp`` decorator asks this module to instrument the runtime it is
about to bind.  Each knob is ``off`` (unset/false), ``on`` (a true
string — collect in memory, artifacts retrievable via the API), or an
output *path* — collect and write the artifact at interpreter exit
(Chrome trace JSON for ``OMP4PY_TRACE``; Prometheus text, or the JSON
report when the path ends in ``.json``, for ``OMP4PY_METRICS``).

``OMP4PY_METRICS_PORT`` additionally arms the tracer and a metrics
tool and serves live ``/metrics`` (Prometheus text) and ``/explain``
(critical-path DAG summary JSON) over HTTP for the lifetime of the
process (:class:`repro.explain.live.MetricsServer`); port ``0`` binds
an ephemeral port, announced on stderr.

Instrumentation is idempotent per runtime instance and reversible with
:func:`deactivate` (used by tests and the profile CLI, which manage
their own tools).
"""

from __future__ import annotations

import atexit
import sys

from repro import env

#: id(runtime) → (runtime, attached MetricsTool | None,
#: MetricsServer | None) for every runtime this module instrumented
#: (identity-keyed: runtimes are singletons that must not be kept
#: alive through hashing semantics).
_active: dict[int, tuple] = {}


def auto_instrument(runtime) -> None:
    """Honour the env knobs for ``runtime`` (no-op when all are off)."""
    trace = env.trace_spec()
    metrics = env.metrics_spec()
    port = env.metrics_port()
    if trace is None and metrics is None and port is None:
        return
    if id(runtime) in _active:
        return
    tool = None
    if trace is not None or port is not None:
        runtime.tracer.start()
        if trace is not None and trace != "1":
            atexit.register(_write_trace, runtime, trace)
    if metrics is not None or port is not None:
        from repro.ompt.metrics import MetricsTool
        tool = MetricsTool()
        runtime.attach_tool(tool)
        if metrics is not None and metrics != "1":
            atexit.register(_write_metrics, runtime, tool, metrics)
    server = None
    if port is not None:
        from repro.explain.live import MetricsServer
        server = MetricsServer(runtime, registry=tool.registry,
                               port=port)
        try:
            server.start()
        except OSError as error:
            print(f"omp4py: cannot serve metrics on port {port}: "
                  f"{error}", file=sys.stderr)
            server = None
        else:
            print(f"omp4py: live metrics ({runtime.name}) at "
                  f"{server.url}/metrics (explain at /explain)",
                  file=sys.stderr)
            atexit.register(server.stop)
    _active[id(runtime)] = (runtime, tool, server)


def active_tool(runtime):
    """The auto-attached MetricsTool for ``runtime``, if any."""
    entry = _active.get(id(runtime))
    return entry[1] if entry else None


def active_server(runtime):
    """The live MetricsServer for ``runtime``, if any."""
    entry = _active.get(id(runtime))
    return entry[2] if entry else None


def deactivate(runtime) -> None:
    """Undo :func:`auto_instrument` for one runtime."""
    entry = _active.pop(id(runtime), None)
    if entry is None:
        return
    _runtime, tool, server = entry
    if server is not None:
        server.stop()
    if tool is not None:
        runtime.detach_tool(tool)
    runtime.tracer.stop()


def _rank_path(path: str, rank: int) -> str:
    """``trace.json`` → ``trace.rank<k>.json`` (suffix-preserving)."""
    import os
    stem, extension = os.path.splitext(path)
    return f"{stem}.rank{rank}{extension}"


def _write_trace(runtime, path: str) -> None:
    from repro.ompt.exporters import write_chrome_trace
    events = runtime.tracer.stop()
    metadata = {"runtime": runtime.name}
    # Under an external MPI launcher every rank process would clobber
    # the same file; shard by rank and record it so
    # ``python -m repro.profile --merge`` can rebuild one timeline.
    from repro.mpi.launcher import env_rank
    rank = env_rank()
    if rank is not None:
        path = _rank_path(path, rank)
        metadata["rank"] = rank
    try:
        write_chrome_trace(path, events, dropped=events.dropped,
                           metadata=metadata)
    except OSError as error:  # pragma: no cover - exit-time best effort
        print(f"omp4py: cannot write trace to {path}: {error}",
              file=sys.stderr)


def _write_metrics(runtime, tool, path: str) -> None:
    from repro.ompt.exporters import metrics_report, prometheus_text
    try:
        if path.endswith(".json"):
            import json
            report = metrics_report(tool.registry,
                                    runtime.stats.snapshot())
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2)
        else:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(prometheus_text(tool.registry))
    except OSError as error:  # pragma: no cover - exit-time best effort
        print(f"omp4py: cannot write metrics to {path}: {error}",
              file=sys.stderr)
