"""Smoke tests: every example script runs and produces sane output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, expect_rc: int = 0):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == expect_rc, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "200000")
        assert "3.14159" in out
        assert "compileddt" in out

    def test_fibonacci_tasks(self):
        out = run_example("fibonacci_tasks.py", "15", "3")
        assert "fibonacci(15) = 610" in out

    def test_wordcount_scheduling(self):
        out = run_example("wordcount_scheduling.py", "400", "3")
        assert "dynamic" in out
        assert "guided" in out

    def test_hybrid_mpi_jacobi(self):
        out = run_example("hybrid_mpi_jacobi.py", "64", "2")
        assert "nodes" in out
        for nodes in ("1", "2", "4"):
            assert f"\n     {nodes}" in out or f" {nodes} " in out

    def test_advanced_directives(self):
        out = run_example("advanced_directives.py")
        assert "elephant" in out          # declare reduction
        assert "[64, 64, 64, 64]" in out  # copyprivate broadcast
        assert "locks:           True" in out

    def test_wavefront_dependences(self):
        out = run_example("wavefront_dependences.py", "4", "8")
        assert "matches sequential" in out
        assert "taskloop row checksums" in out


class TestArtifactDriver:
    def test_pi_compileddt(self):
        out = run_example("main.py", "3", "pi", "2", "test")
        assert "[ok]" in out

    def test_maze_alias(self):
        out = run_example("main.py", "1", "maze", "2", "test")
        assert "bfs" in out
        assert "[ok]" in out

    def test_pyomp_mode_on_supported_app(self):
        out = run_example("main.py", "-1", "pi", "2", "test")
        assert "pyomp" in out
        assert "[ok]" in out

    def test_pyomp_mode_on_unsupported_app(self):
        out = run_example("main.py", "-1", "wordcount", "2", "test",
                          expect_rc=1)
        assert "cannot run" in out

    def test_usage_message(self):
        out = run_example("main.py", expect_rc=2)
        assert "Usage" in out or "mode" in out

    def test_jacobi_mpi_driver(self):
        out = run_example("main.py", "1", "jacobi-mpi", "2", "test")
        assert "jacobi-mpi" in out


class TestReproduceDriver:
    def test_smoke_run_writes_all_artifacts(self, tmp_path):
        root = pathlib.Path(__file__).resolve().parents[2]
        result = subprocess.run(
            [sys.executable, str(root / "benchmarks" / "reproduce.py"),
             "--profile", "test", "--threads", "1,2", "--nodes", "1,2",
             "--apps", "pi", "--skip-check",
             "--out", str(tmp_path / "results")],
            capture_output=True, text=True, timeout=600)
        assert result.returncode == 0, result.stderr
        written = {p.name for p in (tmp_path / "results").iterdir()}
        assert written >= {"table1.txt", "fig5.txt", "fig6.txt",
                           "fig7.txt", "fig8.txt", "headline.txt"}
        fig5 = (tmp_path / "results" / "fig5.txt").read_text()
        assert "pi" in fig5
        assert "self-speedup" in fig5
