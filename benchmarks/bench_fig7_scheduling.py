"""Fig. 7 — scheduling policies on the two non-numerical apps.

The kernels are written with ``schedule(runtime)``; the benchmark sets
the policy through the schedule ICV, exactly how the figure's series
differ.  Chunk-size sensitivity (the paper's 150/300/600 discussion) is
the second parameter axis.
"""

import pytest

from repro.apps import get_app
from repro.cruntime import cruntime
from repro.modes import Mode

from conftest import BENCH_THREADS

PROFILE = "test"


@pytest.mark.parametrize("policy", ("static", "dynamic", "guided"))
@pytest.mark.parametrize("app", ("clustering", "wordcount"))
def test_fig7_policies(benchmark, app, policy):
    spec = get_app(app)
    benchmark.group = f"fig7:{app}"
    variant = spec.variant(Mode.HYBRID)

    def setup():
        cruntime.set_schedule(policy, 16)
        inputs = spec.inputs(PROFILE)
        inputs["threads"] = BENCH_THREADS
        return (), inputs

    try:
        benchmark.pedantic(variant, setup=setup, rounds=3)
    finally:
        cruntime.set_schedule("static")


@pytest.mark.parametrize("chunk", (8, 16, 32))
def test_fig7_chunk_sizes(benchmark, chunk):
    """The paper's halved/doubled chunk-size variation (wordcount)."""
    spec = get_app("wordcount")
    benchmark.group = "fig7:wordcount-chunks"
    variant = spec.variant(Mode.HYBRID)

    def setup():
        cruntime.set_schedule("dynamic", chunk)
        inputs = spec.inputs(PROFILE)
        inputs["threads"] = BENCH_THREADS
        return (), inputs

    try:
        benchmark.pedantic(variant, setup=setup, rounds=3)
    finally:
        cruntime.set_schedule("static")
