"""The serving core: input store, dispatcher, and the HTTP front door.

:class:`ServeServer` wires the subsystem together:

* the **input store** lazily materializes each (app, profile,
  overrides) input set once — numeric arrays into shared-memory
  segments, scalars onto the control plane, the rest marked for
  in-worker rebuild — and computes the sequential reference digest
  every response is verified against;
* the **dispatcher** (one thread) pulls batches from the admission
  queue, charges tenant budgets, stamps each job with its tenant's CPU
  partition, and hands it to an idle worker; crashed jobs are requeued
  at the front with bounded retries, so an accepted request survives a
  worker kill;
* the **front door** is a stdlib ``ThreadingHTTPServer`` in the
  :mod:`repro.explain.live` style: ``POST /v1/run`` executes a kernel,
  ``POST /v1/tenants`` registers a tenant (409 on duplicates),
  ``GET /v1/apps``, ``/state``, ``/metrics`` (Prometheus text via the
  existing exporter), and ``/healthz``.  A full queue sheds with 503
  plus ``Retry-After``.
"""

from __future__ import annotations

import itertools
import json
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import OmpError
from repro.ompt.metrics import MetricsRegistry
from repro.serve import catalog
from repro.serve.admission import AdmissionQueue, QueueFull
from repro.serve.fleet import Fleet
from repro.serve.protocol import (STATE_SCHEMA, ServeRequest,
                                  digests_match, parse_request,
                                  result_digest)
from repro.serve.shm import ShmRegistry
from repro.serve.tenants import DuplicateTenantError, TenantDirectory

#: Server-wide per-request thread cap (tenant budgets clamp further).
MAX_THREADS = 64

#: Latency samples kept for exact percentiles.
LATENCY_WINDOW = 8192

_SERVICE_BOUNDS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)


class InputStore:
    """Lazy per-(app, profile, overrides) input materialization."""

    def __init__(self, registry: ShmRegistry):
        self.registry = registry
        self._lock = threading.Lock()
        self._entries: dict[tuple, dict] = {}

    def entry(self, request: ServeRequest) -> dict:
        key = request.input_key
        with self._lock:
            cached = self._entries.get(key)
        if cached is not None:
            return cached
        inputs = catalog.build_inputs(request.app, request.profile,
                                      request.overrides)
        arrays, scalars, rebuild = catalog.classify_inputs(
            request.app, inputs)
        wire = {}
        for field, (array, container, read_only) in arrays.items():
            handle = self.registry.create_array(
                array, container=container, read_only=read_only)
            wire[field] = handle.to_wire()
        reference = catalog.reference_result(
            request.app, request.profile, request.overrides)
        expected = None if reference is catalog.NO_REFERENCE \
            else result_digest(reference)
        entry = {"arrays": wire, "scalars": scalars,
                 "rebuild": rebuild, "expected": expected}
        with self._lock:
            self._entries.setdefault(key, entry)
            return self._entries[key]


class ServeStats:
    """Rollup counters plus an exact-percentile latency window."""

    def __init__(self):
        self.lock = threading.Lock()
        self.accepted = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.retries = 0
        self.rejected = 0
        self.busy_cpu_s = 0.0
        self._latencies: list[float] = []
        self.started = time.monotonic()

    def observe_latency(self, seconds: float) -> None:
        with self.lock:
            self._latencies.append(seconds)
            if len(self._latencies) > LATENCY_WINDOW:
                del self._latencies[:LATENCY_WINDOW // 8]

    def percentile(self, q: float) -> float | None:
        with self.lock:
            if not self._latencies:
                return None
            ordered = sorted(self._latencies)
        index = min(len(ordered) - 1,
                    max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict:
        with self.lock:
            done = self.completed
            elapsed = max(1e-9, time.monotonic() - self.started)
            payload = {"accepted": self.accepted,
                       "completed": done,
                       "failed": self.failed,
                       "shed": self.shed,
                       "retries": self.retries,
                       "rejected": self.rejected,
                       "busy_cpu_s": round(self.busy_cpu_s, 4),
                       "rps": round(done / elapsed, 3)}
        payload["p50_s"] = self.percentile(0.50)
        payload["p99_s"] = self.percentile(0.99)
        return payload


class ServeServer:
    """The shared-memory kernel-serving layer (see module docstring)."""

    def __init__(self, *, workers: int = 2, queue_capacity: int = 16,
                 max_batch: int = 4, tenants: dict[str, int] | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 job_timeout: float = 120.0, max_retries: int = 2,
                 warm_threads: int | None = None,
                 watchdog_interval: float | None = 5.0,
                 debug_apps: bool = False,
                 report_dir: str | None = None):
        self.debug_apps = debug_apps
        self.max_batch = max(1, max_batch)
        self.max_retries = max(0, max_retries)
        self.job_timeout = job_timeout
        self._requested = (host, port)
        budgets = dict(tenants or {"default": 4})
        self.default_tenant = sorted(budgets)[0]
        self.tenants = TenantDirectory()
        for name in sorted(budgets):
            self.tenants.register(name, budgets[name])
        self.queue = AdmissionQueue(queue_capacity)
        self.stats = ServeStats()
        self.metrics = MetricsRegistry()
        self.shm = ShmRegistry()
        self.inputs = InputStore(self.shm)
        if report_dir is None:
            self._report_tmp = tempfile.TemporaryDirectory(
                prefix="omp4py-serve-")
            report_dir = self._report_tmp.name
        else:
            self._report_tmp = None
        self.fleet = Fleet(
            workers=workers, registry=self.shm, report_dir=report_dir,
            warm_apps=catalog.serveable_apps(debug_apps),
            warm_threads=warm_threads or max(budgets.values()),
            watchdog_interval=watchdog_interval,
            job_timeout=job_timeout,
            debug_apps=debug_apps,
            on_result=self._on_result, on_crash=self._on_crash,
            on_idle=self._wake)
        self._job_ids = itertools.count(1)
        self._jobs: dict[int, dict] = {}
        self._jobs_lock = threading.Lock()
        self._wakeup = threading.Condition()
        self._stopping = False
        self._dispatcher: threading.Thread | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self, *, wait_ready: bool = True) -> "ServeServer":
        self.fleet.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="omp4py-serve-dispatcher",
            daemon=True)
        self._dispatcher.start()
        self._start_http()
        if wait_ready:
            self.fleet.wait_ready()
        return self

    def stop(self) -> None:
        with self._wakeup:
            self._stopping = True
            self._wakeup.notify_all()
        if self._httpd is not None:
            httpd, self._httpd = self._httpd, None
            httpd.shutdown()
            httpd.server_close()
            if self._http_thread is not None:
                self._http_thread.join(timeout=5)
        for request in self.queue.drain():
            request.complete({"ok": False, "id": request.id,
                              "error": "server shutting down"})
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5)
        self.fleet.shutdown()
        self.shm.close_all()
        if self._report_tmp is not None:
            self._report_tmp.cleanup()

    @property
    def port(self) -> int | None:
        if self._httpd is None:
            return None
        return self._httpd.server_address[1]

    @property
    def url(self) -> str | None:
        if self._httpd is None:
            return None
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def _wake(self) -> None:
        with self._wakeup:
            self._wakeup.notify_all()

    # -- submission ------------------------------------------------------

    def known_apps(self) -> list[str]:
        return catalog.serveable_apps(self.debug_apps)

    def submit(self, doc: dict, *,
               timeout: float | None = None) -> dict:
        """Parse, admit, dispatch, and wait for one request.

        Raises :class:`OmpError` on a malformed request and
        :class:`QueueFull` on shed — callers (HTTP front door, bench,
        tests) map those to 400/503 themselves.
        """
        request = parse_request(doc, known_apps=self.known_apps(),
                                default_tenant=self.default_tenant,
                                max_threads=MAX_THREADS)
        request.threads = self.tenants.clamp_threads(
            request.tenant, request.threads)
        try:
            self.queue.offer(request,
                             idle_workers=self.fleet.idle_workers())
        except QueueFull:
            with self.stats.lock:
                self.stats.shed += 1
            self.metrics.counter(
                "omp_serve_shed_total",
                "Requests shed at admission", reason="queue_full").inc()
            raise
        with self.stats.lock:
            self.stats.accepted += 1
        self._wake()
        wait = timeout if timeout is not None \
            else self.job_timeout * (self.max_retries + 1) + 30.0
        if not request.done.wait(timeout=wait):
            return {"ok": False, "id": request.id,
                    "error": "request timed out in the server",
                    "timeout": True}
        return request.response

    # -- dispatcher ------------------------------------------------------

    def _can_dispatch(self, request: ServeRequest) -> bool:
        if self.tenants.can_acquire(request.tenant, request.threads):
            return True
        if not request.throttled:
            request.throttled = True
            self.metrics.counter(
                "omp_serve_tenant_throttles_total",
                "Dispatches deferred by a tenant's thread budget",
                tenant=request.tenant).inc()
            self.tenants.throttles[request.tenant] = \
                self.tenants.throttles.get(request.tenant, 0) + 1
        return False

    def _dispatch_loop(self) -> None:
        while True:
            with self._wakeup:
                if self._stopping:
                    return
                if self.queue.depth() == 0 \
                        or self.fleet.idle_workers() == 0:
                    self._wakeup.wait(timeout=0.1)
                    continue
            worker = self.fleet.acquire_idle()
            if worker is None:
                continue
            batch = self.queue.next_batch(
                max_batch=self.max_batch,
                can_dispatch=self._can_dispatch)
            if not batch:
                self.fleet.release_idle(worker)
                with self._wakeup:
                    if not self._stopping:
                        self._wakeup.wait(timeout=0.05)
                continue
            self._dispatch_batch(worker, batch)

    def _fail_batch(self, batch: list[ServeRequest],
                    error: str) -> None:
        for request in batch:
            with self.stats.lock:
                self.stats.failed += 1
            self.metrics.counter(
                "omp_serve_requests_total",
                "Requests completed, by tenant/app/status",
                tenant=request.tenant, app=request.app,
                status="error").inc()
            request.complete({"ok": False, "id": request.id,
                              "app": request.app,
                              "tenant": request.tenant,
                              "error": error})

    def _dispatch_batch(self, worker, batch: list[ServeRequest]) -> None:
        head = batch[0]
        try:
            entry = self.inputs.entry(head)
        except Exception as error:  # noqa: BLE001 - client-facing
            self.fleet.release_idle(worker)
            self._fail_batch(batch, f"input build failed: {error}")
            return
        if not self.tenants.try_acquire(head.tenant, head.threads):
            # A release can only add headroom between the pure check
            # and the charge, so this is effectively unreachable; be
            # safe and retry the batch later anyway.
            self.fleet.release_idle(worker)
            self.queue.requeue_front(batch)
            return
        tenant = self.tenants.get(head.tenant)
        job_id = next(self._job_ids)
        job_doc = {"op": "job", "job_id": job_id,
                   "app": head.app, "mode": head.mode,
                   "profile": head.profile, "threads": head.threads,
                   "nodes": head.nodes, "tenant": head.tenant,
                   "overrides": dict(head.overrides),
                   "arrays": entry["arrays"],
                   "scalars": entry["scalars"],
                   "rebuild": entry["rebuild"],
                   "places": tenant.places_spec if tenant else None,
                   "proc_bind": tenant.proc_bind if tenant else "close",
                   "requests": [{"id": request.id,
                                 "return_values": request.return_values}
                                for request in batch]}
        with self._jobs_lock:
            self._jobs[job_id] = {"requests": {r.id: r for r in batch},
                                  "tenant": head.tenant,
                                  "threads": head.threads,
                                  "expected": entry["expected"]}
        self.metrics.histogram(
            "omp_serve_batch_size", "Requests coalesced per job",
            bounds=(1, 2, 4, 8, 16, 32)).observe(len(batch))
        timeout = self.job_timeout * max(1, len(batch))
        if not self.fleet.dispatch(worker, job_doc, batch,
                                   timeout=timeout):
            # Dead pipe: the reader thread's crash path requeues.
            pass

    # -- fleet callbacks -------------------------------------------------

    def _pop_job(self, job_id: int) -> dict | None:
        with self._jobs_lock:
            return self._jobs.pop(job_id, None)

    def _on_result(self, worker, message: dict) -> None:
        job = self._pop_job(message.get("job_id"))
        if job is None:
            return
        self.tenants.release(job["tenant"], job["threads"])
        slab_view = None
        now = time.monotonic()
        for record in message.get("results") or []:
            request = job["requests"].pop(record.get("id"), None)
            if request is None:
                continue
            response = {"ok": False, "id": request.id,
                        "app": request.app, "tenant": request.tenant,
                        "mode": request.mode, "threads": request.threads,
                        "nodes": request.nodes,
                        "worker": worker.id, "pid": message.get("pid"),
                        "attempts": request.attempts + 1,
                        "wall_s": record.get("wall_s"),
                        "busy_cpu_s": record.get("busy_cpu_s"),
                        "digest": record.get("digest"),
                        "verified": None, "error": record.get("error")}
            status = "error"
            if record.get("ok"):
                expected = job["expected"]
                if expected is None:
                    response["ok"] = True
                    status = "ok"
                elif digests_match(expected, record.get("digest")):
                    response["ok"] = True
                    response["verified"] = True
                    status = "ok"
                else:
                    response["verified"] = False
                    response["error"] = (
                        "result digest does not match the sequential "
                        f"reference: expected {expected}, got "
                        f"{record.get('digest')}")
                if record.get("slab") and request.return_values:
                    if slab_view is None:
                        slab_view = self.shm.view(worker.slab_handle)
                    count = int(record["slab"]["n"])
                    response["values"] = slab_view[:count].tolist()
                    response["shape"] = record["slab"]["shape"]
            wall = record.get("wall_s")
            if wall:
                self.queue.mean_service_s = round(
                    0.8 * self.queue.mean_service_s + 0.2 * wall, 6)
            latency = now - request.created
            self.stats.observe_latency(latency)
            with self.stats.lock:
                if response["ok"]:
                    self.stats.completed += 1
                else:
                    self.stats.failed += 1
                self.stats.busy_cpu_s += record.get("busy_cpu_s") or 0.0
            self.metrics.counter(
                "omp_serve_requests_total",
                "Requests completed, by tenant/app/status",
                tenant=request.tenant, app=request.app,
                status=status).inc()
            self.metrics.histogram(
                "omp_serve_request_latency_seconds",
                "Admission-to-response latency",
                bounds=_SERVICE_BOUNDS, app=request.app).observe(latency)
            request.complete(response)
        for request in job["requests"].values():
            # The worker replied but skipped a request: treat as error.
            self._fail_batch([request], "worker dropped the request")

    def _on_crash(self, worker, job_doc: dict, requests: list) -> None:
        job = self._pop_job(job_doc.get("job_id"))
        if job is not None:
            self.tenants.release(job["tenant"], job["threads"])
        self.metrics.counter(
            "omp_serve_worker_restarts_total",
            "Worker processes respawned after a crash or kill").inc()
        report = worker.last_report or {}
        reason = "worker crashed"
        if report.get("verdict"):
            reason = f"worker killed ({report['verdict']})"
        retry: list[ServeRequest] = []
        for request in requests:
            request.attempts += 1
            request.throttled = False
            if request.attempts <= self.max_retries:
                retry.append(request)
                with self.stats.lock:
                    self.stats.retries += 1
                self.metrics.counter(
                    "omp_serve_retries_total",
                    "Requests requeued after a worker crash").inc()
            else:
                self._fail_batch(
                    [request],
                    f"{reason}; retries exhausted "
                    f"({request.attempts} attempts)")
        if retry:
            self.queue.requeue_front(retry)
        self._wake()

    # -- observability ---------------------------------------------------

    def _refresh_gauges(self) -> None:
        self.metrics.gauge(
            "omp_serve_queue_depth",
            "Admitted requests waiting for dispatch").set(
            self.queue.depth())
        self.metrics.gauge(
            "omp_serve_idle_workers",
            "Workers ready for a job").set(self.fleet.idle_workers())
        self.metrics.gauge(
            "omp_serve_shm_bytes",
            "Bytes held by the shared-memory registry").set(
            self.shm.total_bytes())
        for entry in self.tenants.snapshot():
            self.metrics.gauge(
                "omp_serve_tenant_inflight_threads",
                "Thread-budget units currently charged, per tenant",
                tenant=entry["name"]).set(entry["inflight_threads"])

    def metrics_text(self) -> str:
        from repro.ompt.exporters import prometheus_text
        self._refresh_gauges()
        return prometheus_text(self.metrics)

    def state_payload(self) -> dict:
        return {"schema": STATE_SCHEMA,
                "apps": self.known_apps(),
                "queue": {"depth": self.queue.depth(),
                          "capacity": self.queue.capacity,
                          "mean_service_s": self.queue.mean_service_s},
                "tenants": self.tenants.snapshot(),
                "workers": self.fleet.snapshot(),
                "shm": {"segments": len(self.shm.names()),
                        "bytes": self.shm.total_bytes()},
                "stats": self.stats.snapshot(),
                "restarts_total": self.fleet.restarts_total}

    # -- HTTP front door -------------------------------------------------

    def _start_http(self) -> None:
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *_args):  # noqa: D102 - quiet server
                pass

            def _send(self, status: int, content_type: str,
                      body: bytes, headers: dict | None = None) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                for key, value in (headers or {}).items():
                    self.send_header(key, value)
                self.end_headers()
                self.wfile.write(body)

            def _send_json(self, status: int, payload: dict,
                           headers: dict | None = None) -> None:
                self._send(status, "application/json",
                           json.dumps(payload).encode(), headers)

            def _read_body(self) -> dict:
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else b"{}"
                try:
                    doc = json.loads(raw.decode("utf-8") or "{}")
                except (ValueError, UnicodeDecodeError) as error:
                    raise OmpError(f"invalid JSON body: {error}") \
                        from error
                if not isinstance(doc, dict):
                    raise OmpError("request body must be a JSON object")
                return doc

            def do_GET(self):  # noqa: N802 - http.server API
                try:
                    path = self.path.split("?")[0]
                    if path == "/metrics":
                        self._send(200,
                                   "text/plain; version=0.0.4; "
                                   "charset=utf-8",
                                   server.metrics_text().encode())
                    elif path == "/state":
                        self._send_json(200, server.state_payload())
                    elif path == "/v1/apps":
                        self._send_json(
                            200, {"apps": server.known_apps(),
                                  "modes": ["pure", "hybrid"],
                                  "tenants": server.tenants.names()})
                    elif path == "/healthz":
                        self._send_json(200, {"ok": True})
                    else:
                        self._send(404, "text/plain", b"not found\n")
                except BrokenPipeError:  # pragma: no cover
                    pass
                except Exception as error:  # noqa: BLE001 - keep serving
                    self._send_json(500, {"error": str(error)})

            def do_POST(self):  # noqa: N802 - http.server API
                try:
                    path = self.path.split("?")[0]
                    if path == "/v1/run":
                        self._run()
                    elif path == "/v1/tenants":
                        self._register_tenant()
                    else:
                        self._send(404, "text/plain", b"not found\n")
                except BrokenPipeError:  # pragma: no cover
                    pass
                except Exception as error:  # noqa: BLE001 - keep serving
                    self._send_json(500, {"error": str(error)})

            def _run(self) -> None:
                try:
                    doc = self._read_body()
                    response = server.submit(doc)
                except OmpError as error:
                    with server.stats.lock:
                        server.stats.rejected += 1
                    self._send_json(400, {"error": str(error)})
                    return
                except QueueFull as shed:
                    self._send_json(
                        503,
                        {"error": str(shed), "shed": True,
                         "retry_after_s": shed.retry_after},
                        headers={"Retry-After":
                                 str(max(1, round(shed.retry_after)))})
                    return
                status = 200 if response.get("ok") else 500
                if response.get("timeout"):
                    status = 504
                self._send_json(status, response)

            def _register_tenant(self) -> None:
                try:
                    doc = self._read_body()
                    name = doc.get("name")
                    budget = doc.get("max_threads", 1)
                    if not isinstance(name, str):
                        raise OmpError("tenant name must be a string")
                    if not isinstance(budget, int):
                        raise OmpError("max_threads must be an integer")
                    tenant = server.tenants.register(name, budget)
                except DuplicateTenantError as error:
                    self._send_json(409, {"error": str(error)})
                    return
                except OmpError as error:
                    self._send_json(400, {"error": str(error)})
                    return
                self._send_json(201, {"ok": True, "name": tenant.name,
                                      "max_threads": tenant.max_threads,
                                      "places": tenant.places_spec})

        self._httpd = ThreadingHTTPServer(self._requested, Handler)
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="omp4py-serve-http", daemon=True)
        self._http_thread.start()
