"""Tests of the cross-run perf ledger (benchmarks/perf_history.py)."""

import json
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "benchmarks"))

import perf_history  # noqa: E402


def smoke_payload(walls, backend="gil", total=None):
    return {
        "schema": "omp4py-bench-smoke/1",
        "backend": backend,
        "python": "3.11.7",
        "total_wall_s": total if total is not None else sum(walls.values()),
        "kernels": [{"kernel": name, "wall_s": wall}
                    for name, wall in walls.items()],
    }


class TestEntries:
    def test_entry_from_smoke_shape(self):
        entry = perf_history.entry_from_smoke(
            smoke_payload({"pi": 1.0, "qsort": 2.0}),
            sha="abc123", time_unix=42.0)
        assert entry["schema"] == perf_history.SCHEMA
        assert entry["sha"] == "abc123"
        assert entry["time_unix"] == 42.0
        assert entry["backend"] == "gil"
        assert entry["kernels"] == {"pi": 1.0, "qsort": 2.0}
        assert entry["total_wall_s"] == 3.0

    def test_unmeasured_kernels_are_dropped(self):
        payload = smoke_payload({"pi": 1.0}, total=1.0)
        payload["kernels"].append({"kernel": "skipped", "wall_s": None})
        entry = perf_history.entry_from_smoke(payload, sha="x",
                                              time_unix=0.0)
        assert entry["kernels"] == {"pi": 1.0}

    def test_resolve_sha_prefers_ci_env(self, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "deadbeef")
        assert perf_history.resolve_sha() == "deadbeef"


class TestLedgerIO:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "BENCH_history.jsonl"
        first = perf_history.entry_from_smoke(
            smoke_payload({"pi": 1.0}), sha="a", time_unix=1.0)
        second = perf_history.entry_from_smoke(
            smoke_payload({"pi": 0.9}), sha="b", time_unix=2.0)
        perf_history.append_entry(path, first)
        perf_history.append_entry(path, second)
        history = perf_history.load_history(path)
        assert [entry["sha"] for entry in history] == ["a", "b"]

    def test_corrupt_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        good = perf_history.entry_from_smoke(
            smoke_payload({"pi": 1.0}), sha="a", time_unix=1.0)
        path.write_text(
            "not json{\n"
            + json.dumps({"schema": "something-else/9"}) + "\n"
            + "\n"
            + json.dumps(good) + "\n",
            encoding="utf-8")
        history = perf_history.load_history(path)
        assert len(history) == 1
        assert history[0]["sha"] == "a"

    def test_missing_ledger_loads_empty(self, tmp_path):
        assert perf_history.load_history(tmp_path / "nope.jsonl") == []

    def test_record_smoke_seeds_from_committed_ledger(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "feedface")
        seed = tmp_path / "seed.jsonl"
        perf_history.append_entry(seed, perf_history.entry_from_smoke(
            smoke_payload({"pi": 1.0}), sha="seed", time_unix=0.0))
        smoke = tmp_path / "BENCH_smoke.json"
        smoke.write_text(json.dumps(smoke_payload({"pi": 0.8})),
                         encoding="utf-8")
        history_path = tmp_path / "out" / "BENCH_history.jsonl"
        entry = perf_history.record_smoke(smoke, history_path,
                                          seed_path=seed)
        assert entry["sha"] == "feedface"
        history = perf_history.load_history(history_path)
        assert [e["sha"] for e in history] == ["seed", "feedface"]
        # A second record appends without re-seeding.
        perf_history.record_smoke(smoke, history_path, seed_path=seed)
        assert len(perf_history.load_history(history_path)) == 3


class TestTrend:
    def entries(self):
        return [
            perf_history.entry_from_smoke(
                smoke_payload({"pi": 1.0, "qsort": 2.0}),
                sha="one", time_unix=1.0),
            perf_history.entry_from_smoke(
                smoke_payload({"pi": 0.8, "qsort": 2.0}),
                sha="two", time_unix=2.0),
            perf_history.entry_from_smoke(
                smoke_payload({"pi": 1.2, "qsort": 2.0}),
                sha="three", time_unix=3.0),
        ]

    def test_best_prev_last_and_regression_flag(self):
        text = perf_history.format_trend(self.entries())
        assert "3 run(s) on backend `gil`" in text
        # pi: best 0.800, prev 0.800, last 1.200 — a +50% regression.
        assert "| pi | 0.800 | 0.800 | 1.200 | +50.0% 🔺 |" in text
        assert "| qsort | 2.000 | 2.000 | 2.000 | +0.0% ~ |" in text
        assert "**Total**" in text

    def test_backend_filter_and_mismatch(self):
        mixed = self.entries() + [perf_history.entry_from_smoke(
            smoke_payload({"pi": 0.5}, backend="nogil"),
            sha="ft", time_unix=4.0)]
        # Default: latest entry's backend (nogil) — only one run.
        text = perf_history.format_trend(mixed)
        assert "1 run(s) on backend `nogil`" in text
        assert "_new_" in text
        text = perf_history.format_trend(mixed, backend="gil")
        assert "3 run(s) on backend `gil`" in text
        text = perf_history.format_trend(mixed, backend="tpc")
        assert "No entries for backend" in text

    def test_empty_ledger(self):
        assert "Empty ledger" in perf_history.format_trend([])


class TestCli:
    def test_record_then_trend(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "cafebabe0000")
        smoke = tmp_path / "BENCH_smoke.json"
        smoke.write_text(json.dumps(smoke_payload({"pi": 1.0})),
                         encoding="utf-8")
        history = tmp_path / "BENCH_history.jsonl"
        assert perf_history.main(["record", "--smoke", str(smoke),
                                  "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "[perf-history] recorded cafebabe0000" in out
        assert perf_history.main(["trend", "--history",
                                  str(history)]) == 0
        out = capsys.readouterr().out
        assert "Perf ledger" in out
        assert "| pi |" in out


class TestCommittedSeed:
    def test_repo_ledger_parses(self):
        """The committed seed ledger must stay loadable."""
        path = ROOT / "results" / "BENCH_history.jsonl"
        history = perf_history.load_history(path)
        assert history, "committed results/BENCH_history.jsonl is empty"
        assert history[0]["sha"] == "seed"
        assert history[0]["kernels"]


@pytest.fixture(autouse=True)
def _no_ambient_sha(monkeypatch):
    """Keep resolve_sha() deterministic unless a test sets GITHUB_SHA."""
    monkeypatch.delenv("GITHUB_SHA", raising=False)
