"""Inspector–executor BFS under the scaling explainer.

The counterpart of ``examples/faults/lock_convoy.py``: where that
script seeds a convoy for the explainer to name, this one runs the
*cured* kernel — bfs with its frontier/visited criticals replaced by
an owner-computes row plan (``repro.plan``) — so the explain report
carries a ``plan-execution`` finding ("convoy fixed by plan") and no
``lock-convoy`` verdict.  CI's explain-smoke job asserts exactly that.

Run it under the explainer::

    python -m repro.explain examples/plans/planned_bfs.py \
        --json planned_bfs_explain.json
"""

from repro.apps import bfs

N = 61
THREADS = 4


def main() -> None:
    grid = bfs.make_maze(N)
    expected = bfs.sequential(grid, N)
    result = bfs.kernel_planned(grid, N, THREADS)
    assert result == expected, (result, expected)
    print(f"planned bfs: reached={result[0]} count={result[1]} "
          f"on a {N}x{N} maze at {THREADS} threads")


if __name__ == "__main__":
    main()
