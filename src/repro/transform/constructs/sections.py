"""Lowering of ``sections``/``section``.

As the paper describes, sections work like a dynamically scheduled loop
over fixed sequence ids: a shared counter hands out ids, and the thread
whose claimed id matches a section executes it — each section exactly
once.
"""

from __future__ import annotations

import ast

from repro.directives.model import Directive
from repro.errors import OmpSyntaxError
from repro.transform import astutil
from repro.transform.context import TransformContext
from repro.transform.datasharing import classify
from repro.transform.constructs.loops import _loop_privatization


def handle_sections(node: ast.With, directive: Directive,
                    ctx: TransformContext) -> list[ast.stmt]:
    from repro.transform.rewriter import (_directive_of_with,
                                          transform_statements)

    section_bodies: list[list[ast.stmt]] = []
    for stmt in node.body:
        inner = None
        if isinstance(stmt, ast.With):
            inner = _directive_of_with(stmt)
        if inner is None or inner.name != "section":
            raise OmpSyntaxError(
                "a sections block may contain only 'with omp(\"section\")' "
                "blocks", directive=directive.source)
        astutil.check_no_escape(stmt.body, directive.source)
        section_bodies.append(stmt.body)
    if not section_bodies:
        raise OmpSyntaxError("sections requires at least one section",
                             directive=directive.source)

    all_stmts = [s for body in section_bodies for s in body]
    ds = classify(all_stmts, directive, ctx, allow_lastprivate=True)
    rename_map, pre, post = _loop_privatization(ds, ctx, directive)

    with ctx.enter_construct("sections"):
        transformed = [transform_statements(body, ctx)
                       for body in section_bodies]
    transformed = [astutil.rename_in(body, rename_map)
                   for body in transformed]

    state_name = ctx.symbols.fresh("sections")
    sid_name = ctx.symbols.fresh("sid")

    stmts: list[ast.stmt] = [astutil.assign(
        state_name, astutil.rt_call(ctx.rt_name, "sections_begin",
                                    [astutil.constant(
                                        len(section_bodies))]))]
    stmts.extend(pre)

    # while True: sid = next(); if sid < 0: break; dispatch on sid.
    dispatch: ast.stmt | None = None
    for index in range(len(transformed) - 1, -1, -1):
        test = ast.Compare(left=astutil.name_load(sid_name),
                           ops=[ast.Eq()],
                           comparators=[astutil.constant(index)])
        dispatch = ast.If(test=test, body=transformed[index],
                          orelse=[dispatch] if dispatch is not None else [])
    loop_body: list[ast.stmt] = [
        astutil.assign(sid_name, astutil.rt_call(
            ctx.rt_name, "sections_next",
            [astutil.name_load(state_name)])),
        ast.If(test=ast.Compare(left=astutil.name_load(sid_name),
                                ops=[ast.Lt()],
                                comparators=[astutil.constant(0)]),
               body=[ast.Break()], orelse=[]),
        dispatch,
    ]
    stmts.append(ast.While(test=astutil.constant(True), body=loop_body,
                           orelse=[]))

    last_writeback = [s for s in post if getattr(s, "_omp_last", False)]
    other_post = [s for s in post if not getattr(s, "_omp_last", False)]
    if last_writeback:
        stmts.append(ast.If(
            test=astutil.rt_call(ctx.rt_name, "sections_last",
                                 [astutil.name_load(state_name)]),
            body=last_writeback, orelse=[]))
    stmts.extend(other_post)
    stmts.append(astutil.rt_call_stmt(
        ctx.rt_name, "sections_end", [astutil.name_load(state_name)],
        [("nowait", astutil.constant(directive.has_clause("nowait")))]))
    for stmt in stmts:
        astutil.fix_locations(stmt, node)
    return stmts
