"""Tests of the projection-validation harness (repro.analysis.validate)."""

import json

import pytest

from repro.analysis import validate
from repro.analysis.validate import (DEFAULT_BOUND, ValidationRow,
                                     rows_to_json, rows_to_markdown,
                                     run_validation, validate_app)
from repro.apps import get_app
from repro.runtime.gilstate import Backend


def _row(app="pi", threads=1, backend="gil", kind="identity",
         wall=1.0, model=1.0, error=0.0, bound=DEFAULT_BOUND,
         passed=True):
    return ValidationRow(app=app, threads=threads, backend=backend,
                         kind=kind, wall_s=wall,
                         model_projected_s=model, error=error,
                         bound=bound, passed=passed)


class TestGilBackendChecks:
    """Real runs on the local (GIL) interpreter."""

    def test_identity_and_upper_bound_rows(self):
        rows = validate_app(get_app("pi"), threads=2, repeats=2,
                            backend=Backend.GIL)
        assert [r.kind for r in rows] == ["identity",
                                         "model-upper-bound"]
        assert all(r.backend == "gil" for r in rows)
        assert rows[0].threads == 1
        assert rows[1].threads == 2

    def test_identities_hold(self):
        # At one thread the formula degenerates to the wall; at any
        # count the model never exceeds the wall.  Both must pass on a
        # healthy accounting stack.
        rows = validate_app(get_app("pi"), threads=2, repeats=2,
                            backend=Backend.GIL)
        assert all(r.passed for r in rows), [r.line() for r in rows]
        assert rows[0].error <= DEFAULT_BOUND
        assert rows[1].error == 0.0  # model strictly below the wall

    def test_single_thread_request_skips_upper_bound(self):
        rows = validate_app(get_app("pi"), threads=1, repeats=1,
                            backend=Backend.GIL)
        assert [r.kind for r in rows] == ["identity"]

    def test_run_validation_covers_all_smoke_apps(self):
        rows = run_validation(threads=2, repeats=1,
                              backend=Backend.GIL)
        assert {r.app for r in rows} == set(validate.SMOKE_APPS)


class TestNogilBackendChecks:
    """Backend forced to NOGIL: the convergence path is exercised even
    though this interpreter serializes (the errors it reports here are
    the real divergence the model exists to bridge)."""

    def test_convergence_rows_at_one_and_n_threads(self):
        rows = validate_app(get_app("pi"), threads=3, repeats=1,
                            backend=Backend.NOGIL)
        assert [r.kind for r in rows] == ["convergence",
                                         "convergence"]
        assert [r.threads for r in rows] == [1, 3]
        assert all(r.backend == "nogil" for r in rows)

    def test_one_thread_converges_even_under_the_gil(self):
        # With a single thread there is no parallelism to project away,
        # so model == wall holds on any interpreter.
        rows = validate_app(get_app("pi"), threads=1, repeats=2,
                            backend=Backend.NOGIL)
        (row,) = rows
        assert row.passed, row.line()

    @pytest.mark.nogil
    def test_convergence_gate_passes_for_real(self):
        # The actual CI gate: only meaningful with true parallelism.
        rows = run_validation(threads=4, repeats=3,
                              backend=Backend.NOGIL)
        assert all(r.passed for r in rows), [r.line() for r in rows]


class TestSerialization:
    def test_json_schema(self):
        rows = [_row(), _row(threads=2, kind="model-upper-bound",
                             error=0.05)]
        payload = rows_to_json(rows)
        assert payload["schema"] == "omp4py-projection-validation/1"
        assert payload["backend"] == "gil"
        assert payload["bound"] == DEFAULT_BOUND
        assert payload["max_error"] == 0.05
        assert payload["passed"] is True
        assert len(payload["rows"]) == 2
        json.dumps(payload)  # round-trippable

    def test_json_failed_row_fails_payload(self):
        payload = rows_to_json([_row(), _row(error=0.9, passed=False)])
        assert payload["passed"] is False
        assert payload["max_error"] == 0.9

    def test_markdown_table(self):
        text = rows_to_markdown([_row(), _row(error=0.9,
                                              passed=False)])
        assert "| app | threads | check |" in text
        assert "✅ pass" in text and "❌ FAIL" in text
        # GIL caveat footer present on the gil backend...
        assert "convergence is unobservable" in text

    def test_markdown_nogil_has_no_gil_caveat(self):
        text = rows_to_markdown([_row(backend="nogil",
                                      kind="convergence")])
        assert "convergence is unobservable" not in text

    def test_row_line_format(self):
        line = _row(error=0.123, passed=False).line()
        assert "12.3%" in line and line.endswith("FAIL")


class TestCli:
    def test_check_passes_on_this_interpreter(self, tmp_path, capsys):
        json_path = tmp_path / "v.json"
        md_path = tmp_path / "v.md"
        rc = validate.main([
            "--apps", "pi", "--threads", "2", "--repeats", "1",
            "--check", "--json", str(json_path),
            "--summary", str(md_path)])
        assert rc == 0
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["passed"] is True
        assert "Projection validation" in md_path.read_text(
            encoding="utf-8")
        out = capsys.readouterr().out
        assert "PROJECTION VALIDATION" in out
        assert "PASS" in out

    def test_check_fails_on_impossible_bound(self, monkeypatch,
                                             capsys):
        # Force a failing row rather than hoping a real run misses an
        # absurd bound.
        monkeypatch.setattr(
            validate, "run_validation",
            lambda **kwargs: [_row(error=0.5, passed=False)])
        rc = validate.main(["--check"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().err

    def test_no_check_never_fails_exit_code(self, monkeypatch):
        monkeypatch.setattr(
            validate, "run_validation",
            lambda **kwargs: [_row(error=0.5, passed=False)])
        assert validate.main([]) == 0

    def test_bound_flag_threads_through(self, monkeypatch):
        seen = {}

        def fake_run(**kwargs):
            seen.update(kwargs)
            return [_row()]

        monkeypatch.setattr(validate, "run_validation", fake_run)
        validate.main(["--bound", "0.1", "--threads", "8",
                       "--repeats", "5", "--apps", "pi,wordcount"])
        assert seen["bound"] == 0.1
        assert seen["threads"] == 8
        assert seen["repeats"] == 5
        assert seen["apps"] == ["pi", "wordcount"]
