"""Low-level primitives of the pure-Python runtime.

This module defines the *interface* that separates the shared runtime
logic from the primitives that differ between the two runtimes — the
Python analogue of the paper's ``.pxd`` declaration files.  The pure
implementation coordinates through mutexes (``threading.Lock``); the
native simulation in :mod:`repro.cruntime.lowlevel` substitutes atomic
operations, exactly the split the paper describes for dynamic-schedule
counters, task enqueueing, and shared-slot creation.

Interface (duck-typed, no ABC overhead on hot paths):

* ``make_mutex()`` / ``make_event()`` — basic primitives.
* ``make_counter(initial)`` — object with ``load``, ``store``,
  ``fetch_add(delta) -> old`` and ``compare_exchange(expected, desired)
  -> bool``.
* ``queue_append(queue, node)`` — link ``node`` at the tail of a task
  queue (see :mod:`repro.runtime.tasking`).
* ``slot_get_or_create(table, lock, key, factory)`` — shared-slot
  creation for worksharing constructs.
"""

from __future__ import annotations

import threading


class MutexCounter:
    """Shared counter protected by a mutex (the pure runtime's choice).

    Same operation set as :class:`repro.atomics.AtomicLong`, so the
    scheduler and tasking logic are written once against this interface.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0):
        self._value = value
        self._lock = threading.Lock()

    def load(self) -> int:
        return self._value

    def store(self, value: int) -> None:
        with self._lock:
            self._value = value

    def fetch_add(self, delta: int = 1) -> int:
        with self._lock:
            old = self._value
            self._value = old + delta
            return old

    def compare_exchange(self, expected: int, desired: int) -> bool:
        with self._lock:
            if self._value == expected:
                self._value = desired
                return True
            return False


class PureLowLevel:
    """Mutex-based primitives for the pure-Python ``runtime``."""

    name = "runtime"

    @staticmethod
    def make_mutex():
        return threading.Lock()

    @staticmethod
    def make_event():
        return threading.Event()

    @staticmethod
    def make_counter(initial: int = 0):
        return MutexCounter(initial)

    @staticmethod
    def queue_append(queue, node) -> None:
        """Append under the queue mutex (paper: "the runtime uses a
        mutex to update the next-reference")."""
        with queue.mutex:
            queue.tail.next = node
            queue.tail = node

    @staticmethod
    def slot_get_or_create(table: dict, lock, key, factory):
        """First arrival creates the shared slot, under the table lock."""
        slot = table.get(key)
        if slot is not None:
            return slot
        with lock:
            slot = table.get(key)
            if slot is None:
                slot = factory()
                table[key] = slot
            return slot
