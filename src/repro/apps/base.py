"""Common application plumbing: specs, variant caching, registry."""

from __future__ import annotations

import dataclasses
import importlib
from collections.abc import Callable

from repro.decorator import transform
from repro.errors import OmpError
from repro.modes import Mode

#: Registry: app name -> module path (module must define ``SPEC``).
_APP_MODULES = {
    "pi": "repro.apps.pi",
    "jacobi": "repro.apps.jacobi",
    "lu": "repro.apps.lu",
    "md": "repro.apps.md",
    "fft": "repro.apps.fft",
    "qsort": "repro.apps.qsort",
    "bfs": "repro.apps.bfs",
    "clustering": "repro.apps.clustering",
    "wordcount": "repro.apps.wordcount",
}


@dataclasses.dataclass
class AppSpec:
    """Everything the harness needs to run one paper benchmark.

    ``kernel`` is the untyped source function (Pure/Hybrid/Compiled);
    ``kernel_dt`` carries the explicit ``int``/``float`` annotations of
    the paper's *CompiledDT* variant and may expect NumPy inputs (its
    ``make_input`` counterpart is ``make_input_dt`` when the two
    representations differ).  Kernels take ``(threads, **inputs)``.

    ``pyomp`` describes the baseline: a source function when PyOMP
    supports the program, or the string reason it cannot run
    ("compile_error: ..." / "runtime_error: ...") per Section IV-B.
    """

    name: str
    title: str
    make_input: Callable[..., dict]
    sequential: Callable[..., object]
    kernel: Callable[..., object]
    kernel_dt: Callable[..., object]
    verify: Callable[[object, object], bool]
    sizes: dict[str, dict]
    make_input_dt: Callable[..., dict] | None = None
    pyomp: Callable[..., object] | str = "compile_error: unsupported"
    #: Static characteristics row for Table I (features, sync columns).
    table1: tuple[str, str] | None = None
    _variants: dict = dataclasses.field(default_factory=dict)

    def variant(self, mode: Mode):
        """Transformed kernel for a mode (cached)."""
        cached = self._variants.get(mode)
        if cached is None:
            source = (self.kernel_dt if mode is Mode.COMPILED_DT
                      else self.kernel)
            cached = transform(source, mode)
            self._variants[mode] = cached
        return cached

    def pyomp_variant(self):
        """The compiled PyOMP baseline, or raise its documented error."""
        from repro.pyomp import PyOMPCompileError, njit
        if isinstance(self.pyomp, str):
            kind, _sep, reason = self.pyomp.partition(":")
            if kind == "compile_error":
                raise PyOMPCompileError(reason.strip())
            from repro.pyomp import PyOMPInternalError
            raise PyOMPInternalError(reason.strip())
        cached = self._variants.get("pyomp")
        if cached is None:
            cached = njit(self.pyomp)
            self._variants["pyomp"] = cached
        return cached

    def inputs(self, profile: str = "test", dt: bool = False,
               **overrides) -> dict:
        params = dict(self.sizes[profile])
        params.update(overrides)
        maker = self.make_input_dt if dt and self.make_input_dt else \
            self.make_input
        return maker(**params)

    def run(self, mode: Mode, threads: int, profile: str = "test",
            **overrides):
        """Convenience: build inputs, run the mode variant, verify."""
        dt = mode is Mode.COMPILED_DT
        inputs = self.inputs(profile, dt=dt, **overrides)
        return self.variant(mode)(threads=threads, **inputs)


def list_apps() -> list[str]:
    return list(_APP_MODULES)


def get_app(name: str) -> AppSpec:
    module_path = _APP_MODULES.get(name)
    if module_path is None:
        raise OmpError(f"unknown app {name!r}; available: "
                       f"{', '.join(_APP_MODULES)}")
    module = importlib.import_module(module_path)
    return module.SPEC
