"""Property tests: the coloring invariant and schedule completeness
hold for arbitrary indirection maps.

The invariant the whole executor rests on: no two partitions of the
same color touch a common element, so same-color partitions can run
with zero synchronization.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.plan import Map, build_plan

#: Arbitrary small indirection maps: each iteration touches up to four
#: elements drawn from a deliberately tiny universe so conflicts are
#: common rather than rare.
entries = st.lists(
    st.lists(st.integers(min_value=0, max_value=12), max_size=4),
    min_size=0, max_size=48)
partition_sizes = st.integers(min_value=1, max_value=9)


def _partition_elements(plan, the_map):
    sets = []
    for lo, hi in plan.partitions:
        touched = set()
        for iteration in range(lo, hi):
            touched.update(the_map[iteration])
        sets.append(touched)
    return sets


@settings(max_examples=120, deadline=None)
@given(entries=entries, size=partition_sizes)
def test_same_color_partitions_share_no_element(entries, size):
    the_map = Map("prop", entries)
    plan = build_plan(the_map, size)
    touched = _partition_elements(plan, the_map)
    for members in plan.colors:
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                assert not (touched[a] & touched[b]), \
                    f"partitions {a} and {b} share a color and " \
                    f"elements {touched[a] & touched[b]}"


@settings(max_examples=120, deadline=None)
@given(entries=entries, size=partition_sizes)
def test_colors_are_a_partition_of_the_partitions(entries, size):
    plan = build_plan(Map("prop", entries), size)
    flat = [p for members in plan.colors for p in members]
    assert sorted(flat) == list(range(plan.npartitions))


@settings(max_examples=120, deadline=None)
@given(entries=entries, size=partition_sizes)
def test_partitions_tile_the_iteration_space(entries, size):
    plan = build_plan(Map("prop", entries), size)
    covered = [i for lo, hi in plan.partitions for i in range(lo, hi)]
    assert covered == list(range(len(entries)))


@settings(max_examples=100, deadline=None)
@given(entries=entries, size=partition_sizes,
       nthreads=st.integers(min_value=1, max_value=6))
def test_schedule_covers_every_partition_exactly_once(entries, size,
                                                      nthreads):
    plan = build_plan(Map("prop", entries), size)
    schedule = plan.schedule_for(nthreads)
    seen = sorted(chunk for per_thread in schedule
                  for chunks in per_thread for chunk in chunks)
    assert seen == sorted(plan.partitions)


@settings(max_examples=100, deadline=None)
@given(entries=entries, size=partition_sizes)
def test_conflicting_partitions_get_distinct_colors(entries, size):
    """The contrapositive check: every conflicting pair is separated."""
    the_map = Map("prop", entries)
    plan = build_plan(the_map, size)
    touched = _partition_elements(plan, the_map)
    color_of = {}
    for color, members in enumerate(plan.colors):
        for part in members:
            color_of[part] = color
    for a in range(plan.npartitions):
        for b in range(a + 1, plan.npartitions):
            if touched[a] & touched[b]:
                assert color_of[a] != color_of[b]
