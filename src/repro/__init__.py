"""repro — reproduction of OMP4Py (CGO 2026).

OpenMP 3.0 directive-based multithreaded programming for Python, with
the paper's dual-runtime architecture: a pure-Python runtime and a
native-runtime simulation, plus the *Compiled*/*CompiledDT* user-code
compilation pipeline.

Quickstart (the paper's Fig. 1)::

    from repro import *

    @omp
    def pi(n):
        w = 1.0 / n
        pi_value = 0.0
        with omp("parallel for reduction(+:pi_value)"):
            for i in range(n):
                local = (i + 0.5) * w
                pi_value += 4.0 / (1.0 + local * local)
        return pi_value * w
"""

from repro.api import *  # noqa: F401,F403 - the public surface
from repro.api import __all__ as _api_all
from repro.decorator import transform
from repro.errors import (OmpError, OmpRuntimeError, OmpSyntaxError,
                          OmpTransformError)
from repro.modes import ALL_MODES, Mode

__version__ = "1.0.0"

__all__ = [*_api_all, "ALL_MODES", "Mode", "OmpError", "OmpRuntimeError",
           "OmpSyntaxError", "OmpTransformError", "transform",
           "__version__"]
