"""Property-based tests: every scheduler partitions every iteration
space into exactly-once coverage, for arbitrary ranges and teams."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cruntime import cruntime
from repro.runtime import pure_runtime
from repro.runtime.worksharing import trip_count

RUNTIMES = {"pure": pure_runtime, "cruntime": cruntime}

ranges = st.tuples(
    st.integers(-50, 50),                      # start
    st.integers(-50, 50),                      # stop
    st.integers(-7, 7).filter(lambda s: s != 0))  # step

schedules = st.one_of(
    st.tuples(st.just("static"), st.none()),
    st.tuples(st.just("static"), st.integers(1, 9)),
    st.tuples(st.just("dynamic"), st.integers(1, 9)),
    st.tuples(st.just("guided"), st.integers(1, 9)),
)


def drive(rt, start, stop, step, kind, chunk, threads):
    per_thread: dict[int, list[int]] = {}

    def region():
        mine: list[int] = []
        bounds = rt.for_bounds([start, stop, step])
        rt.for_init(bounds, kind=kind, chunk=chunk)
        while rt.for_next(bounds):
            mine.extend(range(bounds[0], bounds[1], step))
        rt.for_end(bounds)
        per_thread[rt.get_thread_num()] = mine

    rt.parallel_run(region, num_threads=threads)
    return per_thread


class TestPartitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(triplet=ranges, schedule=schedules, threads=st.integers(1, 5),
           which=st.sampled_from(["pure", "cruntime"]))
    def test_exactly_once_coverage(self, triplet, schedule, threads,
                                   which):
        start, stop, step = triplet
        kind, chunk = schedule
        per_thread = drive(RUNTIMES[which], start, stop, step, kind,
                           chunk, threads)
        everything = sorted(
            value for mine in per_thread.values() for value in mine)
        assert everything == sorted(range(start, stop, step))

    @settings(max_examples=40, deadline=None)
    @given(triplet=ranges, threads=st.integers(1, 5))
    def test_static_is_deterministic(self, triplet, threads):
        start, stop, step = triplet
        first = drive(pure_runtime, start, stop, step, "static", None,
                      threads)
        second = drive(pure_runtime, start, stop, step, "static", None,
                       threads)
        assert first == second

    @settings(max_examples=40, deadline=None)
    @given(triplet=ranges, chunk=st.integers(1, 9),
           threads=st.integers(1, 4))
    def test_static_chunks_round_robin_invariant(self, triplet, chunk,
                                                 threads):
        """Chunk k of the iteration sequence belongs to thread k % T."""
        start, stop, step = triplet
        per_thread = drive(pure_runtime, start, stop, step, "static",
                           chunk, threads)
        sequence = list(range(start, stop, step))
        expected: dict[int, list[int]] = {t: [] for t in range(threads)}
        for index, value in enumerate(sequence):
            expected[(index // chunk) % threads].append(value)
        assert per_thread == expected

    @settings(max_examples=60, deadline=None)
    @given(triplet=ranges)
    def test_trip_count_matches_len_range(self, triplet):
        start, stop, step = triplet
        assert trip_count(start, stop, step) == len(range(start, stop,
                                                          step))


class TestCollapseDivisors:
    @settings(max_examples=50, deadline=None)
    @given(trips=st.lists(st.integers(1, 6), min_size=2, max_size=4))
    def test_divmod_recovery_is_bijective(self, trips):
        """Index recovery from the linearized space hits every tuple."""
        bounds = pure_runtime.for_bounds(
            [value for count in trips for value in (0, count, 1)])
        divisors = pure_runtime.collapse_divisors(bounds)
        total = 1
        for count in trips:
            total *= count
        seen = set()
        for linear in range(total):
            remainder = linear
            indices = []
            for divisor in divisors:
                quotient, remainder = divmod(remainder, divisor)
                indices.append(quotient)
            indices.append(remainder)
            seen.add(tuple(indices))
        assert len(seen) == total
        assert all(
            all(0 <= index < count for index, count in zip(combo, trips))
            for combo in seen)
