"""Riemann integration of 4/(1+x²) over [0, 1] (the paper's *pi*).

Paper configuration: 20 billion intervals; a single ``parallel for
reduction(+)`` with implicit barriers (Table I).
"""

from __future__ import annotations

import math

from repro.apps.base import AppSpec
from repro.api import omp


def make_input(n: int) -> dict:
    return {"n": n}


def sequential(n: int) -> float:
    width = 1.0 / n
    total = 0.0
    for i in range(n):
        x = (i + 0.5) * width
        total += 4.0 / (1.0 + x * x)
    return total * width


def kernel(n, threads):
    w = 1.0 / n
    pi_value = 0.0
    with omp("parallel for reduction(+:pi_value) num_threads(threads)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w


def kernel_dt(n, threads):
    w: float = 1.0 / n
    pi_value: float = 0.0
    with omp("parallel for reduction(+:pi_value) num_threads(threads) "
             "schedule(static, 65536)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w


def pyomp_kernel(n, threads):
    w: float = 1.0 / n
    pi_value: float = 0.0
    # Same static chunking as the CompiledDT variant (PyOMP supports
    # static scheduling with a chunk size), so the paper's ~5%
    # comparison is apples-to-apples.
    with openmp("parallel for reduction(+:pi_value) "  # noqa: F821
                "num_threads(threads) schedule(static, 65536)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w


def verify(result, reference) -> bool:
    del reference
    return abs(result - math.pi) < 1e-6


SPEC = AppSpec(
    name="pi",
    title="Riemann integration",
    make_input=make_input,
    sequential=sequential,
    kernel=kernel,
    kernel_dt=kernel_dt,
    pyomp=pyomp_kernel,
    verify=verify,
    sizes={
        "test": {"n": 200_000},
        "default": {"n": 2_000_000},
        "paper": {"n": 20_000_000_000},
    },
    table1=("parallel for reduction(+)", "Implicit barriers"),
)
