"""Environment-driven arming of the diagnostics subsystem
(``OMP4PY_FLIGHT`` / ``OMP4PY_WATCHDOG``) and the SIGUSR1 dump.

Like :mod:`repro.ompt.auto`, this is invoked by the ``@omp`` decorator
when it binds a runtime; unset knobs cost two environment reads.
Arming is idempotent per runtime and reversible with :func:`disarm`
(tests manage their own watchdogs).

``kill -USR1 <pid>`` on an armed process writes the flight-recorder
tails and the current wait-for diagnosis to stderr without stopping
the process.  The handler runs on the main thread, which the runtime's
bounded-backoff waits guarantee wakes regularly even while blocked —
so the dump works on a process that is already deadlocked.
"""

from __future__ import annotations

import atexit
import json
import signal
import sys
import threading

from repro import env
from repro.diagnostics.flight import FlightRecorder
from repro.diagnostics.state import DiagnosticsState
from repro.diagnostics.watchdog import Watchdog, build_report
from repro.diagnostics.waitgraph import build_wait_graph

#: id(runtime) -> (runtime, FlightRecorder | None, Watchdog | None).
_active: dict[int, tuple] = {}
_signal_installed = False


def arm(runtime, *, flight_capacity: int | None = None,
        watchdog_interval: float | None = None,
        report_path: str | None = None,
        exit_on_deadlock: bool = False,
        flight: bool = True) -> tuple:
    """Arm diagnostics programmatically; returns
    ``(flight_recorder, watchdog)`` (either may be ``None``)."""
    entry = _active.get(id(runtime))
    if entry is not None:
        return entry[1], entry[2]
    if runtime.diag is None:
        runtime.diag = DiagnosticsState()
    recorder = None
    if flight:
        recorder = (FlightRecorder(flight_capacity)
                    if flight_capacity else FlightRecorder())
        runtime.attach_tool(recorder)
    watchdog = None
    if watchdog_interval is not None:
        watchdog = Watchdog(runtime, watchdog_interval,
                            report_path=report_path,
                            exit_on_deadlock=exit_on_deadlock,
                            flight=recorder)
        watchdog.start()
    _active[id(runtime)] = (runtime, recorder, watchdog)
    return recorder, watchdog


def disarm(runtime) -> None:
    """Undo :func:`arm`/:func:`auto_diagnose` for one runtime."""
    entry = _active.pop(id(runtime), None)
    if entry is None:
        return
    _runtime, recorder, watchdog = entry
    if watchdog is not None:
        watchdog.stop()
    if recorder is not None:
        runtime.detach_tool(recorder)
    runtime.diag = None


def active_entry(runtime):
    """The ``(flight, watchdog)`` pair armed for ``runtime``, if any."""
    entry = _active.get(id(runtime))
    return (entry[1], entry[2]) if entry else None


def auto_diagnose(runtime) -> None:
    """Honour the env knobs for ``runtime`` (no-op when both are off)."""
    flight_spec = env.flight_spec()
    watchdog_spec = env.watchdog_spec()
    if flight_spec is None and watchdog_spec is None:
        return
    if id(runtime) in _active:
        return
    if runtime.diag is None:
        runtime.diag = DiagnosticsState()
    recorder = None
    if flight_spec is not None:
        recorder = FlightRecorder(flight_spec.capacity)
        runtime.attach_tool(recorder)
        if flight_spec.path:
            atexit.register(_write_flight, recorder, flight_spec.path)
    watchdog = None
    if watchdog_spec is not None:
        watchdog = Watchdog(runtime, watchdog_spec.interval,
                            report_path=watchdog_spec.path,
                            exit_on_deadlock=watchdog_spec.exit_on_deadlock,
                            flight=recorder)
        watchdog.start()
    _active[id(runtime)] = (runtime, recorder, watchdog)
    install_signal_dump()


def dump_diagnosis(runtime, stream=None, reason: str = "dump") -> dict:
    """One-shot diagnosis of a runtime's current state (SIGUSR1 body,
    also used by ``repro.doctor``)."""
    stream = stream if stream is not None else sys.stderr
    diag = runtime.diag
    entry = _active.get(id(runtime))
    recorder = entry[1] if entry else None
    if diag is None:
        report = {"schema": "omp4py-doctor-report/1", "reason": reason,
                  "runtime": runtime.name, "verdict": "unarmed",
                  "threads": [], "cycles": [], "unsatisfiable": []}
        if recorder is not None:
            report["flight"] = recorder.dump(tail=16)
        sampler = getattr(runtime, "sampler", None)
        if sampler is not None:
            report["sampler"] = sampler.status(recent=5)
        print(json.dumps(report, indent=2), file=stream)
        return report
    snapshot = diag.snapshot()
    graph = build_wait_graph(snapshot)
    report = build_report(runtime, snapshot, graph, flight=recorder,
                          reason=reason)
    from repro.diagnostics.watchdog import format_report
    print(format_report(report), file=stream, flush=True)
    return report


def install_signal_dump() -> bool:
    """Install the SIGUSR1 dump handler (main thread only; idempotent).

    Returns ``True`` when the handler is in place.
    """
    global _signal_installed
    if _signal_installed:
        return True
    if threading.current_thread() is not threading.main_thread():
        return False
    if not hasattr(signal, "SIGUSR1"):  # pragma: no cover - windows
        return False
    try:
        signal.signal(signal.SIGUSR1, _on_sigusr1)
    except ValueError:  # pragma: no cover - exotic embedding
        return False
    _signal_installed = True
    return True


def _on_sigusr1(_signum, _frame) -> None:
    for runtime, recorder, _watchdog in list(_active.values()):
        print(f"omp4py: SIGUSR1 dump for runtime {runtime.name}",
              file=sys.stderr)
        if recorder is not None:
            print(recorder.format_text(), file=sys.stderr)
        dump_diagnosis(runtime, reason="sigusr1")


def _write_flight(recorder: FlightRecorder, path: str) -> None:
    try:
        with open(path, "w", encoding="utf-8") as out:
            json.dump({"schema": "omp4py-flight/1",
                       "threads": recorder.dump()}, out, indent=2)
    except OSError as error:  # pragma: no cover - exit-time best effort
        print(f"omp4py: cannot write flight record to {path}: {error}",
              file=sys.stderr)
