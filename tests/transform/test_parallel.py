"""End-to-end tests of the ``parallel`` construct and data sharing."""

import pytest

from repro import Mode, transform
from repro.errors import OmpSyntaxError, OmpTransformError


# --- module-level subject functions (transform needs real source) -----

def region_counts_threads(n):
    from repro import omp, omp_get_thread_num
    seen = []
    with omp("parallel num_threads(3)"):
        seen.append(omp_get_thread_num())
    return sorted(seen)


def shared_default(n):
    from repro import omp
    total = 0
    with omp("parallel num_threads(4)"):
        with omp("critical"):
            total += 1
    return total


def private_variable(n):
    from repro import omp, omp_get_thread_num
    x = 99
    outcome = []
    with omp("parallel num_threads(2) private(x)"):
        x = omp_get_thread_num() + 1
        with omp("critical"):
            outcome.append(x)
    return x, sorted(outcome)


def private_read_before_write():
    from repro import omp
    x = 123
    failures = []
    with omp("parallel num_threads(2) private(x)"):
        try:
            _ = x + 1
        except Exception as error:
            with omp("critical"):
                failures.append(type(error).__name__)
    return failures


def firstprivate_variable(n):
    from repro import omp
    x = 10
    results = []
    with omp("parallel num_threads(3) firstprivate(x)"):
        x = x + 1
        with omp("critical"):
            results.append(x)
    return x, results


def reduction_sum(n):
    from repro import omp
    total = 0
    with omp("parallel num_threads(4) reduction(+:total)"):
        total += 5
    return total

def reduction_multiple_vars(n):
    from repro import omp
    s = 0
    p = 1
    with omp("parallel num_threads(3) reduction(+:s) reduction(*:p)"):
        s += 2
        p *= 2
    return s, p


def if_clause_serializes(n):
    from repro import omp, omp_get_num_threads
    sizes = []
    with omp("parallel num_threads(4) if(n > 100)"):
        with omp("critical"):
            sizes.append(omp_get_num_threads())
    return sizes


def default_none_ok(n):
    from repro import omp
    total = 0
    with omp("parallel num_threads(2) default(none) shared(total)"):
        with omp("critical"):
            total += 1
    return total


def default_none_missing(n):
    from repro import omp
    total = 0
    with omp("parallel default(none)"):
        with omp("critical"):
            total += 1
    return total


def default_firstprivate(n):
    from repro import omp
    x = 7
    results = []
    with omp("parallel num_threads(2) default(firstprivate) shared(results)"):
        x = x * 2
        with omp("critical"):
            results.append(x)
    return x, results


def locals_inside_block_are_thread_local(n):
    from repro import omp, omp_get_thread_num
    seen = []
    with omp("parallel num_threads(4)"):
        mine = omp_get_thread_num() * 10
        with omp("critical"):
            seen.append(mine)
    return sorted(seen)


def nested_parallel_regions(n):
    from repro import (omp, omp_get_level, omp_set_nested, omp_get_nested)
    levels = []
    omp_set_nested(True)
    try:
        with omp("parallel num_threads(2)"):
            with omp("parallel num_threads(2)"):
                with omp("critical"):
                    levels.append(omp_get_level())
    finally:
        omp_set_nested(False)
    return levels


def return_inside_parallel(n):
    from repro import omp
    with omp("parallel"):
        return 1


def module_source_has_global():
    from repro import omp
    global MODULE_COUNTER
    MODULE_COUNTER = 0
    with omp("parallel num_threads(3)"):
        with omp("critical"):
            MODULE_COUNTER += 1
    return MODULE_COUNTER


MODULE_COUNTER = 0


class TestParallelBasics:
    def test_team_of_three(self, runtime_mode):
        fn = transform(region_counts_threads, runtime_mode)
        assert fn(0) == [0, 1, 2]

    def test_shared_by_default(self, runtime_mode):
        fn = transform(shared_default, runtime_mode)
        assert fn(0) == 4

    def test_if_clause(self, runtime_mode):
        fn = transform(if_clause_serializes, runtime_mode)
        assert fn(1) == [1]
        assert sorted(fn(1000)) == [4, 4, 4, 4]


class TestDataSharing:
    def test_private_leaves_outer_unchanged(self, runtime_mode):
        fn = transform(private_variable, runtime_mode)
        outer, inner = fn(0)
        assert outer == 99
        assert inner == [1, 2]

    def test_private_starts_undefined(self, runtime_mode):
        fn = transform(private_read_before_write, runtime_mode)
        failures = fn()
        assert len(failures) == 2  # both threads failed loudly

    def test_firstprivate_captures_value(self, runtime_mode):
        fn = transform(firstprivate_variable, runtime_mode)
        outer, results = fn(0)
        assert outer == 10
        assert results == [11, 11, 11]

    def test_locals_in_block_are_per_thread(self, runtime_mode):
        fn = transform(locals_inside_block_are_thread_local, runtime_mode)
        assert fn(0) == [0, 10, 20, 30]

    def test_default_none_with_explicit_shared(self, runtime_mode):
        fn = transform(default_none_ok, runtime_mode)
        assert fn(0) == 2

    def test_default_none_missing_raises_at_transform(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="default\\(none\\)"):
            transform(default_none_missing, runtime_mode)

    def test_default_firstprivate(self, runtime_mode):
        fn = transform(default_firstprivate, runtime_mode)
        outer, results = fn(0)
        assert outer == 7
        assert results == [14, 14]

    def test_global_variable_sharing(self, runtime_mode):
        fn = transform(module_source_has_global, runtime_mode)
        assert fn() == 3


class TestReductions:
    def test_sum(self, runtime_mode):
        fn = transform(reduction_sum, runtime_mode)
        assert fn(0) == 20

    def test_multiple_reductions(self, runtime_mode):
        fn = transform(reduction_multiple_vars, runtime_mode)
        assert fn(0) == (6, 8)


class TestNesting:
    def test_nested_levels(self, runtime_mode):
        fn = transform(nested_parallel_regions, runtime_mode)
        levels = fn(0)
        assert len(levels) == 4
        assert all(level == 2 for level in levels)


class TestErrors:
    def test_return_in_block_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="return"):
            transform(return_inside_parallel, runtime_mode)

    def test_closure_rejected(self):
        x = 1

        def closure_fn():
            return x

        with pytest.raises(OmpTransformError, match="closes over"):
            transform(closure_fn, Mode.HYBRID)

    def test_non_callable_rejected(self):
        with pytest.raises(OmpTransformError):
            transform(42, Mode.HYBRID)
