"""Black-box serving test: the real CLI process over real HTTP.

Launches ``python -m repro.serve`` as a subprocess (ephemeral port via
``--port-file``), drives a mixed qsort+jacobi load, kills one worker
pid taken from ``/state`` mid-load, and asserts the fleet recovers
with zero lost requests and zero leaked shared-memory segments after
SIGTERM — the end-to-end shape of the CI ``serve-smoke`` job.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]

MIX = (
    ("qsort", {"n": 1500}),
    ("jacobi", {"n": 24, "iterations": 30}),
)


def _post_run(url, app, overrides, timeout=60.0):
    body = json.dumps({"app": app, "threads": 1,
                       "overrides": overrides}).encode()
    request = urllib.request.Request(
        url + "/v1/run", data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return json.loads(resp.read().decode())


def _get_json(url, path, timeout=10.0):
    with urllib.request.urlopen(url + path, timeout=timeout) as resp:
        return json.loads(resp.read().decode())


@pytest.mark.slow
def test_cli_serves_survives_worker_kill_and_exits_clean(tmp_path):
    port_file = tmp_path / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--workers", "2", "--queue", "8",
         "--port-file", str(port_file)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        deadline = time.monotonic() + 90
        while time.monotonic() < deadline and not port_file.exists():
            assert process.poll() is None, process.stdout.read()
            time.sleep(0.2)
        assert port_file.exists(), "server never wrote its port"
        url = f"http://127.0.0.1:{port_file.read_text().strip()}"

        deadline = time.monotonic() + 90
        while time.monotonic() < deadline:
            state = _get_json(url, "/state")
            if all(w["state"] != "starting" for w in state["workers"]):
                break
            time.sleep(0.2)

        for index in range(6):
            app, overrides = MIX[index % len(MIX)]
            response = _post_run(url, app, overrides)
            assert response["ok"] and response["verified"], response

        state = _get_json(url, "/state")
        victim_pid = next(w["pid"] for w in state["workers"]
                          if w["pid"])
        os.kill(victim_pid, signal.SIGKILL)

        # The supervisor respawns; the fleet keeps serving.
        for index in range(6):
            app, overrides = MIX[index % len(MIX)]
            response = _post_run(url, app, overrides)
            assert response["ok"] and response["verified"], response
        state = _get_json(url, "/state")
        assert state["restarts_total"] >= 1

        doctor = subprocess.run(
            [sys.executable, "-m", "repro.doctor", "serve", url],
            env=env, capture_output=True, text=True, timeout=30)
        assert doctor.returncode == 0, doctor.stderr
        assert "workers (restarts_total=" in doctor.stdout

        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    from repro.serve.shm import leaked_segments
    assert leaked_segments() == []
