"""Tests of the work-accounting (no-GIL projection) substrate."""

import time

import pytest

from repro.runtime import pure_runtime
from repro.runtime.stats import RegionRecord, StatsCollector


class TestRegionRecord:
    def test_sums_and_max(self):
        record = RegionRecord(3, [1.0, 2.0, 3.0])
        assert record.sum_cpu == 6.0
        assert record.max_cpu == 3.0

    def test_empty(self):
        record = RegionRecord(0, [])
        assert record.sum_cpu == 0.0
        assert record.max_cpu == 0.0
        assert record.mean_cpu == 0.0
        assert record.imbalance == 1.0

    def test_imbalance_is_max_over_mean(self):
        record = RegionRecord(4, [1.0, 1.0, 1.0, 5.0])
        assert record.mean_cpu == pytest.approx(2.0)
        assert record.imbalance == pytest.approx(2.5)

    def test_balanced_region_has_unit_imbalance(self):
        record = RegionRecord(3, [2.0, 2.0, 2.0])
        assert record.imbalance == pytest.approx(1.0)

    def test_zero_cpu_region_reports_balanced(self):
        record = RegionRecord(2, [0.0, 0.0])
        assert record.imbalance == 1.0


class TestStatsCollector:
    def test_reset_clears(self):
        collector = StatsCollector()
        collector.record([1.0])
        collector.reset()
        assert collector.snapshot() == []

    def test_totals(self):
        collector = StatsCollector()
        collector.record([1.0, 3.0])
        collector.record([2.0, 2.0])
        serialized, critical, count = collector.totals()
        assert serialized == 8.0
        assert critical == 5.0
        assert count == 2

    def test_projection_formula(self):
        collector = StatsCollector()
        collector.record([1.0, 1.0, 1.0, 1.0])
        # Wall 5s, 4s of serialized compute, 1s critical path:
        # projected = 5 - 4 + 1 = 2.
        assert collector.project(5.0) == pytest.approx(2.0)

    def test_projection_never_below_critical_path(self):
        collector = StatsCollector()
        collector.record([2.0, 0.5])
        assert collector.project(1.0) == pytest.approx(2.0)

    def test_projection_without_regions_is_wall(self):
        collector = StatsCollector()
        assert collector.project(3.0) == pytest.approx(3.0)


class TestRuntimeIntegration:
    def test_regions_are_recorded_with_cpu_times(self):
        pure_runtime.stats.reset()

        def burn():
            deadline = time.thread_time() + 0.02
            while time.thread_time() < deadline:
                pass

        pure_runtime.parallel_run(burn, num_threads=2)
        records = pure_runtime.stats.snapshot()
        assert len(records) == 1
        assert records[0].size == 2
        assert all(cpu >= 0.015 for cpu in records[0].cpu_times)

    def test_nested_regions_record_only_top_level(self):
        pure_runtime.stats.reset()
        pure_runtime.set_nested(True)
        try:
            def inner():
                pass

            def outer():
                pure_runtime.parallel_run(inner, num_threads=2)

            pure_runtime.parallel_run(outer, num_threads=2)
        finally:
            pure_runtime.set_nested(False)
        records = pure_runtime.stats.snapshot()
        assert len(records) == 1

    def test_sequential_regions_accumulate(self):
        pure_runtime.stats.reset()
        for _ in range(3):
            pure_runtime.parallel_run(lambda: None, num_threads=2)
        assert len(pure_runtime.stats.snapshot()) == 3
