"""Direct tests of loop scheduling, sections, and single machinery."""

import threading

import pytest

from repro.cruntime import cruntime
from repro.errors import OmpRuntimeError
from repro.runtime import pure_runtime
from repro.runtime.worksharing import trip_count


@pytest.fixture(params=["pure", "cruntime"])
def rt(request):
    return pure_runtime if request.param == "pure" else cruntime


class TestTripCount:
    @pytest.mark.parametrize("start,stop,step,expected", [
        (0, 10, 1, 10),
        (0, 10, 3, 4),
        (0, 0, 1, 0),
        (5, 3, 1, 0),
        (10, 0, -1, 10),
        (10, 0, -3, 4),
        (0, 10, -1, 0),
        (-5, 5, 2, 5),
        (7, 8, 1, 1),
    ])
    def test_matches_len_range(self, start, stop, step, expected):
        assert trip_count(start, stop, step) == expected
        assert trip_count(start, stop, step) == len(range(start, stop,
                                                          step))

    def test_zero_step_rejected(self):
        with pytest.raises(OmpRuntimeError):
            trip_count(0, 10, 0)


def run_loop(rt, threads, total, kind="static", chunk=None, start=0,
             step=1):
    """Drive a worksharing loop by hand; return per-thread iteration
    lists."""
    stop = start + total * step
    results: dict[int, list[int]] = {}

    def region():
        mine = []
        bounds = rt.for_bounds([start, stop, step])
        rt.for_init(bounds, kind=kind, chunk=chunk)
        while rt.for_next(bounds):
            mine.extend(range(bounds[0], bounds[1], step))
        rt.for_end(bounds)
        results[rt.get_thread_num()] = mine

    rt.parallel_run(region, num_threads=threads)
    return results


class TestSchedulers:
    @pytest.mark.parametrize("kind,chunk", [
        ("static", None), ("static", 7), ("dynamic", None),
        ("dynamic", 5), ("guided", None), ("guided", 3), ("auto", None),
    ])
    def test_partition_covers_exactly_once(self, rt, kind, chunk):
        results = run_loop(rt, threads=4, total=103, kind=kind,
                           chunk=chunk)
        everything = sorted(i for mine in results.values() for i in mine)
        assert everything == list(range(103))

    def test_static_unchunked_is_balanced_blocks(self, rt):
        results = run_loop(rt, threads=4, total=10)
        sizes = sorted(len(v) for v in results.values())
        assert sizes == [2, 2, 3, 3]
        # Blocks are contiguous and ordered by thread id.
        for tid, mine in results.items():
            assert mine == sorted(mine)

    def test_static_chunked_round_robin(self, rt):
        results = run_loop(rt, threads=2, total=8, kind="static", chunk=2)
        assert results[0] == [0, 1, 4, 5]
        assert results[1] == [2, 3, 6, 7]

    def test_negative_step(self, rt):
        results = run_loop(rt, threads=3, total=20, start=100, step=-2)
        everything = sorted(i for mine in results.values() for i in mine)
        assert everything == sorted(range(100, 60, -2))

    def test_empty_loop(self, rt):
        results = run_loop(rt, threads=2, total=0)
        assert all(mine == [] for mine in results.values())

    def test_runtime_schedule_uses_icv(self, rt):
        rt.set_schedule("static", 4)
        try:
            results = run_loop(rt, threads=2, total=8, kind="runtime")
            assert results[0] == [0, 1, 2, 3]
            assert results[1] == [4, 5, 6, 7]
        finally:
            rt.set_schedule("static")

    def test_guided_chunks_decrease(self, rt):
        sizes = []

        def region():
            bounds = rt.for_bounds([0, 1000, 1])
            rt.for_init(bounds, kind="guided", chunk=1)
            while rt.for_next(bounds):
                sizes.append(bounds[1] - bounds[0])
            rt.for_end(bounds)

        rt.parallel_run(region, num_threads=1)
        assert sum(sizes) == 1000
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] > sizes[-1]

    def test_guided_tail_smaller_than_team_makes_progress(self, rt):
        """Regression: once ``remaining // (2 * nthreads)`` rounds to
        zero, a zero-sized claim would spin the CAS loop forever; the
        chunk is clamped to at least one iteration, so a tail smaller
        than the team still drains."""
        results = run_loop(rt, threads=4, total=5, kind="guided")
        everything = sorted(i for mine in results.values()
                            for i in mine)
        assert everything == list(range(5))

    def test_guided_chunk_floor_respected(self, rt):
        sizes = []

        def region():
            bounds = rt.for_bounds([0, 100, 1])
            rt.for_init(bounds, kind="guided", chunk=7)
            while rt.for_next(bounds):
                sizes.append(bounds[1] - bounds[0])
            rt.for_end(bounds)

        rt.parallel_run(region, num_threads=1)
        assert sum(sizes) == 100
        # Every chunk honors the user floor except a smaller final
        # remainder.
        assert all(size >= 7 for size in sizes[:-1])

    def test_guided_boundary_unit(self):
        """Direct boundary check of ``_next_guided``: remaining smaller
        than ``2 * nthreads`` must still claim one iteration per call
        and terminate."""
        from types import SimpleNamespace

        from repro.runtime.worksharing import _next_guided

        class Counter:
            def __init__(self):
                self.value = 0

            def load(self):
                return self.value

            def compare_exchange(self, expected, replacement):
                if self.value != expected:
                    return False
                self.value = replacement
                return True

        info = SimpleNamespace(slot=SimpleNamespace(counter=Counter()),
                               chunk=None, total=3,
                               team=SimpleNamespace(size=8))
        claims = []
        while True:
            chunk = _next_guided(info)
            if chunk is None:
                break
            claims.append(chunk)
        assert claims == [(0, 1), (1, 2), (2, 3)]

    def test_invalid_chunk_rejected(self, rt):
        def region():
            bounds = rt.for_bounds([0, 10, 1])
            rt.for_init(bounds, kind="dynamic", chunk=0)

        with pytest.raises(OmpRuntimeError):
            rt.parallel_run(region, num_threads=1)


class TestForLast:
    def test_last_flag_identifies_final_iteration_owner(self, rt):
        owners = []
        lock = threading.Lock()

        def region():
            bounds = rt.for_bounds([0, 50, 1])
            rt.for_init(bounds, kind="dynamic", chunk=3)
            last_seen = None
            while rt.for_next(bounds):
                if 49 in range(bounds[0], bounds[1]):
                    last_seen = True
            if rt.for_last(bounds):
                with lock:
                    owners.append((rt.get_thread_num(), last_seen))
            rt.for_end(bounds)

        rt.parallel_run(region, num_threads=4)
        assert len(owners) == 1
        assert owners[0][1] is True


class TestOrdered:
    def test_ordered_iterations_run_in_order(self, rt):
        order = []

        def region():
            bounds = rt.for_bounds([0, 40, 1])
            rt.for_init(bounds, kind="dynamic", chunk=1, ordered=True)
            while rt.for_next(bounds):
                for i in range(bounds[0], bounds[1]):
                    rt.ordered_start(bounds, i)
                    order.append(i)
                    rt.ordered_end(bounds, i)
            rt.for_end(bounds)

        rt.parallel_run(region, num_threads=4)
        assert order == list(range(40))


class TestSections:
    def test_each_section_runs_exactly_once(self, rt):
        executed = []
        lock = threading.Lock()

        def region():
            state = rt.sections_begin(5)
            while True:
                section = rt.sections_next(state)
                if section < 0:
                    break
                with lock:
                    executed.append(section)
            rt.sections_end(state)

        rt.parallel_run(region, num_threads=3)
        assert sorted(executed) == [0, 1, 2, 3, 4]

    def test_sections_last(self, rt):
        last_owner = []

        def region():
            state = rt.sections_begin(3)
            while rt.sections_next(state) >= 0:
                pass
            if rt.sections_last(state):
                last_owner.append(rt.get_thread_num())
            rt.sections_end(state)

        rt.parallel_run(region, num_threads=2)
        assert len(last_owner) == 1


class TestSingle:
    def test_single_executes_once(self, rt):
        count = []
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                with lock:
                    count.append(rt.get_thread_num())
            rt.single_end(state)

        rt.parallel_run(region, num_threads=4)
        assert len(count) == 1

    def test_consecutive_singles_use_distinct_slots(self, rt):
        counts = [[], []]
        lock = threading.Lock()

        def region():
            for index in range(2):
                state = rt.single_begin()
                if state.selected:
                    with lock:
                        counts[index].append(1)
                rt.single_end(state)

        rt.parallel_run(region, num_threads=3)
        assert [len(c) for c in counts] == [1, 1]

    def test_copyprivate_broadcast(self, rt):
        received = {}
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                rt.copyprivate_set(state, ("hello", rt.get_thread_num()))
            rt.single_end(state)
            value = rt.copyprivate_get(state)
            with lock:
                received[rt.get_thread_num()] = value

        rt.parallel_run(region, num_threads=3)
        values = set(received.values())
        assert len(values) == 1
        assert next(iter(values))[0] == "hello"


class TestMaster:
    def test_master_is_thread_zero(self, rt):
        hits = []
        lock = threading.Lock()

        def region():
            if rt.master_begin():
                with lock:
                    hits.append(rt.get_thread_num())

        rt.parallel_run(region, num_threads=4)
        assert hits == [0]


class TestBarrierSemantics:
    def test_barrier_synchronizes_phases(self, rt):
        phase_one = []
        phase_two_snapshot = []
        lock = threading.Lock()

        def region():
            with lock:
                phase_one.append(rt.get_thread_num())
            rt.barrier()
            with lock:
                phase_two_snapshot.append(len(phase_one))

        rt.parallel_run(region, num_threads=4)
        assert all(snapshot == 4 for snapshot in phase_two_snapshot)

    def test_barrier_inside_task_rejected(self, rt):
        def region():
            state = rt.single_begin()
            if state.selected:
                rt.task_submit(rt.barrier, if_=True)
            rt.single_end(state)

        with pytest.raises(OmpRuntimeError):
            rt.parallel_run(region, num_threads=2)
