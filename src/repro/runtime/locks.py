"""OpenMP lock API objects (simple and nestable locks).

``omp_init_lock``/``omp_init_nest_lock`` return these objects; the rest
of the lock API operates on them.  A nestable lock may be re-acquired by
its owner; ``omp_test_nest_lock`` returns the new nesting count, per the
OpenMP specification.
"""

from __future__ import annotations

import threading

from repro.errors import OmpRuntimeError


class OmpLock:
    """A simple OpenMP lock."""

    __slots__ = ("_lock", "_destroyed")

    def __init__(self, lowlevel):
        self._lock = lowlevel.make_mutex()
        self._destroyed = False

    def _check(self) -> None:
        if self._destroyed:
            raise OmpRuntimeError("lock used after omp_destroy_lock")

    def set(self) -> None:
        self._check()
        self._lock.acquire()

    def unset(self) -> None:
        self._check()
        self._lock.release()

    def test(self) -> bool:
        self._check()
        return self._lock.acquire(blocking=False)

    def destroy(self) -> None:
        self._destroyed = True


class OmpNestLock:
    """A nestable OpenMP lock (owner may re-acquire)."""

    __slots__ = ("_lock", "_owner", "_count", "_destroyed", "_guard")

    def __init__(self, lowlevel):
        self._lock = lowlevel.make_mutex()
        self._guard = threading.Lock()
        self._owner = None
        self._count = 0
        self._destroyed = False

    def _check(self) -> None:
        if self._destroyed:
            raise OmpRuntimeError("lock used after omp_destroy_nest_lock")

    def set(self) -> None:
        self._check()
        me = threading.get_ident()
        with self._guard:
            if self._owner == me:
                self._count += 1
                return
        self._lock.acquire()
        with self._guard:
            self._owner = me
            self._count = 1

    def unset(self) -> None:
        self._check()
        me = threading.get_ident()
        with self._guard:
            if self._owner != me or self._count == 0:
                raise OmpRuntimeError(
                    "omp_unset_nest_lock by a thread that does not own it")
            self._count -= 1
            if self._count == 0:
                self._owner = None
                self._lock.release()

    def test(self) -> int:
        """Acquire if possible; return the new nesting count, else 0."""
        self._check()
        me = threading.get_ident()
        with self._guard:
            if self._owner == me:
                self._count += 1
                return self._count
        if self._lock.acquire(blocking=False):
            with self._guard:
                self._owner = me
                self._count = 1
            return 1
        return 0

    def destroy(self) -> None:
        self._destroyed = True
