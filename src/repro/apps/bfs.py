"""Task-parallel maze pathfinding via BFS (the paper's *bfs*).

Paper configuration: 2100×2100 grid, entrance top-left, exit
bottom-right, zeros are paths and ones are walls, one task per feasible
move; constructs: ``parallel``, ``single``, ``task`` (Table I).

For PyOMP the paper reports "an error is raised during execution of the
PyOMP code related to Numba"; the baseline spec reproduces that as a
runtime error.
"""

from __future__ import annotations

import random
from collections import deque

from repro.apps.base import AppSpec
from repro.api import omp


def make_maze(n: int, seed: int = 31, wall_density: float = 0.3):
    """Random maze with a guaranteed monotone path."""
    rng = random.Random(seed)
    grid = [[1 if rng.random() < wall_density else 0 for _ in range(n)]
            for _ in range(n)]
    row = col = 0
    grid[0][0] = 0
    while row < n - 1 or col < n - 1:
        if row == n - 1:
            col += 1
        elif col == n - 1:
            row += 1
        elif rng.random() < 0.5:
            row += 1
        else:
            col += 1
        grid[row][col] = 0
    return grid


def make_input(n: int, seed: int = 31) -> dict:
    return {"grid": make_maze(n, seed), "n": n}


def sequential(grid, n):
    """Reference BFS: (exit reached, number of reachable cells)."""
    visited = [[False] * n for _ in range(n)]
    visited[0][0] = True
    frontier = deque([(0, 0)])
    count = 1
    while frontier:
        row, col = frontier.popleft()
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nr, nc = row + dr, col + dc
            if 0 <= nr < n and 0 <= nc < n and grid[nr][nc] == 0 \
                    and not visited[nr][nc]:
                visited[nr][nc] = True
                count += 1
                frontier.append((nr, nc))
    return visited[n - 1][n - 1], count


def kernel(grid, n, threads):
    visited = [[False] * n for _ in range(n)]
    visited[0][0] = True
    state = {"count": 1, "reached": False}

    def explore(row, col):
        if row == n - 1 and col == n - 1:
            with omp("critical(bfs_state)"):
                state["reached"] = True
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nr = row + dr
            nc = col + dc
            if 0 <= nr < n and 0 <= nc < n and grid[nr][nc] == 0:
                claimed = False
                with omp("critical(bfs_visited)"):
                    if not visited[nr][nc]:
                        visited[nr][nc] = True
                        state["count"] += 1
                        claimed = True
                if claimed:
                    # Each feasible move spawns a task (paper IV-A).
                    with omp("task firstprivate(nr, nc)"):
                        explore(nr, nc)

    with omp("parallel num_threads(threads)"):
        with omp("single"):
            explore(0, 0)
    return state["reached"], state["count"]


# The maze explorer is symbolic work (tuples, bounds tests, dict state):
# exactly the kind of code native compilation cannot reshape, so the
# typed pipeline shares the untyped source and falls back gracefully.
kernel_dt = kernel

#: The paper: PyOMP raises a Numba-internal error while executing bfs.
PYOMP_STATUS = ("runtime_error: Numba internal error while lowering "
                "task region (paper Section IV-A)")


def verify(result, reference) -> bool:
    return tuple(result) == tuple(reference)


SPEC = AppSpec(
    name="bfs",
    title="Maze pathfinding (BFS)",
    make_input=make_input,
    sequential=sequential,
    kernel=kernel,
    kernel_dt=kernel_dt,
    pyomp=PYOMP_STATUS,
    verify=verify,
    sizes={
        "test": {"n": 31},
        "default": {"n": 101},
        "paper": {"n": 2100},
    },
    table1=("parallel, single, task", "Implicit barriers"),
)
