"""Tests of the runtime event tracer and its summaries."""

import pytest

from repro import Mode, transform
from repro.cruntime import cruntime
from repro.runtime import pure_runtime
from repro.runtime.trace import TraceEvent, Tracer, TraceSummary


@pytest.fixture(params=["pure", "cruntime"])
def rt(request):
    return pure_runtime if request.param == "pure" else cruntime


class TestTracerBasics:
    def test_disabled_by_default_records_nothing(self):
        tracer = Tracer()
        tracer.record("chunk", 0, 0, 10)
        assert tracer.events() == []

    def test_start_stop_cycle(self):
        tracer = Tracer()
        tracer.start()
        tracer.record("chunk", 1, 0, 5)
        events = tracer.stop()
        assert len(events) == 1
        assert events[0].kind == "chunk"
        assert events[0].thread == 1
        assert not tracer.enabled

    def test_start_clears_previous_events(self):
        tracer = Tracer()
        tracer.start()
        tracer.record("chunk", 0, 0, 1)
        tracer.start()
        assert tracer.events() == []

    def test_capacity_bound(self):
        tracer = Tracer(capacity=3)
        tracer.start()
        for index in range(10):
            tracer.record("chunk", 0, index, index + 1)
        assert len(tracer.events()) == 3
        assert tracer.dropped == 7

    def test_timestamps_monotonic(self):
        tracer = Tracer()
        tracer.start()
        for _ in range(5):
            tracer.record("chunk", 0, 0, 1)
        stamps = [event.timestamp for event in tracer.events()]
        assert stamps == sorted(stamps)


class TestRuntimeIntegration:
    def test_region_events(self, rt):
        rt.tracer.start()
        rt.parallel_run(lambda: None, num_threads=3)
        events = rt.tracer.stop()
        kinds = [event.kind for event in events]
        assert kinds.count("region_fork") == 1
        assert kinds.count("region_join") == 1
        assert events[0].detail == (3,)

    def test_chunk_events_cover_iteration_space(self, rt):
        rt.tracer.start()

        def region():
            bounds = rt.for_bounds([0, 40, 1])
            rt.for_init(bounds, kind="dynamic", chunk=4)
            while rt.for_next(bounds):
                pass
            rt.for_end(bounds)

        rt.parallel_run(region, num_threads=3)
        summary = TraceSummary(rt.tracer.stop())
        assert summary.count("chunk") == 10
        assert sum(summary.iterations_per_thread().values()) == 40

    def test_task_lifecycle_events(self, rt):
        rt.tracer.start()

        def region():
            state = rt.single_begin()
            if state.selected:
                for _ in range(6):
                    rt.task_submit(lambda: None)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=2)
        summary = TraceSummary(rt.tracer.stop())
        assert summary.count("task_submit") == 6
        assert summary.count("task_start") == 6
        assert summary.count("task_finish") == 6
        assert all(latency >= 0 for latency in summary.task_latencies())

    def test_barrier_events(self, rt):
        rt.tracer.start()

        def region():
            rt.barrier()

        rt.parallel_run(region, num_threads=2)
        summary = TraceSummary(rt.tracer.stop())
        assert summary.count("barrier_enter") == 2
        assert summary.count("barrier_release") == 2

    def test_static_chunks_assigned_round_robin(self, rt):
        rt.tracer.start()

        def region():
            bounds = rt.for_bounds([0, 24, 1])
            rt.for_init(bounds, kind="static", chunk=3)
            while rt.for_next(bounds):
                pass
            rt.for_end(bounds)

        rt.parallel_run(region, num_threads=2)
        summary = TraceSummary(rt.tracer.stop())
        assert summary.chunks_per_thread() == {0: 4, 1: 4}

    def test_transformed_code_is_traceable(self):
        fn = transform(_traced_subject, Mode.HYBRID)
        cruntime.tracer.start()
        fn(30)
        summary = TraceSummary(cruntime.tracer.stop())
        assert summary.count("region_fork") == 1
        assert summary.count("chunk") >= 2


class TestSummaryRendering:
    def test_timeline_renders_rows(self):
        events = [TraceEvent(1.0, "chunk", 0, (0, 5)),
                  TraceEvent(1.5, "chunk", 1, (5, 10)),
                  TraceEvent(2.0, "chunk", 0, (10, 15))]
        timeline = TraceSummary(events).timeline(width=20)
        assert "t0  |" in timeline
        assert "t1  |" in timeline
        assert "#" in timeline

    def test_timeline_without_chunks(self):
        assert "no chunk" in TraceSummary([]).timeline()


def _traced_subject(n):
    from repro import omp
    total = 0
    with omp("parallel for reduction(+:total) num_threads(2) "
             "schedule(dynamic, 5)"):
        for i in range(n):
            total += i
    return total
