"""Communicators: point-to-point and collective operations.

The object API mirrors mpi4py's lowercase convenience methods (``send``/
``recv``/``bcast``/``scatter``/``gather``/``allgather``/``allreduce``/
``barrier``) plus uppercase ``Allgather``/``Allreduce`` buffer variants
for NumPy arrays, which is what the hybrid Jacobi uses.

Collectives are built on a reusable :class:`threading.Barrier` plus a
shared slot array; the double-barrier pattern (publish → read) keeps
successive collectives from racing on the slots.
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from repro.errors import OmpRuntimeError


class _Cluster:
    """Shared state of one in-process MPI world."""

    def __init__(self, size: int):
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: list = [None] * size
        self.mailboxes = {
            (source, dest): queue.Queue()
            for source in range(size) for dest in range(size)
        }


class Intracomm:
    """One rank's view of the cluster (mpi4py ``Intracomm`` analogue)."""

    def __init__(self, cluster: _Cluster, rank: int):
        self._cluster = cluster
        self._rank = rank

    # mpi4py spells these as methods; properties keep call sites short.
    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._cluster.size

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._cluster.size

    # -- point-to-point -------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        self._cluster.mailboxes[self._rank, dest].put((tag, obj))

    def recv(self, source: int, tag: int = 0):
        mailbox = self._cluster.mailboxes[source, self._rank]
        received_tag, obj = mailbox.get()
        if received_tag != tag:
            raise OmpRuntimeError(
                f"tag mismatch: expected {tag}, got {received_tag}")
        return obj

    # -- collectives ----------------------------------------------------

    def barrier(self) -> None:
        self._cluster.barrier.wait()

    Barrier = barrier

    def bcast(self, obj, root: int = 0):
        cluster = self._cluster
        if self._rank == root:
            cluster.slots[root] = obj
        cluster.barrier.wait()
        value = cluster.slots[root]
        cluster.barrier.wait()
        return value

    def scatter(self, values, root: int = 0):
        cluster = self._cluster
        if self._rank == root:
            if len(values) != cluster.size:
                raise OmpRuntimeError(
                    f"scatter needs exactly {cluster.size} items")
            cluster.slots[:] = list(values)
        cluster.barrier.wait()
        value = cluster.slots[self._rank]
        cluster.barrier.wait()
        return value

    def gather(self, value, root: int = 0):
        everything = self.allgather(value)
        return everything if self._rank == root else None

    def allgather(self, value) -> list:
        cluster = self._cluster
        cluster.slots[self._rank] = value
        cluster.barrier.wait()
        result = list(cluster.slots)
        cluster.barrier.wait()
        return result

    def reduce(self, value, op=None, root: int = 0):
        result = self.allreduce(value, op)
        return result if self._rank == root else None

    def allreduce(self, value, op=None):
        op = op if op is not None else _sum_op
        parts = self.allgather(value)
        result = parts[0]
        for part in parts[1:]:
            result = op(result, part)
        return result

    # -- NumPy buffer variants (what mpi4py calls the uppercase API) ----

    def Allgather(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        """Concatenate equal-size blocks from all ranks into recvbuf."""
        parts = self.allgather(np.asarray(sendbuf))
        flat = np.concatenate([np.ravel(part) for part in parts])
        if flat.shape != np.ravel(recvbuf).shape:
            raise OmpRuntimeError(
                f"Allgather size mismatch: {flat.size} != {recvbuf.size}")
        np.copyto(recvbuf, flat.reshape(recvbuf.shape))

    def Allgatherv(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        """Variable-size block variant (block sizes may differ)."""
        parts = self.allgather(np.asarray(sendbuf))
        flat = np.concatenate([np.ravel(part) for part in parts])
        if flat.size != recvbuf.size:
            raise OmpRuntimeError(
                f"Allgatherv size mismatch: {flat.size} != {recvbuf.size}")
        np.copyto(recvbuf, flat.reshape(recvbuf.shape))

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
                  op=None) -> None:
        op = op if op is not None else _sum_op
        parts = self.allgather(np.asarray(sendbuf))
        result = parts[0].copy()
        for part in parts[1:]:
            result = op(result, part)
        np.copyto(recvbuf, result)


def _sum_op(left, right):
    return left + right


#: Built-in reduction operations, mirroring ``mpi4py.MPI.SUM`` etc.
SUM = _sum_op
MAX = max
MIN = min


def PROD(left, right):
    return left * right


_tls = threading.local()


def comm_world() -> Intracomm:
    """The calling rank's communicator (inside :func:`mpirun` only)."""
    comm = getattr(_tls, "comm", None)
    if comm is None:
        raise OmpRuntimeError(
            "comm_world() is only available inside an mpirun launch")
    return comm


def _set_comm(comm: Intracomm | None) -> None:
    _tls.comm = comm
