"""OMPT-style observability for the OMP4Py runtimes.

The package mirrors, in spirit, the OMPT tools interface of native
OpenMP runtimes (cf. the OMP4Py paper's measurement methodology): a
pluggable callback surface (:mod:`repro.ompt.hooks`), a thread-safe
metrics registry and the standard metrics tool
(:mod:`repro.ompt.metrics`), exporters for Chrome trace-event JSON,
Prometheus text, and the structured JSON report
(:mod:`repro.ompt.exporters`), environment-driven auto-instrumentation
(:mod:`repro.ompt.auto`), and the ``python -m repro.profile`` CLI
(:mod:`repro.ompt.cli`).

The hang-diagnosis subsystem (:mod:`repro.diagnostics`) plugs into the
same callback surface: its :class:`FlightRecorder` is a
:class:`ToolHooks` tool (re-exported here), and ``python -m
repro.doctor`` is its CLI.

Quickstart::

    from repro.cruntime import cruntime
    from repro.ompt import MetricsTool, chrome_trace, metrics_report

    tool = MetricsTool()
    cruntime.attach_tool(tool)
    cruntime.tracer.start()
    run_workload()
    events = cruntime.tracer.stop()
    cruntime.detach_tool(tool)
    report = metrics_report(tool.registry, cruntime.stats.snapshot())
    trace = chrome_trace(events, dropped=events.dropped)

See docs/observability.md for the full walkthrough.
"""

from repro.ompt.exporters import (chrome_trace, chrome_trace_events,
                                  metrics_report, prometheus_text,
                                  validate_chrome_trace,
                                  write_chrome_trace)
from repro.ompt.hooks import CALLBACK_NAMES, ToolDispatcher, ToolHooks
from repro.ompt.metrics import (Counter, Gauge, Histogram,
                                MetricsRegistry, MetricsTool)

__all__ = ["CALLBACK_NAMES", "Counter", "FlightRecorder", "Gauge",
           "Histogram", "MetricsRegistry", "MetricsTool",
           "ToolDispatcher", "ToolHooks", "chrome_trace",
           "chrome_trace_events", "metrics_report", "prometheus_text",
           "validate_chrome_trace", "write_chrome_trace"]


def __getattr__(name: str):
    # Lazy: repro.diagnostics.flight subclasses ToolHooks from this
    # package, so a top-level import here would be circular.
    if name == "FlightRecorder":
        from repro.diagnostics.flight import FlightRecorder
        return FlightRecorder
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
