"""Jacobi iterative solver for A·x = b (the paper's *jacobi*).

Paper configuration: 3000×3000 diagonally dominant system, up to 1000
iterations, 1e-6 tolerance; constructs: ``parallel``, ``for
reduction(+)``, ``single``, and an explicit barrier (Table I).
"""

from __future__ import annotations

import random

import numpy as np

from repro.apps.base import AppSpec
from repro.api import omp


def make_system(n: int, seed: int = 1234):
    rng = random.Random(seed)
    a = [[rng.uniform(-1.0, 1.0) for _ in range(n)] for _ in range(n)]
    for i in range(n):
        # Diagonal dominance guarantees convergence.
        a[i][i] = sum(abs(v) for v in a[i]) + 1.0
    b = [rng.uniform(-10.0, 10.0) for _ in range(n)]
    return a, b


def make_input(n: int, iterations: int = 1000, tol: float = 1e-6,
               seed: int = 1234) -> dict:
    a, b = make_system(n, seed)
    return {"a": a, "b": b, "n": n, "iterations": iterations, "tol": tol}


def make_input_dt(n: int, iterations: int = 1000, tol: float = 1e-6,
                  seed: int = 1234) -> dict:
    a, b = make_system(n, seed)
    return {"a": np.array(a), "b": np.array(b), "n": n,
            "iterations": iterations, "tol": tol}


def sequential(a, b, n, iterations, tol):
    x = [0.0] * n
    x_new = [0.0] * n
    for _iteration in range(iterations):
        err = 0.0
        for i in range(n):
            s = 0.0
            for j in range(n):
                s += a[i][j] * x[j]
            s -= a[i][i] * x[i]
            x_new[i] = (b[i] - s) / a[i][i]
            err += abs(x_new[i] - x[i])
        x, x_new = x_new, x
        if err < tol:
            break
    return x


def kernel(a, b, n, iterations, tol, threads):
    x = [0.0] * n
    x_new = [0.0] * n
    err = 0.0
    converged = False
    with omp("parallel num_threads(threads)"):
        iteration = 0
        while iteration < iterations and not converged:
            with omp("for reduction(+:err) nowait"):
                for i in range(n):
                    s = 0.0
                    for j in range(n):
                        s += a[i][j] * x[j]
                    s -= a[i][i] * x[i]
                    x_new[i] = (b[i] - s) / a[i][i]
                    err += abs(x_new[i] - x[i])
            omp("barrier")
            with omp("single"):
                for k in range(n):
                    x[k] = x_new[k]
                converged = err < tol
                err = 0.0
            iteration += 1
    return x


def kernel_dt(a, b, n, iterations, tol, threads):
    x = np.zeros(n)
    x_new = np.zeros(n)
    err: float = 0.0
    converged = False
    with omp("parallel num_threads(threads)"):
        iteration = 0
        while iteration < iterations and not converged:
            with omp("for reduction(+:err) nowait"):
                for i in range(n):
                    s: float = 0.0
                    for j in range(n):
                        s += a[i][j] * x[j]
                    s -= a[i][i] * x[i]
                    x_new[i] = (b[i] - s) / a[i][i]
                    err += abs(x_new[i] - x[i])
            omp("barrier")
            with omp("single"):
                for k in range(n):
                    x[k] = x_new[k]
                converged = err < tol
                err = 0.0
            iteration += 1
    return x


def pyomp_kernel(a, b, n, iterations, tol, threads):
    x = np.zeros(n)
    x_new = np.zeros(n)
    err: float = 0.0
    converged = False
    with openmp("parallel num_threads(threads)"):  # noqa: F821
        iteration = 0
        while iteration < iterations and not converged:
            with openmp("for reduction(+:err)"):  # noqa: F821
                for i in range(n):
                    s: float = 0.0
                    for j in range(n):
                        s += a[i][j] * x[j]
                    s -= a[i][i] * x[i]
                    x_new[i] = (b[i] - s) / a[i][i]
                    err += abs(x_new[i] - x[i])
            with openmp("single"):  # noqa: F821
                for k in range(n):
                    x[k] = x_new[k]
                converged = err < tol
                err = 0.0
            iteration += 1
    return x


def verify(result, reference) -> bool:
    result = np.asarray(result, dtype=float)
    reference = np.asarray(reference, dtype=float)
    return bool(np.allclose(result, reference, atol=1e-4))


SPEC = AppSpec(
    name="jacobi",
    title="Jacobi method",
    make_input=make_input,
    make_input_dt=make_input_dt,
    sequential=sequential,
    kernel=kernel,
    kernel_dt=kernel_dt,
    pyomp=pyomp_kernel,
    verify=verify,
    sizes={
        "test": {"n": 40, "iterations": 100},
        "default": {"n": 512, "iterations": 60},
        "paper": {"n": 3000, "iterations": 1000},
    },
    table1=("parallel, for reduction(+), single", "Explicit barrier"),
)
