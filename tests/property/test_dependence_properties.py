"""Property tests for the Section V prototypes: random dependence DAGs
execute topologically, and taskloop partitions exactly."""

import threading

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cruntime import cruntime
from repro.runtime import pure_runtime

RUNTIMES = {"pure": pure_runtime, "cruntime": cruntime}


@st.composite
def random_dags(draw):
    """A random DAG over k tasks: edges only from lower to higher ids."""
    count = draw(st.integers(2, 10))
    edges = []
    for target in range(1, count):
        predecessors = draw(st.lists(
            st.integers(0, target - 1), max_size=3, unique=True))
        edges.extend((source, target) for source in predecessors)
    return count, edges


class TestDependenceDAGs:
    @settings(max_examples=30, deadline=None)
    @given(dag=random_dags(), threads=st.integers(1, 4),
           which=st.sampled_from(["pure", "cruntime"]))
    def test_completion_respects_topological_order(self, dag, threads,
                                                   which):
        count, edges = dag
        rt = RUNTIMES[which]
        # One dependence handle per edge: task s writes it, t reads it.
        handles = {edge: object() for edge in edges}
        finished: list[int] = []
        lock = threading.Lock()

        def make_task(task_id):
            def body():
                with lock:
                    finished.append(task_id)
            return body

        def region():
            state = rt.single_begin()
            if state.selected:
                for task_id in range(count):
                    outs = tuple(handles[e] for e in edges
                                 if e[0] == task_id)
                    ins = tuple(handles[e] for e in edges
                                if e[1] == task_id)
                    rt.task_submit(make_task(task_id),
                                   depends_in=ins, depends_out=outs)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=threads)
        assert sorted(finished) == list(range(count))
        position = {task_id: index
                    for index, task_id in enumerate(finished)}
        for source, target in edges:
            assert position[source] < position[target], (
                f"edge {source}->{target} violated: order {finished}")

    @settings(max_examples=20, deadline=None)
    @given(length=st.integers(1, 15), threads=st.integers(1, 4))
    def test_inout_chain_is_totally_ordered(self, length, threads):
        rt = pure_runtime
        cell = object()
        order: list[int] = []
        lock = threading.Lock()

        def make_task(index):
            def body():
                with lock:
                    order.append(index)
            return body

        def region():
            state = rt.single_begin()
            if state.selected:
                for index in range(length):
                    rt.task_submit(make_task(index),
                                   depends_in=(cell,),
                                   depends_out=(cell,))
            rt.single_end(state)

        rt.parallel_run(region, num_threads=threads)
        assert order == list(range(length))


class TestTaskloopPartition:
    @settings(max_examples=25, deadline=None)
    @given(total=st.integers(0, 60), grain=st.integers(1, 12),
           threads=st.integers(1, 4))
    def test_grains_cover_exactly_once(self, total, grain, threads,
                                       tmp_path_factory):
        from tests.property.helpers import compile_from_source
        source = f'''
def subject(n, threads):
    hits = []
    with omp("parallel num_threads(threads)"):
        with omp("single"):
            with omp("taskloop grainsize({grain})"):
                for i in range(n):
                    with omp("critical"):
                        hits.append(i)
    return sorted(hits)
'''
        tmp_dir = tmp_path_factory.mktemp("taskloop")
        fn = compile_from_source(source, "subject", tmp_dir, "hybrid")
        assert fn(total, threads) == list(range(total))
