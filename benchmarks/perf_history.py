"""Cross-run perf-regression ledger over the smoke benchmarks.

``reproduce.py --smoke`` measures once; this module remembers.  Every
smoke run appends one JSONL entry (commit SHA, backend, per-kernel
wall seconds) to ``results/BENCH_history.jsonl``, and the trend
renderer compares the latest run against the best and previous entries
*of the same backend* — so a slow creep that no single-run gate would
catch is visible in the CI job summary.

The ledger is informational: wall times from different machines are
noisy, and the authoritative same-runner gate stays
``check_overhead.py``.  Entries are append-only; corrupt lines are
skipped on read so a truncated artifact can never break CI.

Usage::

    python benchmarks/perf_history.py record \
        --smoke results-smoke/BENCH_smoke.json \
        --history results-smoke/BENCH_history.jsonl
    python benchmarks/perf_history.py trend \
        --history results-smoke/BENCH_history.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import time

SCHEMA = "omp4py-bench-history/1"

#: Regressions beyond this ratio vs the previous entry get flagged in
#: the trend table (same noise floor as smoke_delta).
NOISE_FLOOR = 0.10


def resolve_sha() -> str:
    """The commit under test: CI env first, then git, then unknown."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True,
            text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def entry_from_smoke(payload: dict, *, sha: str | None = None,
                     time_unix: float | None = None) -> dict:
    """One ledger entry from a ``BENCH_smoke.json`` payload."""
    return {
        "schema": SCHEMA,
        "sha": sha if sha is not None else resolve_sha(),
        "time_unix": time_unix if time_unix is not None else time.time(),
        "backend": payload.get("backend", "gil"),
        "python": payload.get("python"),
        "total_wall_s": payload.get("total_wall_s"),
        "kernels": {record["kernel"]: record["wall_s"]
                    for record in payload.get("kernels", [])
                    if record.get("wall_s") is not None},
    }


def append_entry(path, entry: dict) -> None:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry) + "\n")


def load_history(path) -> list[dict]:
    """All well-formed ledger entries, in file (chronological) order."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    entries = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if isinstance(entry, dict) and entry.get("schema") == SCHEMA:
            entries.append(entry)
    return entries


def record_smoke(smoke_path, history_path, seed_path=None) -> dict:
    """Append the smoke summary at ``smoke_path`` to the ledger.

    When ``history_path`` does not exist yet and ``seed_path`` (the
    committed ledger) does, the seed is copied first so a fresh CI
    workspace still has history to trend against.
    """
    history_path = pathlib.Path(history_path)
    if not history_path.exists() and seed_path is not None:
        seed = pathlib.Path(seed_path)
        if seed.exists():
            history_path.parent.mkdir(parents=True, exist_ok=True)
            history_path.write_text(seed.read_text(encoding="utf-8"),
                                    encoding="utf-8")
    payload = json.loads(
        pathlib.Path(smoke_path).read_text(encoding="utf-8"))
    entry = entry_from_smoke(payload)
    append_entry(history_path, entry)
    return entry


def format_trend(history: list[dict], backend: str | None = None) -> str:
    """Markdown best/last/delta table over the ledger."""
    lines = ["### Perf ledger (BENCH_history.jsonl)", ""]
    if not history:
        lines.append("_Empty ledger — nothing recorded yet._")
        return "\n".join(lines) + "\n"
    if backend is None:
        backend = history[-1].get("backend", "gil")
    same = [entry for entry in history
            if entry.get("backend", "gil") == backend]
    if not same:
        lines.append(f"_No entries for backend `{backend}`._")
        return "\n".join(lines) + "\n"
    last = same[-1]
    previous = same[-2] if len(same) > 1 else None
    lines += [
        f"{len(same)} run(s) on backend `{backend}`; latest "
        f"`{str(last.get('sha', '?'))[:12]}`. Cross-machine numbers; "
        f"informational only.",
        "",
        "| kernel | best [s] | prev [s] | last [s] | vs prev |",
        "|---|---|---|---|---|",
    ]
    kernels = sorted({name for entry in same
                      for name in entry.get("kernels", {})})
    for kernel in kernels:
        walls = [entry["kernels"][kernel] for entry in same
                 if kernel in entry.get("kernels", {})]
        best = min(walls)
        current = last.get("kernels", {}).get(kernel)
        prior = (previous or {}).get("kernels", {}).get(kernel)
        best_text = f"{best:.3f}"
        prev_text = f"{prior:.3f}" if prior is not None else "—"
        if current is None:
            lines.append(f"| {kernel} | {best_text} | {prev_text} "
                         f"| — | _gone_ |")
            continue
        if prior:
            ratio = (current - prior) / prior
            flag = ("🔺" if ratio > NOISE_FLOOR
                    else "🟢" if ratio < -NOISE_FLOOR else "~")
            delta = f"{ratio * 100:+.1f}% {flag}"
        else:
            delta = "_new_"
        lines.append(f"| {kernel} | {best_text} | {prev_text} | "
                     f"{current:.3f} | {delta} |")
    totals = [entry.get("total_wall_s") for entry in same
              if entry.get("total_wall_s")]
    if totals and last.get("total_wall_s"):
        lines += ["", f"**Total**: best {min(totals):.3f}s, last "
                      f"{last['total_wall_s']:.3f}s"]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record",
                            help="append a smoke summary to the ledger")
    record.add_argument("--smoke", required=True,
                        help="BENCH_smoke.json to record")
    record.add_argument("--history", required=True,
                        help="BENCH_history.jsonl ledger path")
    record.add_argument("--seed", default=None,
                        help="committed ledger to copy when --history "
                             "does not exist yet")

    trend = sub.add_parser("trend", help="print the markdown trend")
    trend.add_argument("--history", required=True)
    trend.add_argument("--backend", default=None,
                       help="restrict to one backend (default: the "
                            "latest entry's)")

    args = parser.parse_args(argv)
    if args.command == "record":
        entry = record_smoke(args.smoke, args.history,
                             seed_path=args.seed)
        print(f"[perf-history] recorded {entry['sha'][:12]} "
              f"({entry['backend']}, total "
              f"{entry['total_wall_s']:.3f}s) -> {args.history}")
        return 0
    print(format_trend(load_history(args.history),
                       backend=args.backend))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
